//! Offline API-subset stand-in for `serde_json`: the `to_string`,
//! `to_string_pretty`, `from_str`, `to_value` and `from_value` entry points
//! over the `serde` shim's value tree.
//!
//! The call signatures match the real crate's, so application code written
//! against this shim keeps compiling when the workspace swaps the real
//! `serde` + `serde_json` pair in (a `[workspace.dependencies]` edit in the
//! root manifest). Divergences inherited from the `serde` shim's data model:
//! object keys keep insertion order (real `serde_json` sorts them), and
//! non-finite floats are encoded as the strings `"inf"` / `"-inf"` / `"nan"`
//! instead of erroring.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde::value::{Error, Value};

use serde::{Deserialize, Serialize};

/// Serializes `value` as compact JSON text.
///
/// # Errors
///
/// Infallible in the shim (the signature matches real `serde_json`, whose
/// serializers can fail).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_shim_value().to_json())
}

/// Serializes `value` as indented multi-line JSON text (trailing newline
/// included).
///
/// # Errors
///
/// Infallible in the shim (the signature matches real `serde_json`).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_shim_value().to_json_pretty())
}

/// Deserializes a `T` from JSON text.
///
/// # Errors
///
/// Errors on malformed JSON or on a document whose shape does not match `T`.
pub fn from_str<T: for<'de> Deserialize<'de>>(text: &str) -> Result<T, Error> {
    T::from_shim_value(&Value::parse_json(text)?)
}

/// Converts any serializable value to a [`Value`] tree.
///
/// # Errors
///
/// Infallible in the shim (the signature matches real `serde_json`).
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_shim_value())
}

/// Reads a `T` out of a [`Value`] tree.
///
/// # Errors
///
/// Errors when the tree's shape does not match `T`.
pub fn from_value<T: for<'de> Deserialize<'de>>(value: &Value) -> Result<T, Error> {
    T::from_shim_value(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Point {
        x: u32,
        y: f64,
        label: String,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Shape {
        Empty,
        Dot(Point),
        Pair(u32, u32),
        Rect { w: f64, h: f64 },
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Id(u64);

    #[test]
    fn derived_struct_round_trips() {
        let p = Point {
            x: 7,
            y: -1.25,
            label: "a \"b\"".to_string(),
        };
        let text = to_string(&p).unwrap();
        assert_eq!(text, "{\"x\":7,\"y\":-1.25,\"label\":\"a \\\"b\\\"\"}");
        assert_eq!(from_str::<Point>(&text).unwrap(), p);
        let pretty = to_string_pretty(&p).unwrap();
        assert_eq!(from_str::<Point>(&pretty).unwrap(), p);
    }

    #[test]
    fn derived_enum_variants_are_externally_tagged() {
        assert_eq!(to_string(&Shape::Empty).unwrap(), "\"Empty\"");
        let rect = Shape::Rect { w: 2.0, h: 3.5 };
        let text = to_string(&rect).unwrap();
        assert_eq!(text, "{\"Rect\":{\"w\":2,\"h\":3.5}}");
        assert_eq!(from_str::<Shape>(&text).unwrap(), rect);
        let pair = Shape::Pair(1, 2);
        assert_eq!(to_string(&pair).unwrap(), "{\"Pair\":[1,2]}");
        assert_eq!(from_str::<Shape>("{\"Pair\":[1,2]}").unwrap(), pair);
        let dot = Shape::Dot(Point {
            x: 0,
            y: 0.0,
            label: String::new(),
        });
        assert_eq!(from_str::<Shape>(&to_string(&dot).unwrap()).unwrap(), dot);
        assert!(from_str::<Shape>("\"Nope\"").is_err());
        assert!(from_str::<Shape>("\"Dot\"").is_err());
    }

    #[test]
    fn newtype_structs_are_transparent() {
        assert_eq!(to_string(&Id(9)).unwrap(), "9");
        assert_eq!(from_str::<Id>("9").unwrap(), Id(9));
    }

    #[test]
    fn vectors_and_options_round_trip() {
        let items = vec![Some(Id(1)), None, Some(Id(3))];
        let text = to_string(&items).unwrap();
        assert_eq!(text, "[1,null,3]");
        assert_eq!(from_str::<Vec<Option<Id>>>(&text).unwrap(), items);
    }
}
