//! Functional derive macros for the offline `serde` stand-in crate.
//!
//! The real `serde_derive` generates visitor-based `Serialize`/`Deserialize`
//! impls; this shim generates implementations of the stand-in's value-tree
//! traits (`to_shim_value` / `from_shim_value`) with the same external shape
//! as serde's defaults: named-field structs become objects, newtype structs
//! are transparent, tuple structs become arrays, unit structs become `null`,
//! and enums are externally tagged (`"Variant"` or `{"Variant": payload}`).
//!
//! The parser is deliberately small: it handles the plain (non-generic)
//! structs and enums this workspace derives on, skipping attributes and doc
//! comments. `#[serde(...)]` helper attributes are accepted and ignored.
//! Deriving on a generic type is a compile error with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the shim's `Serialize` (value-tree construction).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(item: TokenStream) -> TokenStream {
    expand(item, Mode::Serialize)
}

/// Derives the shim's `Deserialize` (value-tree destructuring).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(item: TokenStream) -> TokenStream {
    expand(item, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

/// The shape of the deriving type.
enum Shape {
    UnitStruct,
    /// Struct with named fields, in declaration order.
    NamedStruct(Vec<String>),
    /// Tuple struct with the given number of fields.
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn expand(item: TokenStream, mode: Mode) -> TokenStream {
    let (name, shape) = match parse_item(item) {
        Ok(parsed) => parsed,
        Err(message) => {
            return format!("compile_error!({message:?});")
                .parse()
                .expect("a compile_error! invocation always parses")
        }
    };
    let code = match mode {
        Mode::Serialize => gen_serialize(&name, &shape),
        Mode::Deserialize => gen_deserialize(&name, &shape),
    };
    code.parse().expect("generated impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(item: TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = item.into_iter().collect();
    let mut i = 0;

    skip_attributes(&tokens, &mut i);
    // Skip visibility and any other modifiers until `struct` / `enum`.
    let keyword = loop {
        match tokens.get(i) {
            Some(TokenTree::Ident(ident)) => {
                let text = ident.to_string();
                i += 1;
                if text == "struct" || text == "enum" {
                    break text;
                }
            }
            Some(TokenTree::Group(_)) => i += 1, // e.g. the `(crate)` of `pub(crate)`
            Some(_) => i += 1,
            None => return Err("expected `struct` or `enum`".to_string()),
        }
    };

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        _ => return Err("expected a type name".to_string()),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "the serde shim derive does not support generic type `{name}`"
        ));
    }

    if keyword == "struct" {
        match tokens.get(i) {
            None => Ok((name, Shape::UnitStruct)),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok((name, Shape::UnitStruct)),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::NamedStruct(parse_named_fields(g.stream())?)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok((name, Shape::TupleStruct(count_tuple_fields(g.stream()))))
            }
            _ => Err(format!("unsupported struct body for `{name}`")),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::Enum(parse_variants(g.stream())?)))
            }
            _ => Err(format!("expected an enum body for `{name}`")),
        }
    }
}

/// Skips `#[...]` attributes (including doc comments) starting at `*i`.
fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match (tokens.get(*i), tokens.get(*i + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                *i += 2;
            }
            _ => break,
        }
    }
}

/// Skips a visibility modifier (`pub`, `pub(crate)`, ...) starting at `*i`.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(&tokens.get(*i), Some(TokenTree::Ident(ident)) if ident.to_string() == "pub") {
        *i += 1;
        if matches!(
            &tokens.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1;
        }
    }
}

/// Parses `field: Type, ...`, returning the field names in order.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            None => break,
            _ => return Err("expected a field name".to_string()),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        skip_type(&tokens, &mut i);
        fields.push(name);
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    Ok(fields)
}

/// Advances past one type, stopping at a top-level `,` (commas nested in
/// `<...>` generics are part of the type; bracketed groups are atomic).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(token) = tokens.get(*i) {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Counts the fields of a tuple struct / tuple variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut count = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        count += 1;
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            None => break,
            _ => return Err("expected a variant name".to_string()),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream())?)
            }
            _ => VariantKind::Unit,
        };
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::UnitStruct => "::serde::value::Value::Null".to_string(),
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}, ::serde::Serialize::to_shim_value(&self.{f}))"))
                .collect();
            format!(
                "::serde::value::Value::record(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_shim_value(&self.0)".to_string(),
        Shape::TupleStruct(len) => {
            let items: Vec<String> = (0..*len)
                .map(|i| format!("::serde::Serialize::to_shim_value(&self.{i})"))
                .collect();
            format!(
                "::serde::value::Value::Seq(::std::vec![{}])",
                items.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => \
                             ::serde::value::Value::Str({vn:?}.to_string()),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::value::Value::variant({vn:?}, \
                             ::serde::Serialize::to_shim_value(__f0)),"
                        ),
                        VariantKind::Tuple(len) => {
                            let binders: Vec<String> =
                                (0..*len).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_shim_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::value::Value::variant({vn:?}, \
                                 ::serde::value::Value::Seq(::std::vec![{}])),",
                                binders.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| format!("({f:?}, ::serde::Serialize::to_shim_value({f}))"))
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::value::Value::variant({vn:?}, \
                                 ::serde::value::Value::record(::std::vec![{}])),",
                                fields.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{ \
           fn to_shim_value(&self) -> ::serde::value::Value {{ {body} }} \
         }}"
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::UnitStruct => format!("let _ = __v; ::core::result::Result::Ok({name})"),
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_shim_value(\
                         __v.get_field({name:?}, {f:?})?)?"
                    )
                })
                .collect();
            format!(
                "::core::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(1) => format!(
            "::core::result::Result::Ok({name}(::serde::Deserialize::from_shim_value(__v)?))"
        ),
        Shape::TupleStruct(len) => {
            let inits: Vec<String> = (0..*len)
                .map(|i| format!("::serde::Deserialize::from_shim_value(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = __v.get_seq({name:?}, {len})?; \
                 ::core::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => {
                            format!("{vn:?} => ::core::result::Result::Ok({name}::{vn}),")
                        }
                        VariantKind::Tuple(1) => format!(
                            "{vn:?} => {{ \
                               let __p = __payload.ok_or_else(|| ::serde::value::Error::msg(\
                                 ::std::format!(\"variant {{}}::{{}} expects a payload\", \
                                 {name:?}, {vn:?})))?; \
                               ::core::result::Result::Ok({name}::{vn}(\
                                 ::serde::Deserialize::from_shim_value(__p)?)) \
                             }},"
                        ),
                        VariantKind::Tuple(len) => {
                            let inits: Vec<String> = (0..*len)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_shim_value(&__items[{i}])?")
                                })
                                .collect();
                            format!(
                                "{vn:?} => {{ \
                                   let __p = __payload.ok_or_else(|| ::serde::value::Error::msg(\
                                     ::std::format!(\"variant {{}}::{{}} expects a payload\", \
                                     {name:?}, {vn:?})))?; \
                                   let __items = __p.get_seq({name:?}, {len})?; \
                                   ::core::result::Result::Ok({name}::{vn}({})) \
                                 }},",
                                inits.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_shim_value(\
                                         __p.get_field({name:?}, {f:?})?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "{vn:?} => {{ \
                                   let __p = __payload.ok_or_else(|| ::serde::value::Error::msg(\
                                     ::std::format!(\"variant {{}}::{{}} expects a payload\", \
                                     {name:?}, {vn:?})))?; \
                                   ::core::result::Result::Ok({name}::{vn} {{ {} }}) \
                                 }},",
                                inits.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "let (__tag, __payload) = __v.get_variant({name:?})?; \
                 let _ = &__payload; \
                 match __tag {{ \
                   {} \
                   __other => ::core::result::Result::Err(::serde::value::Error::msg(\
                     ::std::format!(\"unknown variant `{{}}` of enum {{}}\", __other, {name:?}))) \
                 }}",
                arms.join(" ")
            )
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{ \
           fn from_shim_value(__v: &::serde::value::Value) \
             -> ::core::result::Result<Self, ::serde::value::Error> {{ {body} }} \
         }}"
    )
}
