//! No-op derive macros for the offline `serde` stand-in crate.
//!
//! The real `serde_derive` generates `Serialize`/`Deserialize` impls; this
//! shim accepts the same derive syntax (including `#[serde(...)]` helper
//! attributes) and expands to nothing, which is sufficient because nothing in
//! the workspace serializes values yet — the derives only declare intent for
//! downstream users with the real `serde` enabled.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
