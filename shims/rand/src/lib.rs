//! Offline stand-in for the `rand` crate, exposing the subset of the 0.8 API
//! that this workspace uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] / [`Rng::gen_bool`] and [`seq::SliceRandom::shuffle`].
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! this API-compatible subset instead (see the `[workspace.dependencies]`
//! table in the root `Cargo.toml`). The generator is a seeded xorshift64*,
//! which is deterministic across platforms — exactly what the reproducibility
//! of the B-Neck experiments needs. Swapping in the real `rand` crate is a
//! one-line change in the root manifest and must not change any public call
//! site.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform float in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // Use the top 53 bits, matching rand's `Standard` distribution.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seedable generators (the subset of `rand::SeedableRng` used here).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that can be sampled uniformly (subset of `rand::distributions`).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = ((hi - lo) as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + rng.next_f64() as $t * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + rng.next_f64() as $t * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xorshift64* with a splitmix64
    /// seed scrambler), standing in for `rand::rngs::SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 of the seed avoids the all-zero state and decorrelates
            // consecutive seeds.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            SmallRng {
                state: if z == 0 { 0x1234_5678_9ABC_DEF0 } else { z },
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

/// Sequence-related helpers (subset of `rand::seq`).
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Extension trait adding random shuffling to slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample(rng);
                self.swap(i, j);
            }
        }
    }
}

/// Commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::SmallRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_across_clones() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
            let i = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
