//! The shim's owned data-model tree and its JSON text form.
//!
//! [`Value`] plays the role real serde splits between its streaming data
//! model and `serde_json::Value`: every `Serialize` implementation produces a
//! `Value`, every `Deserialize` implementation consumes one, and the JSON
//! reader/writer below round-trips the tree through text. Object entries keep
//! insertion order (struct field declaration order), which keeps the golden
//! JSON fixtures readable.

use std::fmt;
use std::sync::Arc;

/// An owned JSON-like document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A finite floating-point number (non-finite floats are encoded as the
    /// strings `"inf"`, `"-inf"` and `"nan"`).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Value>),
    /// An object; entries keep insertion order.
    Map(Vec<(String, Value)>),
}

/// Error produced when a [`Value`] does not have the shape a `Deserialize`
/// implementation expects, or when JSON text cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn msg(message: impl Into<String>) -> Self {
        Error(message.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl Value {
    /// Builds an object from `(field, value)` pairs (used by the derive).
    pub fn record(fields: Vec<(&'static str, Value)>) -> Value {
        Value::Map(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Builds an externally tagged enum variant: `{"name": payload}` (used by
    /// the derive).
    pub fn variant(name: &str, payload: Value) -> Value {
        Value::Map(vec![(name.to_string(), payload)])
    }

    /// A short description of the value's shape, for error messages.
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "a number",
            Value::Str(_) => "a string",
            Value::Seq(_) => "an array",
            Value::Map(_) => "an object",
        }
    }

    /// The value of field `name`, for a struct named `ty` (used by the
    /// derive).
    ///
    /// # Errors
    ///
    /// Errors when `self` is not an object or the field is absent.
    pub fn get_field(&self, ty: &str, name: &str) -> Result<&Value, Error> {
        let Value::Map(entries) = self else {
            return Err(Error::msg(format!(
                "expected an object for struct {ty}, got {}",
                self.kind()
            )));
        };
        entries
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| Error::msg(format!("missing field `{name}` of struct {ty}")))
    }

    /// The elements of a tuple (struct) named `ty` with exactly `len` fields
    /// (used by the derive).
    ///
    /// # Errors
    ///
    /// Errors when `self` is not an array of length `len`.
    pub fn get_seq(&self, ty: &str, len: usize) -> Result<&[Value], Error> {
        let Value::Seq(items) = self else {
            return Err(Error::msg(format!(
                "expected an array for {ty}, got {}",
                self.kind()
            )));
        };
        if items.len() != len {
            return Err(Error::msg(format!(
                "expected {len} elements for {ty}, got {}",
                items.len()
            )));
        }
        Ok(items)
    }

    /// Splits an externally tagged enum value named `ty` into its variant
    /// name and optional payload (used by the derive): a bare string is a
    /// unit variant, a single-entry object is a data-carrying variant.
    ///
    /// # Errors
    ///
    /// Errors on any other shape.
    pub fn get_variant(&self, ty: &str) -> Result<(&str, Option<&Value>), Error> {
        match self {
            Value::Str(s) => Ok((s.as_str(), None)),
            Value::Map(entries) if entries.len() == 1 => {
                Ok((entries[0].0.as_str(), Some(&entries[0].1)))
            }
            other => Err(Error::msg(format!(
                "expected a variant of enum {ty} (a string or single-entry object), got {}",
                other.kind()
            ))),
        }
    }

    /// Renders the value as compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, None, 0);
        out
    }

    /// Renders the value as indented multi-line JSON.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write_json(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in, colon) = match indent {
            Some(width) => (
                "\n",
                " ".repeat(width * depth),
                " ".repeat(width * (depth + 1)),
                ": ",
            ),
            None => ("", String::new(), String::new(), ":"),
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::U64(n) => out.push_str(&n.to_string()),
            Value::I64(n) => out.push_str(&n.to_string()),
            Value::F64(x) => write_f64(out, *x),
            Value::Str(s) => write_json_string(out, s),
            Value::Seq(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write_json(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Value::Map(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_json_string(out, key);
                    out.push_str(colon);
                    value.write_json(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parses JSON text into a value tree.
    ///
    /// # Errors
    ///
    /// Errors on malformed JSON or trailing input.
    pub fn parse_json(text: &str) -> Result<Value, Error> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(Error::msg(format!(
                "trailing characters at byte {}",
                parser.pos
            )));
        }
        Ok(value)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_json())
    }
}

/// Writes a float: finite values use Rust's shortest round-trip formatting,
/// non-finite values the string encodings documented on [`Value::F64`].
fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        out.push_str(&x.to_string());
    } else if x.is_nan() {
        out.push_str("\"nan\"");
    } else if x > 0.0 {
        out.push_str("\"inf\"");
    } else {
        out.push_str("\"-inf\"");
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(Error::msg(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(Error::msg(format!(
                "invalid literal at byte {} (expected `{text}`)",
                self.pos
            )))
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(Error::msg("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let esc = rest
                        .get(1)
                        .copied()
                        .ok_or_else(|| Error::msg("unterminated escape sequence"))?;
                    self.pos += 2;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this shim's
                            // writer; map lone surrogates to the replacement
                            // character.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error::msg(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (the input is a &str, so the
                    // bytes are valid UTF-8).
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let c = text.chars().next().expect("non-empty string slice");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Implementations for primitives and std containers.
// ---------------------------------------------------------------------------

use crate::{Deserialize, Serialize};

macro_rules! ser_de_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_shim_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn from_shim_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    ref other => {
                        return Err(Error::msg(format!(
                            "expected an unsigned integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$ty>::try_from(n).map_err(|_| {
                    Error::msg(format!("{n} is out of range for {}", stringify!($ty)))
                })
            }
        }
    )*};
}

ser_de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_de_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_shim_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::U64(n as u64)
                } else {
                    Value::I64(n)
                }
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn from_shim_value(v: &Value) -> Result<Self, Error> {
                let n: i64 = match *v {
                    Value::U64(n) => i64::try_from(n)
                        .map_err(|_| Error::msg(format!("{n} is out of range")))?,
                    Value::I64(n) => n,
                    ref other => {
                        return Err(Error::msg(format!(
                            "expected an integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$ty>::try_from(n).map_err(|_| {
                    Error::msg(format!("{n} is out of range for {}", stringify!($ty)))
                })
            }
        }
    )*};
}

ser_de_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_de_float {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_shim_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn from_shim_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(x) => Ok(*x as $ty),
                    Value::U64(n) => Ok(*n as $ty),
                    Value::I64(n) => Ok(*n as $ty),
                    Value::Str(s) => match s.as_str() {
                        "inf" => Ok(<$ty>::INFINITY),
                        "-inf" => Ok(<$ty>::NEG_INFINITY),
                        "nan" => Ok(<$ty>::NAN),
                        _ => Err(Error::msg(format!("expected a number, got string `{s}`"))),
                    },
                    other => Err(Error::msg(format!(
                        "expected a number, got {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_shim_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_shim_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!(
                "expected a boolean, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_shim_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_shim_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_shim_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!(
                "expected a string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for char {
    fn to_shim_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for char {
    fn from_shim_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one character")),
            other => Err(Error::msg(format!(
                "expected a one-character string, got {other}"
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_shim_value(&self) -> Value {
        (**self).to_shim_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_shim_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_shim_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_shim_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_shim_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_shim_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_shim_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_shim_value(&self) -> Value {
        self.as_slice().to_shim_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_shim_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_shim_value).collect(),
            other => Err(Error::msg(format!(
                "expected an array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_shim_value(&self) -> Value {
        self.as_slice().to_shim_value()
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn from_shim_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_shim_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::msg(format!("expected an array of {N} elements, got {len}")))
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_shim_value(&self) -> Value {
        (**self).to_shim_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Arc<T> {
    fn from_shim_value(v: &Value) -> Result<Self, Error> {
        Ok(Arc::new(T::from_shim_value(v)?))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Arc<[T]> {
    fn from_shim_value(v: &Value) -> Result<Self, Error> {
        Ok(Vec::from_shim_value(v)?.into())
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_shim_value(&self) -> Value {
        (**self).to_shim_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_shim_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_shim_value(v)?))
    }
}

macro_rules! ser_de_tuple {
    ($(($len:literal; $($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_shim_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_shim_value()),+])
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn from_shim_value(v: &Value) -> Result<Self, Error> {
                let items = v.get_seq("a tuple", $len)?;
                Ok(($($name::from_shim_value(&items[$idx])?,)+))
            }
        }
    )*};
}

ser_de_tuple! {
    (1; A: 0)
    (2; A: 0, B: 1)
    (3; A: 0, B: 1, C: 2)
    (4; A: 0, B: 1, C: 2, D: 3)
}

/// Stringifies a serialized map key the way `serde_json` does for string and
/// integer keys; other key shapes become their compact JSON text (a shim
/// extension — real `serde_json` rejects them).
fn key_to_string(key: Value) -> String {
    match key {
        Value::Str(s) => s,
        Value::U64(n) => n.to_string(),
        Value::I64(n) => n.to_string(),
        other => other.to_json(),
    }
}

/// Recovers a map key of type `K` from its stringified form: first as a
/// string value, then as an integer, then as embedded JSON.
fn key_from_string<'de, K: Deserialize<'de>>(key: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_shim_value(&Value::Str(key.to_string())) {
        return Ok(k);
    }
    if let Ok(n) = key.parse::<u64>() {
        if let Ok(k) = K::from_shim_value(&Value::U64(n)) {
            return Ok(k);
        }
    }
    if let Ok(n) = key.parse::<i64>() {
        if let Ok(k) = K::from_shim_value(&Value::I64(n)) {
            return Ok(k);
        }
    }
    if let Ok(embedded) = Value::parse_json(key) {
        if let Ok(k) = K::from_shim_value(&embedded) {
            return Ok(k);
        }
    }
    Err(Error::msg(format!(
        "cannot reconstruct map key from `{key}`"
    )))
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_shim_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (key_to_string(k.to_shim_value()), v.to_shim_value()))
                .collect(),
        )
    }
}

impl<'de, K, V> Deserialize<'de> for std::collections::BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn from_shim_value(v: &Value) -> Result<Self, Error> {
        let Value::Map(entries) = v else {
            return Err(Error::msg(format!("expected an object, got {}", v.kind())));
        };
        entries
            .iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::from_shim_value(v)?)))
            .collect()
    }
}

impl<K, V, S> Serialize for std::collections::HashMap<K, V, S>
where
    K: Serialize,
    V: Serialize,
    S: std::hash::BuildHasher,
{
    fn to_shim_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(k.to_shim_value()), v.to_shim_value()))
            .collect();
        // Hash maps iterate in arbitrary order; sort for deterministic text.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<'de, K, V, S> Deserialize<'de> for std::collections::HashMap<K, V, S>
where
    K: Deserialize<'de> + Eq + std::hash::Hash,
    V: Deserialize<'de>,
    S: std::hash::BuildHasher + Default,
{
    fn from_shim_value(v: &Value) -> Result<Self, Error> {
        let Value::Map(entries) = v else {
            return Err(Error::msg(format!("expected an object, got {}", v.kind())));
        };
        entries
            .iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::from_shim_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_shim_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_shim_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips_through_text() {
        let value = Value::Map(vec![
            ("name".to_string(), Value::Str("exp \"1\"\n".to_string())),
            (
                "sweep".to_string(),
                Value::Seq(vec![Value::U64(10), Value::I64(-3), Value::F64(1.5)]),
            ),
            ("flag".to_string(), Value::Bool(true)),
            ("none".to_string(), Value::Null),
        ]);
        let compact = value.to_json();
        assert_eq!(Value::parse_json(&compact).unwrap(), value);
        let pretty = value.to_json_pretty();
        assert_eq!(Value::parse_json(&pretty).unwrap(), value);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn non_finite_floats_round_trip_as_strings() {
        assert_eq!(f64::INFINITY.to_shim_value().to_json(), "\"inf\"");
        let back = f64::from_shim_value(&Value::Str("inf".to_string())).unwrap();
        assert!(back.is_infinite() && back > 0.0);
        let nan = f64::from_shim_value(&Value::Str("nan".to_string())).unwrap();
        assert!(nan.is_nan());
    }

    #[test]
    fn integer_map_keys_stringify_and_recover() {
        let mut map = std::collections::BTreeMap::new();
        map.insert(7u64, 42u64);
        let value = map.to_shim_value();
        assert_eq!(value.to_json(), "{\"7\":42}");
        let back: std::collections::BTreeMap<u64, u64> =
            Deserialize::from_shim_value(&value).unwrap();
        assert_eq!(back, map);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(Value::parse_json("{\"a\": }").is_err());
        assert!(Value::parse_json("[1, 2").is_err());
        assert!(Value::parse_json("12 34").is_err());
        assert!(Value::parse_json("nul").is_err());
    }
}
