//! Offline stand-in for the `serde` crate: the two marker traits plus the
//! derive macros, so `#[derive(Serialize, Deserialize)]` and
//! `use serde::{Deserialize, Serialize}` compile without crates.io access.
//!
//! The derives are no-ops (see the sibling `serde-derive` shim); they exist so
//! the protocol types carry serialization intent for the day the workspace can
//! depend on the real `serde`. Swapping the real crate in is a one-line change
//! in the root manifest's `[workspace.dependencies]`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
