//! Offline stand-in for the `serde` crate: the two traits plus functional
//! derive macros, so `#[derive(Serialize, Deserialize)]` produces *working*
//! implementations without crates.io access.
//!
//! Unlike real serde's visitor-based streaming data model, this shim funnels
//! everything through an owned [`value::Value`] tree (roughly a JSON
//! document). The derives (see the sibling `serde-derive` shim) generate
//! `to_shim_value` / `from_shim_value` implementations that mirror serde's
//! *externally tagged* defaults, so JSON produced here matches what the real
//! `serde` + `serde_json` pair would produce for the same types:
//!
//! * structs with named fields become objects (fields in declaration order);
//! * newtype structs serialize as their inner value;
//! * tuple structs become arrays, unit structs become `null`;
//! * unit enum variants become `"VariantName"`, data-carrying variants become
//!   `{"VariantName": payload}`.
//!
//! Known divergences from real serde, chosen for an offline shim:
//!
//! * non-finite floats serialize as the strings `"inf"`, `"-inf"` and
//!   `"nan"` (real `serde_json` errors on them); deserialization accepts the
//!   same strings back, so `f64::INFINITY` round-trips;
//! * map keys that are not strings or integers are stringified as their
//!   compact JSON text (real `serde_json` errors on them).
//!
//! Swapping the real crates in is a `[workspace.dependencies]` edit in the
//! root manifest: real `serde_derive` regenerates the impls and the
//! `serde_json` shim's entry points (`to_string`, `to_string_pretty`,
//! `from_str`, `to_value`, `from_value`) have the same call signatures as the
//! real crate's.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

/// Serialization into the shim's [`value::Value`] tree.
///
/// Mirrors `serde::Serialize` in role; the method is shim-specific (real
/// serde drives a `Serializer` instead). Application code should go through
/// the `serde_json` shim's `to_string`/`to_value` rather than calling
/// [`Serialize::to_shim_value`] directly, so that swapping the real crates in
/// stays source compatible.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_shim_value(&self) -> value::Value;
}

/// Deserialization from the shim's [`value::Value`] tree.
///
/// Mirrors `serde::Deserialize` in role (the unused `'de` lifetime keeps
/// bounds such as `for<'de> Deserialize<'de>` source compatible with real
/// serde).
pub trait Deserialize<'de>: Sized {
    /// Reads `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns a [`value::Error`] describing the first shape or type mismatch
    /// encountered.
    fn from_shim_value(v: &value::Value) -> Result<Self, value::Error>;
}
