//! Offline stand-in for the `proptest` crate, covering the subset of the API
//! this workspace's property suites use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header;
//! * `param in strategy` bindings where the strategy is an integer or float
//!   range, `proptest::bool::ANY`, a tuple of strategies, or
//!   `prop::collection::vec(strategy, len_range)`;
//! * [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`].
//!
//! Each test runs `cases` deterministic pseudo-random cases (seeded from the
//! test name and the case index, so failures are reproducible run-to-run).
//! Unlike the real proptest there is no shrinking: a failing case reports its
//! index and message and panics immediately. `prop_assume!` rejections simply
//! skip the case. Swapping the real `proptest` in is a one-line change in the
//! root manifest's `[workspace.dependencies]`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::Range;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration (subset of `proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of pseudo-random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case did not pass (subset of `proptest::test_runner`).
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the test fails with this message.
    Fail(String),
    /// A `prop_assume!` precondition failed; the case is skipped.
    Reject(String),
}

/// The deterministic source of randomness handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// Creates the RNG for one test case.
    pub fn new(test_name: &str, case: u64) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(SmallRng::seed_from_u64(
            h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    /// Access to the underlying generator.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.0
    }
}

/// A generator of values for one test parameter.
pub trait Strategy {
    /// The type of values the strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.start..self.end)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A, B);
    (A, B, C);
    (A, B, C, D);
}

/// A strategy that always yields clones of one value (`proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Boolean strategies (subset of `proptest::bool`).
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A strategy producing uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    /// Uniformly random booleans, mirroring `proptest::bool::ANY`.
    pub const ANY: AnyBool = AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.rng().gen_bool(0.5)
        }
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use core::ops::Range;
    use rand::Rng;

    /// Strategy for `Vec`s with random length; see [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A strategy producing vectors whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.rng().gen_range(self.len.start..self.len.end);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runs the body of one generated test case; used by the [`proptest!`] macro.
pub fn run_cases<F>(test_name: &str, config: &ProptestConfig, mut case_fn: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rejected = 0u64;
    for case in 0..config.cases as u64 {
        let mut rng = TestRng::new(test_name, case);
        match case_fn(&mut rng) {
            Ok(()) => {}
            Err(TestCaseError::Reject(_)) => rejected += 1,
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{test_name}' failed at case {case}: {msg}")
            }
        }
    }
    if rejected == config.cases as u64 && config.cases > 0 {
        panic!("proptest '{test_name}': every case was rejected by prop_assume!");
    }
}

/// Declares property tests; mirrors `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(stringify!($name), &config, |__proptest_rng| {
                $(let $arg = $crate::Strategy::generate(&($strategy), __proptest_rng);)+
                $body
                Ok(())
            });
        }
    )*};
}

/// Fails the current case; mirrors `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Skips the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };

    /// Module alias so `prop::collection::vec(...)` resolves, as re-exported
    /// by the real `proptest::prelude`.
    pub use crate as prop;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_stay_in_bounds(
            n in 3usize..12,
            (a, b) in (0u64..100, 0.0f64..1.0),
            flag in crate::bool::ANY,
        ) {
            prop_assert!((3..12).contains(&n));
            prop_assert!(a < 100);
            prop_assert!((0.0..1.0).contains(&b));
            // Exercise the rejection path on roughly half the cases.
            prop_assume!(flag);
            prop_assert!(flag);
        }

        #[test]
        fn vec_strategy_respects_length(
            items in prop::collection::vec((0u64..10, 0u32..5), 1..20),
        ) {
            prop_assert!(!items.is_empty() && items.len() < 20);
            for (a, b) in &items {
                prop_assert!(*a < 10);
                prop_assert!(*b < 5);
            }
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        crate::run_cases("always_fails", &ProptestConfig::with_cases(4), |_| {
            Err(TestCaseError::Fail("nope".into()))
        });
    }
}
