//! Offline stand-in for the `criterion` benchmark harness, covering the
//! subset of the API the workspace's five benches use: [`Criterion`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkId`], [`Bencher::iter`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical machinery, each benchmark is warmed up
//! once and then timed for a fixed wall-clock budget; the mean ns/iteration is
//! printed in a stable single-line format that `BENCH_NOTES.md` records as the
//! repository's first trajectory anchor. Swapping the real `criterion` in is a
//! one-line change in the root manifest's `[workspace.dependencies]`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Wall-clock measurement budget per benchmark, overridable with the
/// `BNECK_BENCH_BUDGET_MS` environment variable.
#[allow(clippy::disallowed_methods)] // the bench harness is the one place wall-clock budgets belong
fn measurement_budget() -> Duration {
    let ms = std::env::var("BNECK_BENCH_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300u64);
    Duration::from_millis(ms)
}

/// The benchmark manager handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Mirrors `Criterion::configure_from_args`; CLI filtering is not
    /// implemented, the call is accepted for API compatibility.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
        }
    }

    /// Times a single function outside any group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one("", &id.to_string(), f);
        self
    }
}

/// A named set of related benchmarks (mirrors criterion's `BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the target number of samples (accepted for API compatibility; the
    /// shim is time-budgeted rather than sample-counted).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Times `f` under `id` within this group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&self.name, &id.to_string(), f);
        self
    }

    /// Times `f` under `id`, passing it a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier made of a function name and a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id like `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// The timing loop handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `f` repeatedly within the measurement budget and records the
    /// elapsed time per iteration.
    #[allow(clippy::disallowed_methods)] // the bench harness is the one place wall-clock timing belongs
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        let budget = measurement_budget();
        let started = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(f());
            iters += 1;
            if started.elapsed() >= budget {
                break;
            }
        }
        self.total = started.elapsed();
        self.iters = iters;
    }
}

fn run_one(group: &str, id: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut bencher);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if bencher.iters == 0 {
        println!("bench {label:<60} (no iterations recorded)");
    } else {
        let per_iter = bencher.total.as_nanos() as f64 / bencher.iters as f64;
        println!(
            "bench {label:<60} {:>14.0} ns/iter ({} iters)",
            per_iter, bencher.iters
        );
    }
}

/// Declares a group of benchmark functions; mirrors `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        /// Runs every benchmark registered in this `criterion_group!`.
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        /// Runs every benchmark registered in this `criterion_group!`.
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`; mirrors `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_self_test");
        group.sample_size(10);
        group.bench_function(BenchmarkId::new("sum", 100), |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::new("sum_input", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sum_bench);

    #[test]
    fn harness_runs_to_completion() {
        std::env::set_var("BNECK_BENCH_BUDGET_MS", "5");
        benches();
    }
}
