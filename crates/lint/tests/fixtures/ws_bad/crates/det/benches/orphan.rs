//! Positive fixture for BENCH001: no [[bench]] entry declares this file.

fn main() {}
