//! Positive fixture: one violation of every file-level rule.

use std::collections::HashMap; // DET001

pub fn naughty_map() -> HashMap<u32, u32> {
    HashMap::new()
}

pub fn clock() -> u64 {
    // xlint: allow(DET002)
    let _suppressed_but_reasonless = std::time::Instant::now(); // XLINT001
    let t = std::time::Instant::now(); // DET002 (unannotated)
    t.elapsed().as_nanos() as u64
}

// xlint: allow(HOT001, reason = "this file is not in the hot-path manifest, so this allow is stale") // XLINT002
pub fn stale_target() -> u32 {
    7
}

pub fn over_budget(a: Option<u32>, b: Option<u32>) -> u32 {
    a.unwrap() + b.unwrap() // UNW001: two sites, budget is one
}
