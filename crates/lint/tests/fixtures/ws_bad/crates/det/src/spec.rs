//! Positive fixture for SPEC001: `beta` has no golden fixture, and the
//! fixtures directory holds a stray `ghost.json`.

/// The shipped presets.
pub const PRESET_NAMES: [&str; 2] = ["alpha", "beta"];
