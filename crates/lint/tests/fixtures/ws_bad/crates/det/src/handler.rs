//! Positive fixture for EXH001: a catch-all arm swallowing protocol variants.

use crate::packet::Packet;

pub fn handle(p: Packet) -> u64 {
    match p {
        Packet::Join { session } => session, // EXH001: Probe and Leave unnamed
        _ => 0,                              // EXH001: catch-all
    }
}
