//! Positive fixture for HOT001: allocation in a hot-path-manifest module.

pub fn allocates() -> Vec<u32> {
    Vec::new() // HOT001
}
