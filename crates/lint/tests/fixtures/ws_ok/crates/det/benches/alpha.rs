//! Negative fixture for BENCH001: declares the group the manifest lists.

fn main() {
    let c = Criterion;
    c.benchmark_group("alpha_group");
}

struct Criterion;
impl Criterion {
    fn benchmark_group(&self, _name: &str) {}
}
