//! Negative fixture for EXH001: every variant named, ignored ones
//! explicitly.

use crate::packet::Packet;

pub fn handle(p: Packet) -> u64 {
    match p {
        Packet::Join { session } => session,
        Packet::Probe { session, .. } => session,
        Packet::Leave { .. } => 0,
    }
}
