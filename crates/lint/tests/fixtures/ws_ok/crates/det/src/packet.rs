//! The protocol enum the EXH001 fixtures match on.

/// A three-variant protocol message.
pub enum Packet {
    /// A session joins.
    Join { session: u64 },
    /// A probe.
    Probe { session: u64, rate: f64 },
    /// A session leaves.
    Leave { session: u64 },
}
