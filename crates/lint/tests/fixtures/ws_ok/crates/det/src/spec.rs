//! Negative fixture for SPEC001: the preset list and the fixtures
//! directory agree exactly.

/// The shipped presets.
pub const PRESET_NAMES: [&str; 1] = ["alpha"];
