//! Negative fixture: ordered collections, annotated exceptions with
//! reasons, and a bare unwrap exactly at its budget.

use std::collections::BTreeMap;

pub fn ordered_map() -> BTreeMap<u32, u32> {
    BTreeMap::new()
}

pub fn clock() -> u64 {
    // xlint: allow(DET002, reason = "fixture: timing detail that never reaches a report")
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}

pub fn at_budget(a: Option<u32>) -> u32 {
    a.unwrap() // one site, budget is one: neither finding nor note
}
