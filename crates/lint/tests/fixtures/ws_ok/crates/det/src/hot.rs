//! Negative fixture for HOT001: the one construction-time allocation is
//! annotated with its reason.

pub struct Buffers {
    scratch: Vec<u32>,
}

impl Buffers {
    pub fn new() -> Self {
        Buffers {
            // xlint: allow(HOT001, reason = "fixture: one-time construction, off the per-event path")
            scratch: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.scratch.len()
    }
}
