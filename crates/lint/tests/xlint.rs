//! End-to-end tests: the fixture corpus exercises every rule in both
//! directions, and the committed workspace itself must scan clean.

use bneck_lint::report::Report;
use bneck_lint::{run_workspace, Config};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// The config both fixture trees are laid out for.
fn fixture_config() -> Config {
    Config {
        deterministic_crates: vec!["det".to_string()],
        hot_path_files: vec!["crates/det/src/hot.rs".to_string()],
        handler_files: vec!["crates/det/src/handler.rs".to_string()],
        protocol_enums: vec![("Packet".to_string(), "crates/det/src/packet.rs".to_string())],
        unwrap_budget_file: "budget.txt".to_string(),
        spec_file: "crates/det/src/spec.rs".to_string(),
        spec_fixtures_dir: "specs".to_string(),
    }
}

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn scan(name: &str) -> Report {
    run_workspace(&fixture_root(name), &fixture_config()).expect("fixture tree scans")
}

#[test]
fn bad_fixture_triggers_every_rule() {
    let report = scan("ws_bad");
    let fired: BTreeSet<&str> = report.findings.iter().map(|f| f.rule).collect();
    for rule in [
        "DET001", "DET002", "EXH001", "HOT001", "UNW001", "SPEC001", "BENCH001", "XLINT001",
        "XLINT002",
    ] {
        assert!(
            fired.contains(rule),
            "{rule} did not fire on ws_bad; findings: {:#?}",
            report.findings
        );
    }
}

#[test]
fn bad_fixture_finding_lines_are_exact() {
    let report = scan("ws_bad");
    let has = |rule: &str, file: &str, line: u32| {
        report
            .findings
            .iter()
            .any(|f| f.rule == rule && f.file == file && f.line == line)
    };
    assert!(has("DET001", "crates/det/src/lib.rs", 3), "use line");
    assert!(
        has("DET002", "crates/det/src/lib.rs", 12),
        "bare Instant::now"
    );
    assert!(
        !has("DET002", "crates/det/src/lib.rs", 11),
        "the reasonless allow still suppresses; XLINT001 reports it instead"
    );
    assert!(
        has("XLINT001", "crates/det/src/lib.rs", 10),
        "allow without reason"
    );
    assert!(has("XLINT002", "crates/det/src/lib.rs", 16), "stale allow");
    assert!(
        has("HOT001", "crates/det/src/hot.rs", 4),
        "Vec::new in hot file"
    );
    assert!(
        has("EXH001", "crates/det/src/handler.rs", 6),
        "missing variants"
    );
    assert!(
        has("EXH001", "crates/det/src/handler.rs", 8),
        "catch-all arm"
    );
    assert_eq!(
        report
            .findings
            .iter()
            .filter(|f| f.rule == "UNW001")
            .count(),
        2,
        "both unwrap sites reported once over budget"
    );
}

#[test]
fn ok_fixture_is_clean_with_annotations_in_effect() {
    let report = scan("ws_ok");
    assert!(
        report.is_clean(),
        "ws_ok should be clean; findings: {:#?}",
        report.findings
    );
    assert_eq!(
        report.annotations_used, 2,
        "DET002 + HOT001 allows both used"
    );
    assert!(
        report.notes.is_empty(),
        "unwrap count equals its budget: no ratchet note; notes: {:?}",
        report.notes
    );
}

#[test]
fn workspace_is_xlint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives two levels under the workspace root")
        .to_path_buf();
    let report = run_workspace(&root, &Config::default()).expect("workspace scans");
    assert!(
        report.is_clean(),
        "the committed workspace must be xlint-clean; findings:\n{}",
        report.render_human()
    );
}
