//! `bneck-xlint`: a workspace-aware determinism and hot-path static-analysis
//! pass, wired as a CI gate.
//!
//! The roadmap's parallel-engine item stakes everything on determinism
//! invariants (bit-identical reports at any thread count). Until this crate,
//! those invariants lived in reviewers' heads and in after-the-fact dynamic
//! checks (`crates/bench/tests/determinism.rs`, the interleaving explorer).
//! xlint checks them *mechanically, before execution*, as named rules over a
//! lightweight Rust token stream (no crates.io dependencies — the same
//! offline discipline as the serde shims):
//!
//! | rule | scope | invariant |
//! |------|-------|-----------|
//! | DET001 | deterministic crates | no std `HashMap`/`HashSet` (seeded iteration order) |
//! | DET002 | everywhere but binary entry points | no `Instant::now`/`SystemTime`/`thread::current`/`std::env` reads |
//! | EXH001 | task-handler files | protocol `match`es name every enum variant, no `_ =>` |
//! | HOT001 | hot-path manifest | no allocation calls on the per-event path |
//! | UNW001 | deterministic crates | bare `unwrap()` ratchet — the count can only go down |
//! | SPEC001 | spec presets | every preset has a golden fixture, no stray fixtures |
//! | BENCH001 | bench targets | `[[bench]]`/source/manifest agree in both directions |
//!
//! A finding is suppressed only by an in-source annotation on (or directly
//! above) the offending line, and the reason is mandatory:
//!
//! ```text
//! // xlint: allow(DET001, reason = "fixed Fibonacci hasher: order is a pure function of the op sequence")
//! ```
//!
//! Meta-rules keep the annotations honest: XLINT001 (an annotation without a
//! reason, or naming an unknown rule) and XLINT002 (an annotation that
//! suppresses nothing — no stale allows).

pub mod ast;
pub mod lexer;
pub mod report;
pub mod rules;

use report::{Finding, Report, ALL_RULES};
use rules::{EnumSpec, FileContext};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// What xlint scans and enforces, as data. [`Config::default`] is the
/// committed B-Neck workspace policy; tests build smaller ones over fixture
/// trees.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crate directory names (under `crates/`) whose behaviour must be a
    /// pure function of (spec, seed): the protocol engine and everything
    /// below the experiment driver.
    pub deterministic_crates: Vec<String>,
    /// The hot-path manifest: workspace-relative files on the per-event path
    /// where allocation is banned (HOT001).
    pub hot_path_files: Vec<String>,
    /// Task-handler files whose protocol matches must be exhaustive (EXH001).
    pub handler_files: Vec<String>,
    /// Protocol enums checked by EXH001: `(enum name, defining file)`.
    pub protocol_enums: Vec<(String, String)>,
    /// The committed bare-`unwrap()` ratchet, per deterministic crate.
    pub unwrap_budget_file: String,
    /// The module holding `PRESET_NAMES` (SPEC001).
    pub spec_file: String,
    /// Directory of golden spec fixtures (SPEC001).
    pub spec_fixtures_dir: String,
}

impl Default for Config {
    fn default() -> Self {
        let s = |v: &[&str]| v.iter().map(|s| s.to_string()).collect();
        Config {
            deterministic_crates: s(&["sim", "core", "maxmin", "baselines", "net", "workload"]),
            hot_path_files: s(&[
                "crates/sim/src/engine.rs",
                "crates/sim/src/event.rs",
                "crates/sim/src/par.rs",
                "crates/core/src/router_link.rs",
                "crates/maxmin/src/idmap.rs",
            ]),
            handler_files: s(&[
                "crates/core/src/router_link.rs",
                "crates/core/src/source.rs",
                "crates/core/src/destination.rs",
                "crates/core/src/recovery.rs",
                "crates/core/src/harness.rs",
                "crates/node/src/codec.rs",
            ]),
            protocol_enums: vec![
                (
                    "Packet".to_string(),
                    "crates/core/src/packet.rs".to_string(),
                ),
                (
                    "Payload".to_string(),
                    "crates/core/src/harness.rs".to_string(),
                ),
            ],
            unwrap_budget_file: "crates/lint/unwrap-budget.txt".to_string(),
            spec_file: "crates/workload/src/spec.rs".to_string(),
            spec_fixtures_dir: "crates/bench/tests/specs".to_string(),
        }
    }
}

/// An annotation with its resolved target line and usage state.
#[derive(Debug)]
struct ResolvedAnnotation {
    line: u32,
    target: Option<u32>,
    rule: String,
    has_reason: bool,
    well_formed: bool,
    used: bool,
}

/// Runs the full workspace scan rooted at `root` (the directory containing
/// `crates/`).
///
/// # Errors
///
/// Only on I/O failure walking the tree; unreadable artifacts named by the
/// config surface as findings, not errors.
pub fn run_workspace(root: &Path, config: &Config) -> io::Result<Report> {
    let mut report = Report::default();
    let mut findings: Vec<Finding> = Vec::new();
    let mut unwrap_sites: BTreeMap<String, Vec<Finding>> = BTreeMap::new();

    // Preload the protocol enums for EXH001.
    let mut enums: Vec<EnumSpec> = Vec::new();
    for (name, file) in &config.protocol_enums {
        match fs::read_to_string(root.join(file)) {
            Ok(src) => match rules::enum_spec(&lexer::lex(&src).tokens, name) {
                Some(spec) => enums.push(spec),
                None => findings.push(Finding::new(
                    "EXH001",
                    file.clone(),
                    0,
                    format!("enum `{name}` not found in its defining file"),
                )),
            },
            Err(err) => findings.push(Finding::new(
                "EXH001",
                file.clone(),
                0,
                format!("cannot read enum definition: {err}"),
            )),
        }
    }

    for file in source_files(&root.join("crates"))? {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(&file)?;
        let lexed = lexer::lex(&src);
        let ctx = FileContext {
            path: rel.clone(),
            tokens: ast::strip_test_regions(&lexed.tokens),
        };
        report.files_scanned += 1;

        let crate_name = rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("")
            .to_string();
        let deterministic = config.deterministic_crates.contains(&crate_name);
        let entry_point = rel.ends_with("/src/main.rs") || rel.contains("/src/bin/");

        let mut raw: Vec<Finding> = Vec::new();
        if deterministic {
            raw.extend(rules::det001(&ctx));
        }
        if !entry_point {
            raw.extend(rules::det002(&ctx));
        }
        if config.hot_path_files.iter().any(|f| f == &rel) {
            raw.extend(rules::hot001(&ctx));
        }
        if config.handler_files.iter().any(|f| f == &rel) {
            raw.extend(rules::exh001(&ctx, &enums));
        }
        let raw_unwraps = if deterministic {
            rules::unw001(&ctx)
        } else {
            Vec::new()
        };

        // Resolve annotations to target lines and apply suppressions.
        let mut annotations = resolve_annotations(&lexed.annotations, &lexed.tokens, &ctx);
        raw.retain(|f| !suppress(&mut annotations, f));
        let mut kept_unwraps: Vec<Finding> = Vec::new();
        for f in raw_unwraps {
            if !suppress(&mut annotations, &f) {
                kept_unwraps.push(f);
            }
        }
        if deterministic {
            unwrap_sites
                .entry(crate_name)
                .or_default()
                .extend(kept_unwraps);
        }
        findings.extend(raw);

        // Meta-rules over the annotations themselves.
        for ann in &annotations {
            if ann.used {
                report.annotations_used += 1;
            }
            if !ann.well_formed || !ALL_RULES.contains(&ann.rule.as_str()) {
                findings.push(Finding::new(
                    "XLINT001",
                    rel.clone(),
                    ann.line,
                    format!(
                        "malformed annotation `{}`: expected `xlint: allow(RULE, reason = \"...\")` with a known rule",
                        ann.rule
                    ),
                ));
            } else if !ann.has_reason {
                findings.push(Finding::new(
                    "XLINT001",
                    rel.clone(),
                    ann.line,
                    format!(
                        "allow({}) without a reason: state why the invariant holds here",
                        ann.rule
                    ),
                ));
            } else if !ann.used {
                findings.push(Finding::new(
                    "XLINT002",
                    rel.clone(),
                    ann.line,
                    format!(
                        "stale allow({}): it suppresses nothing on line {}",
                        ann.rule,
                        ann.target.unwrap_or(ann.line)
                    ),
                ));
            }
        }
    }

    // UNW001: the advisory ratchet.
    let budget = read_budget(&root.join(&config.unwrap_budget_file));
    for (crate_name, sites) in unwrap_sites {
        let allowed = budget.get(&crate_name).copied().unwrap_or(0);
        let count = sites.len();
        match count.cmp(&allowed) {
            std::cmp::Ordering::Greater => {
                for mut f in sites {
                    f.message = format!(
                        "{} (crate `{crate_name}`: {count} bare unwrap(s), budget {allowed} in {})",
                        f.message, config.unwrap_budget_file
                    );
                    findings.push(f);
                }
            }
            std::cmp::Ordering::Less => {
                report.notes.push(format!(
                    "UNW001: crate `{crate_name}` has {count} bare unwrap(s), below its budget of {allowed} — ratchet {} down",
                    config.unwrap_budget_file
                ));
            }
            std::cmp::Ordering::Equal => {}
        }
    }

    // Cross-artifact rules.
    findings.extend(rules::spec001(
        root,
        &config.spec_file,
        &config.spec_fixtures_dir,
    ));
    findings.extend(rules::bench001(root));

    let rule_order = |rule: &str| {
        ALL_RULES
            .iter()
            .position(|r| *r == rule)
            .unwrap_or(usize::MAX)
    };
    findings.sort_by(|a, b| {
        rule_order(a.rule)
            .cmp(&rule_order(b.rule))
            .then_with(|| a.file.cmp(&b.file))
            .then_with(|| a.line.cmp(&b.line))
    });
    report.findings = findings;
    Ok(report)
}

/// Resolves each annotation's target line: its own line when code shares it,
/// otherwise the next line carrying code. Annotations whose target lies in a
/// stripped `#[cfg(test)]` region are dropped — no rule fires there, so they
/// would all read as stale.
fn resolve_annotations(
    annotations: &[lexer::Annotation],
    full_tokens: &[lexer::Token],
    ctx: &FileContext,
) -> Vec<ResolvedAnnotation> {
    let code_lines: std::collections::BTreeSet<u32> = ctx.tokens.iter().map(|t| t.line).collect();
    let full_lines: std::collections::BTreeSet<u32> = full_tokens.iter().map(|t| t.line).collect();
    annotations
        .iter()
        .filter(|a| {
            let full_target = if full_lines.contains(&a.line) {
                Some(a.line)
            } else {
                full_lines.range(a.line..).next().copied()
            };
            match full_target {
                Some(line) => code_lines.contains(&line),
                None => false,
            }
        })
        .map(|a| ResolvedAnnotation {
            line: a.line,
            target: if code_lines.contains(&a.line) {
                Some(a.line)
            } else {
                code_lines.range(a.line..).next().copied()
            },
            rule: a.rule.clone(),
            has_reason: a.reason.is_some(),
            well_formed: a.well_formed,
            used: false,
        })
        .collect()
}

/// `true` if an annotation suppresses this finding (marking it used).
/// Annotations without a reason still suppress — XLINT001 reports them
/// separately, so the underlying finding is not double-reported.
fn suppress(annotations: &mut [ResolvedAnnotation], finding: &Finding) -> bool {
    for ann in annotations.iter_mut() {
        if ann.well_formed && ann.rule == finding.rule && ann.target == Some(finding.line) {
            ann.used = true;
            return true;
        }
    }
    false
}

/// Parses the `crate = count` lines of the unwrap budget file.
fn read_budget(path: &Path) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    let Ok(text) = fs::read_to_string(path) else {
        return out;
    };
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some((name, count)) = line.split_once('=') {
            if let Ok(count) = count.trim().parse::<usize>() {
                out.insert(name.trim().to_string(), count);
            }
        }
    }
    out
}

/// Recursively lists the non-test `.rs` sources of every crate under `dir`:
/// each crate's `src/` tree (integration `tests/`, `benches/` and
/// `examples/` are dynamic-test surface, not shipped code).
fn source_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut crates: Vec<PathBuf> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.join("Cargo.toml").is_file() {
            crates.push(path.join("src"));
        }
    }
    crates.sort();
    let mut files = Vec::new();
    for src_dir in crates {
        if src_dir.is_dir() {
            collect_rs(&src_dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Locates the workspace root: from `start`, the first ancestor containing a
/// `crates/` directory.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        if d.join("crates").is_dir() {
            return Some(d.to_path_buf());
        }
        dir = d.parent();
    }
    None
}
