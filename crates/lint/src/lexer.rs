//! A lightweight Rust lexer: just enough tokenization for the xlint rules.
//!
//! The lexer's one hard obligation is getting *boundaries* right — comments,
//! string literals (including raw and byte strings), char literals versus
//! lifetimes — so that a `HashMap` inside a doc comment or a format string
//! never counts as code. Everything else (numeric literal grammar, the full
//! operator set) is deliberately loose: the rules only ever look at
//! identifiers, a handful of multi-character operators (`::`, `=>`, `->`,
//! `..`) and single punctuation characters.

/// What a [`Token`] is, at the granularity the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`match`, `HashMap`, `fn`, ...).
    Ident,
    /// A string, char, byte or numeric literal. The text of string literals
    /// is kept verbatim (quotes included) so artifact rules can read them.
    Literal,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// Punctuation: one of the combined operators `::`, `=>`, `->`, `..`, or
    /// a single character.
    Punct,
}

/// One lexed token with its 1-indexed source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token's kind.
    pub kind: TokenKind,
    /// The token's text, verbatim.
    pub text: String,
    /// 1-indexed line the token starts on.
    pub line: u32,
}

impl Token {
    /// `true` if the token is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// `true` if the token is punctuation with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }
}

/// An in-source suppression: `// xlint: allow(RULE, reason = "...")`.
///
/// An annotation suppresses findings of `rule` on its *target line*: the line
/// the comment sits on if that line has code, otherwise the next line that
/// does. The `reason` is mandatory — [`crate::rules::meta`] reports
/// annotations without one.
#[derive(Debug, Clone)]
pub struct Annotation {
    /// 1-indexed line of the comment itself.
    pub line: u32,
    /// The rule being allowed (e.g. `DET001`), or the malformed text.
    pub rule: String,
    /// The justification string, if one was given.
    pub reason: Option<String>,
    /// `true` if the comment parsed as `allow(<rule>, ...)` at all.
    pub well_formed: bool,
}

/// A lexed source file: tokens plus the xlint annotations found in comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, comments and whitespace removed.
    pub tokens: Vec<Token>,
    /// Every `// xlint:` annotation, in line order.
    pub annotations: Vec<Annotation>,
}

/// Lexes Rust source text.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                let comment = &src[start..i];
                if let Some(ann) = parse_annotation(comment, line) {
                    out.annotations.push(ann);
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Nested block comments, as in real Rust.
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                let (end, newlines) = scan_string(bytes, i);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: src[i..end].to_string(),
                    line,
                });
                line += newlines;
                i = end;
            }
            b'\'' => {
                let (end, kind) = scan_quote(bytes, i);
                out.tokens.push(Token {
                    kind,
                    text: src[i..end].to_string(),
                    line,
                });
                i = end;
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let (end, kind, newlines) = scan_word(bytes, i);
                out.tokens.push(Token {
                    kind,
                    text: src[i..end].to_string(),
                    line,
                });
                line += newlines;
                i = end;
            }
            c if c.is_ascii_digit() => {
                let end = scan_number(bytes, i);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: src[i..end].to_string(),
                    line,
                });
                i = end;
            }
            _ => {
                let two = &bytes[i..(i + 2).min(bytes.len())];
                let text = match two {
                    b"::" | b"=>" | b"->" | b".." => {
                        i += 2;
                        String::from_utf8_lossy(two).into_owned()
                    }
                    _ => {
                        i += 1;
                        (c as char).to_string()
                    }
                };
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text,
                    line,
                });
            }
        }
    }
    out
}

/// Scans a `"..."` string literal starting at the opening quote. Returns the
/// index one past the closing quote and the number of newlines crossed.
fn scan_string(bytes: &[u8], start: usize) -> (usize, u32) {
    let mut i = start + 1;
    let mut newlines = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            b'"' => return (i + 1, newlines),
            _ => i += 1,
        }
    }
    (i, newlines)
}

/// Scans a raw string `r"..."` / `r#"..."#` starting at the first `#` or `"`
/// after the `r` prefix. Returns one past the end and newlines crossed.
fn scan_raw_string(bytes: &[u8], start: usize) -> (usize, u32) {
    let mut i = start;
    let mut hashes = 0usize;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if bytes.get(i) != Some(&b'"') {
        return (i, 0); // not actually a raw string; let the caller re-lex
    }
    i += 1;
    let mut newlines = 0;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            newlines += 1;
            i += 1;
        } else if bytes[i] == b'"' && bytes[i + 1..].iter().take(hashes).all(|&b| b == b'#') {
            return (i + 1 + hashes, newlines);
        } else {
            i += 1;
        }
    }
    (i, newlines)
}

/// Scans from a `'`: either a char literal (`'x'`, `'\n'`) or a lifetime.
fn scan_quote(bytes: &[u8], start: usize) -> (usize, TokenKind) {
    let mut i = start + 1;
    if bytes.get(i) == Some(&b'\\') {
        // Escaped char literal; skip the escape then to the closing quote.
        i += 2;
        while i < bytes.len() && bytes[i] != b'\'' {
            i += 1;
        }
        return ((i + 1).min(bytes.len()), TokenKind::Literal);
    }
    // A single-character literal of any character ('x', '"', '(' ...), but
    // not an empty pair `''` (invalid Rust) or a lifetime (`'a, 'b` has no
    // closing quote two bytes on).
    if bytes.get(i).is_some_and(|&b| b != b'\'') && bytes.get(i + 1) == Some(&b'\'') {
        return (i + 2, TokenKind::Literal);
    }
    let word_start = i;
    while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
        i += 1;
    }
    if i > word_start {
        (i, TokenKind::Lifetime) // 'a as in &'a T
    } else {
        // A bare quote (only valid inside macros); consume it alone.
        (start + 1, TokenKind::Punct)
    }
}

/// Scans an identifier, keyword, or prefixed literal (`r"..."`, `b"..."`,
/// `b'x'`, `r#ident`). Returns (end, kind, newlines crossed).
fn scan_word(bytes: &[u8], start: usize) -> (usize, TokenKind, u32) {
    // Raw/byte string prefixes.
    let prefix_len = match &bytes[start..(start + 2).min(bytes.len())] {
        [b'r', b'"'] | [b'r', b'#'] | [b'b', b'"'] => 1,
        [b'b', b'r'] if matches!(bytes.get(start + 2), Some(b'"') | Some(b'#')) => 2,
        [b'b', b'\''] => {
            let (end, _) = scan_quote(bytes, start + 1);
            return (end, TokenKind::Literal, 0);
        }
        _ => 0,
    };
    if prefix_len > 0 {
        let after = start + prefix_len;
        if bytes.get(after) == Some(&b'#')
            && bytes
                .get(after + 1)
                .is_some_and(|b| b.is_ascii_alphabetic() || *b == b'_')
        {
            // r#ident raw identifier, not a raw string.
        } else {
            let (end, newlines) = scan_raw_string(bytes, after);
            return (end, TokenKind::Literal, newlines);
        }
    }
    let mut i = start;
    if bytes.get(i) == Some(&b'r') && bytes.get(i + 1) == Some(&b'#') {
        i += 2; // raw identifier
    }
    while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
        i += 1;
    }
    (i, TokenKind::Ident, 0)
}

/// Scans a numeric literal loosely: digits, `_`, type suffixes, exponents and
/// a decimal point — but never a `..` range operator.
fn scan_number(bytes: &[u8], start: usize) -> usize {
    let mut i = start;
    while i < bytes.len() {
        let c = bytes[i];
        if c == b'_'
            || c.is_ascii_alphanumeric()
            || (c == b'.' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit))
        {
            i += 1;
        } else if (c == b'+' || c == b'-')
            && matches!(bytes.get(i.wrapping_sub(1)), Some(b'e') | Some(b'E'))
            && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
        {
            i += 1; // 1e-3
        } else {
            break;
        }
    }
    i
}

/// Parses an `xlint:` line comment into an [`Annotation`], if it is one.
fn parse_annotation(comment: &str, line: u32) -> Option<Annotation> {
    let body = comment.trim_start_matches(['/', '!']).trim();
    let rest = body.strip_prefix("xlint:")?.trim();
    let Some(args) = rest
        .strip_prefix("allow")
        .map(str::trim_start)
        .and_then(|a| a.strip_prefix('('))
        .and_then(|a| a.rfind(')').map(|end| &a[..end]))
    else {
        return Some(Annotation {
            line,
            rule: rest.to_string(),
            reason: None,
            well_formed: false,
        });
    };
    let (rule, tail) = match args.split_once(',') {
        Some((rule, tail)) => (rule.trim(), tail.trim()),
        None => (args.trim(), ""),
    };
    let reason = tail
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|t| t.strip_prefix('='))
        .map(str::trim)
        .and_then(|t| t.strip_prefix('"'))
        .and_then(|t| t.strip_suffix('"'))
        .filter(|t| !t.trim().is_empty())
        .map(str::to_string);
    Some(Annotation {
        line,
        rule: rule.to_string(),
        reason,
        well_formed: !rule.is_empty() && rule.chars().all(|c| c.is_ascii_alphanumeric()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_identifiers() {
        let src = r##"
            // HashMap in a line comment
            /* HashMap /* nested */ still comment */
            /// HashMap in a doc comment
            let s = "HashMap in a string";
            let r = r#"HashMap in a raw string"#;
            let real = BTreeMap::new();
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(ids.contains(&"BTreeMap".to_string()));
    }

    #[test]
    fn char_literals_are_not_lifetimes() {
        let lexed = lex("let c = 'a'; fn f<'x>(v: &'x str) {} let n = '\\n';");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|t| t.text == "'x"));
    }

    #[test]
    fn ranges_do_not_eat_numbers() {
        let lexed = lex("for i in 0..window { x(1.5e-3); }");
        assert!(lexed.tokens.iter().any(|t| t.is_punct("..")));
        assert!(lexed.tokens.iter().any(|t| t.text == "1.5e-3"));
    }

    #[test]
    fn annotations_parse_rule_and_reason() {
        let lexed = lex(
            "let m = x(); // xlint: allow(DET001, reason = \"fixed hasher\")\n\
             // xlint: allow(HOT001)\n\
             // xlint: nonsense\n",
        );
        assert_eq!(lexed.annotations.len(), 3);
        assert_eq!(lexed.annotations[0].rule, "DET001");
        assert_eq!(lexed.annotations[0].reason.as_deref(), Some("fixed hasher"));
        assert!(lexed.annotations[0].well_formed);
        assert_eq!(lexed.annotations[1].rule, "HOT001");
        assert_eq!(lexed.annotations[1].reason, None);
        assert!(!lexed.annotations[2].well_formed);
    }

    #[test]
    fn multiline_strings_keep_line_numbers() {
        let lexed = lex("let s = \"a\nb\nc\";\nlet t = 1;");
        let t = lexed.tokens.iter().find(|t| t.text == "t").unwrap();
        assert_eq!(t.line, 4);
    }
}
