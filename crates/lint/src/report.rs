//! Findings and their rendering: human tables and `--json` output.

use std::fmt::Write as _;

/// One rule violation (or meta problem) at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier, e.g. `DET001`.
    pub rule: &'static str,
    /// Workspace-relative path of the offending file (or artifact).
    pub file: String,
    /// 1-indexed line, or 0 for whole-file/artifact findings.
    pub line: u32,
    /// What went wrong, in one sentence.
    pub message: String,
}

impl Finding {
    /// Creates a finding.
    pub fn new(
        rule: &'static str,
        file: impl Into<String>,
        line: u32,
        message: impl Into<String>,
    ) -> Self {
        Finding {
            rule,
            file: file.into(),
            line,
            message: message.into(),
        }
    }
}

/// The result of a workspace scan.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed findings, in rule-then-file order.
    pub findings: Vec<Finding>,
    /// Advisory notes: printed, never failing (e.g. a ratchet that could be
    /// tightened).
    pub notes: Vec<String>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Number of `xlint: allow` annotations that suppressed a finding.
    pub annotations_used: usize,
}

impl Report {
    /// `true` when the scan produced no findings (notes do not count).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the human-readable table.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        if self.findings.is_empty() {
            let _ = writeln!(
                out,
                "xlint: clean ({} files scanned, {} allow annotation(s) in effect)",
                self.files_scanned, self.annotations_used
            );
        } else {
            let loc = |f: &Finding| {
                if f.line == 0 {
                    f.file.clone()
                } else {
                    format!("{}:{}", f.file, f.line)
                }
            };
            let width = self
                .findings
                .iter()
                .map(|f| loc(f).len())
                .max()
                .unwrap_or(0);
            let mut last_rule = "";
            for f in &self.findings {
                if f.rule != last_rule {
                    let _ = writeln!(out, "\n{} — {}", f.rule, rule_summary(f.rule));
                    last_rule = f.rule;
                }
                let _ = writeln!(out, "  {:width$}  {}", loc(f), f.message);
            }
            let _ = writeln!(
                out,
                "\nxlint: {} finding(s) across {} files scanned",
                self.findings.len(),
                self.files_scanned
            );
            let _ = writeln!(
                out,
                "suppress only with `// xlint: allow(RULE, reason = \"...\")` — the reason is required"
            );
        }
        for note in &self.notes {
            let _ = writeln!(out, "note: {note}");
        }
        out
    }

    /// Renders the `--json` form: a stable, machine-readable findings list.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
                if i == 0 { "" } else { "," },
                json_str(f.rule),
                json_str(&f.file),
                f.line,
                json_str(&f.message)
            );
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        let _ = write!(
            out,
            "],\n  \"notes\": [{}],\n  \"files_scanned\": {},\n  \"annotations_used\": {},\n  \"clean\": {}\n}}\n",
            self.notes
                .iter()
                .map(|n| json_str(n))
                .collect::<Vec<_>>()
                .join(", "),
            self.files_scanned,
            self.annotations_used,
            self.is_clean()
        );
        out
    }
}

/// One-line summary of each rule, shown in tables and `--list-rules`.
pub fn rule_summary(rule: &str) -> &'static str {
    match rule {
        "DET001" => {
            "no std HashMap/HashSet in deterministic crates (iteration order is nondeterministic)"
        }
        "DET002" => "no wall-clock, thread-identity or environment reads in deterministic crates",
        "EXH001" => {
            "protocol matches in task handlers name every enum variant; no `_ =>` swallowing"
        }
        "HOT001" => "no allocation calls inside hot-path-manifest modules",
        "UNW001" => "bare `unwrap()` count in deterministic crates may only go down (ratchet)",
        "SPEC001" => "every spec preset has a golden fixture, and no fixture is stray",
        "BENCH001" => {
            "every [[bench]] target is declared, present and covered by bench-manifest.txt"
        }
        "XLINT001" => "an `xlint: allow` annotation must carry a non-empty reason",
        "XLINT002" => "an `xlint: allow` annotation must suppress something (no stale allows)",
        _ => "unknown rule",
    }
}

/// All rule identifiers, in listing order.
pub const ALL_RULES: &[&str] = &[
    "DET001", "DET002", "EXH001", "HOT001", "UNW001", "SPEC001", "BENCH001", "XLINT001", "XLINT002",
];

/// Escapes a string as a JSON literal (quotes included).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_shape() {
        let mut report = Report {
            files_scanned: 3,
            ..Report::default()
        };
        report
            .findings
            .push(Finding::new("DET001", "a/b.rs", 7, "uses \"HashMap\""));
        let json = report.render_json();
        assert!(json.contains("\"rule\": \"DET001\""));
        assert!(json.contains("\\\"HashMap\\\""));
        assert!(json.contains("\"clean\": false"));
    }

    #[test]
    fn clean_report_renders_quietly() {
        let report = Report {
            files_scanned: 5,
            annotations_used: 2,
            ..Report::default()
        };
        assert!(report.is_clean());
        assert!(report.render_human().contains("clean"));
        assert!(report.render_json().contains("\"clean\": true"));
    }
}
