//! The `bneck-xlint` binary: scans the workspace and exits non-zero on any
//! unannotated finding. See the crate docs for the rule table.

use bneck_lint::report::{rule_summary, ALL_RULES};
use bneck_lint::{find_root, run_workspace, Config};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
bneck-xlint — workspace determinism & hot-path static analysis

USAGE:
  bneck-xlint [--json] [--root PATH] [--list-rules]

OPTIONS:
  --json        emit findings as JSON instead of human tables
  --root PATH   workspace root to scan (default: walk up from the
                current directory to the first one containing crates/)
  --list-rules  print the rule table and exit

EXIT STATUS:
  0 when the scan is clean, 1 on any finding, 2 on usage or I/O errors.

Suppress a finding only with an in-source annotation carrying a reason:
  // xlint: allow(DET001, reason = \"fixed hasher: order is deterministic\")";

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(path) => root = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--root requires a path\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => {
                for rule in ALL_RULES {
                    println!("{rule}  {}", rule_summary(rule));
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(|| std::env::current_dir().ok().and_then(|cwd| find_root(&cwd))) {
        Some(root) => root,
        None => {
            eprintln!("no workspace root found (no ancestor directory contains crates/)");
            return ExitCode::from(2);
        }
    };

    match run_workspace(&root, &Config::default()) {
        Ok(report) => {
            if json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_human());
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("xlint: scan failed: {err}");
            ExitCode::from(2)
        }
    }
}
