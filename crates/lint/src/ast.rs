//! Shallow syntactic analyses over the token stream: `#[cfg(test)]` region
//! stripping, `enum` variant extraction and `match`-arm scanning.

use crate::lexer::Token;

/// Returns the token stream with every `#[cfg(test)]`-gated item removed.
///
/// An item is the attribute's target: any further attributes and doc
/// comments, then everything up to the end of its balanced `{ ... }` block
/// (or its terminating `;` for block-less items such as `use`). This is what
/// makes the scan a *non-test* source scan: `mod tests { ... }` bodies and
/// test-only imports never reach the rules.
pub fn strip_test_regions(tokens: &[Token]) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0usize;
    while i < tokens.len() {
        if let Some(attr_end) = parse_cfg_test_attr(tokens, i) {
            i = skip_item(tokens, attr_end);
        } else {
            out.push(tokens[i].clone());
            i += 1;
        }
    }
    out
}

/// If `tokens[i..]` starts a `#[cfg(...test...)]` attribute, returns the
/// index one past its closing `]`.
fn parse_cfg_test_attr(tokens: &[Token], i: usize) -> Option<usize> {
    if !tokens.get(i)?.is_punct("#") || !tokens.get(i + 1)?.is_punct("[") {
        return None;
    }
    let mut depth = 1usize;
    let mut j = i + 2;
    let mut saw_cfg = false;
    let mut saw_test = false;
    while j < tokens.len() && depth > 0 {
        let t = &tokens[j];
        if t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("]") {
            depth -= 1;
        } else if t.is_ident("cfg") {
            saw_cfg = true;
        } else if t.is_ident("test") {
            saw_test = true;
        }
        j += 1;
    }
    (saw_cfg && saw_test).then_some(j)
}

/// Skips the item starting at `i`: leading attributes and visibility, then
/// either a balanced brace block or a terminating `;`, whichever comes first.
fn skip_item(tokens: &[Token], mut i: usize) -> usize {
    // Further attributes on the same item.
    while i + 1 < tokens.len() && tokens[i].is_punct("#") && tokens[i + 1].is_punct("[") {
        let mut depth = 1usize;
        i += 2;
        while i < tokens.len() && depth > 0 {
            if tokens[i].is_punct("[") {
                depth += 1;
            } else if tokens[i].is_punct("]") {
                depth -= 1;
            }
            i += 1;
        }
    }
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct(";") {
            return i + 1;
        }
        if t.is_punct("{") {
            let mut depth = 1usize;
            i += 1;
            while i < tokens.len() && depth > 0 {
                if tokens[i].is_punct("{") {
                    depth += 1;
                } else if tokens[i].is_punct("}") {
                    depth -= 1;
                }
                i += 1;
            }
            return i;
        }
        i += 1;
    }
    i
}

/// Extracts the variant names of `enum <name>` from a token stream.
///
/// Returns `None` when no such enum definition is present.
pub fn enum_variants(tokens: &[Token], name: &str) -> Option<Vec<String>> {
    let mut i = 0usize;
    while i < tokens.len()
        && !(tokens[i].is_ident("enum") && tokens.get(i + 1).is_some_and(|t| t.is_ident(name)))
    {
        i += 1;
    }
    if i >= tokens.len() {
        return None;
    }
    i += 2;
    // Skip generics, if any, to the opening brace.
    while i < tokens.len() && !tokens[i].is_punct("{") {
        i += 1;
    }
    if i >= tokens.len() {
        return None;
    }
    i += 1; // inside the enum body
    let mut variants = Vec::new();
    while i < tokens.len() && !tokens[i].is_punct("}") {
        // Skip attributes before the variant.
        while i + 1 < tokens.len() && tokens[i].is_punct("#") && tokens[i + 1].is_punct("[") {
            let mut depth = 1usize;
            i += 2;
            while i < tokens.len() && depth > 0 {
                if tokens[i].is_punct("[") {
                    depth += 1;
                } else if tokens[i].is_punct("]") {
                    depth -= 1;
                }
                i += 1;
            }
        }
        if i >= tokens.len() || tokens[i].is_punct("}") {
            break;
        }
        if tokens[i].kind == crate::lexer::TokenKind::Ident {
            variants.push(tokens[i].text.clone());
        }
        i += 1;
        // Skip the variant's fields/discriminant to the next top-level comma.
        let mut depth = 0usize;
        while i < tokens.len() {
            let t = &tokens[i];
            if t.is_punct("(") || t.is_punct("{") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth = depth.saturating_sub(1);
            } else if t.is_punct("}") {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            } else if t.is_punct(",") && depth == 0 {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    Some(variants)
}

/// One `match` expression found in a token stream: its source line and the
/// pattern tokens of each arm (guards included, bodies excluded).
#[derive(Debug)]
pub struct MatchExpr {
    /// Line of the `match` keyword.
    pub line: u32,
    /// Per-arm pattern token lists.
    pub arm_patterns: Vec<Vec<Token>>,
}

impl MatchExpr {
    /// The variants of `enum_name` referenced across all arm patterns
    /// (`Enum::Variant` paths).
    pub fn referenced_variants(&self, enum_name: &str) -> Vec<String> {
        let mut out = Vec::new();
        for pattern in &self.arm_patterns {
            for w in pattern.windows(3) {
                if w[0].is_ident(enum_name)
                    && w[1].is_punct("::")
                    && w[2].kind == crate::lexer::TokenKind::Ident
                    && !out.contains(&w[2].text)
                {
                    out.push(w[2].text.clone());
                }
            }
        }
        out
    }

    /// Lines of arms whose whole pattern is a catch-all: a bare `_`, a bare
    /// `_` with a guard, or a single binding identifier.
    pub fn catch_all_arms(&self) -> Vec<u32> {
        let mut out = Vec::new();
        for pattern in &self.arm_patterns {
            let Some(first) = pattern.first() else {
                continue;
            };
            // `_` lexes as an identifier-shaped token; compare by text.
            let is_catch_all = match pattern.len() {
                1 => first.kind == crate::lexer::TokenKind::Ident,
                _ => first.text == "_" && pattern.get(1).is_some_and(|t| t.is_ident("if")),
            };
            if is_catch_all {
                out.push(first.line);
            }
        }
        out
    }
}

/// Finds every `match` expression in a token stream and parses its arms.
pub fn find_matches(tokens: &[Token]) -> Vec<MatchExpr> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_ident("match") {
            let line = tokens[i].line;
            // The body is the first `{` at bracket/paren depth 0 after the
            // scrutinee (a bare struct literal cannot appear there).
            let mut depth = 0usize;
            let mut j = i + 1;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.is_punct("(") || t.is_punct("[") {
                    depth += 1;
                } else if t.is_punct(")") || t.is_punct("]") {
                    depth = depth.saturating_sub(1);
                } else if t.is_punct("{") {
                    if depth == 0 {
                        break;
                    }
                    depth += 1;
                } else if t.is_punct("}") {
                    depth = depth.saturating_sub(1);
                }
                j += 1;
            }
            if j < tokens.len() {
                let (arms, _end) = parse_arms(tokens, j + 1);
                out.push(MatchExpr {
                    line,
                    arm_patterns: arms,
                });
                // Resume just inside the body so nested matches (in arm
                // bodies) are discovered too.
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Parses the arms of a match body starting just inside its `{`. Returns the
/// arm patterns and the index one past the body's closing `}`.
fn parse_arms(tokens: &[Token], start: usize) -> (Vec<Vec<Token>>, usize) {
    let mut arms = Vec::new();
    let mut i = start;
    loop {
        // End of body?
        match tokens.get(i) {
            None => return (arms, i),
            Some(t) if t.is_punct("}") => return (arms, i + 1),
            _ => {}
        }
        // Pattern: tokens up to `=>` at local depth 0.
        let mut pattern = Vec::new();
        let mut depth = 0usize;
        while i < tokens.len() {
            let t = &tokens[i];
            if t.is_punct("=>") && depth == 0 {
                i += 1;
                break;
            }
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth = depth.saturating_sub(1);
            } else if t.is_punct("}") {
                if depth == 0 {
                    // Malformed arm (or macro soup); bail out of this match.
                    return (arms, i + 1);
                }
                depth -= 1;
            }
            pattern.push(t.clone());
            i += 1;
        }
        arms.push(pattern);
        // Body: a balanced block, or an expression up to a `,` at depth 0.
        if tokens.get(i).is_some_and(|t| t.is_punct("{")) {
            let mut d = 1usize;
            i += 1;
            while i < tokens.len() && d > 0 {
                if tokens[i].is_punct("{") {
                    d += 1;
                } else if tokens[i].is_punct("}") {
                    d -= 1;
                }
                i += 1;
            }
            if tokens.get(i).is_some_and(|t| t.is_punct(",")) {
                i += 1;
            }
        } else {
            let mut d = 0usize;
            while i < tokens.len() {
                let t = &tokens[i];
                if t.is_punct(",") && d == 0 {
                    i += 1;
                    break;
                }
                if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                    d += 1;
                } else if t.is_punct(")") || t.is_punct("]") {
                    d = d.saturating_sub(1);
                } else if t.is_punct("}") {
                    if d == 0 {
                        break; // end of the match body
                    }
                    d -= 1;
                }
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn test_modules_are_stripped() {
        let src = "
            fn real() { let x = HashMap::new(); }
            #[cfg(test)]
            mod tests {
                fn fake() { let y = HashSet::new(); }
            }
            fn also_real() {}
        ";
        let tokens = strip_test_regions(&lex(src).tokens);
        assert!(tokens.iter().any(|t| t.is_ident("HashMap")));
        assert!(!tokens.iter().any(|t| t.is_ident("HashSet")));
        assert!(tokens.iter().any(|t| t.is_ident("also_real")));
    }

    #[test]
    fn cfg_test_on_single_items_and_imports() {
        let src = "
            #[cfg(test)]
            use std::collections::HashSet;
            #[cfg(test)]
            #[derive(Debug)]
            struct Probe { x: u32 }
            fn real() {}
        ";
        let tokens = strip_test_regions(&lex(src).tokens);
        assert!(!tokens.iter().any(|t| t.is_ident("HashSet")));
        assert!(!tokens.iter().any(|t| t.is_ident("Probe")));
        assert!(tokens.iter().any(|t| t.is_ident("real")));
    }

    #[test]
    fn enum_variants_are_extracted() {
        let src = "
            pub enum Packet {
                #[doc = \"hi\"]
                Join { session: u32, rate: f64 },
                Probe(u32, Option<(u8, u8)>),
                Leave,
            }
        ";
        let variants = enum_variants(&lex(src).tokens, "Packet").unwrap();
        assert_eq!(variants, vec!["Join", "Probe", "Leave"]);
        assert!(enum_variants(&lex(src).tokens, "Missing").is_none());
    }

    #[test]
    fn match_arms_and_catch_alls() {
        let src = "
            fn f(p: Packet) {
                match p {
                    Packet::Join { x, .. } | Packet::Probe { .. } => go(x),
                    Packet::Leave => { done(); }
                    other => ignore(other),
                }
            }
        ";
        let matches = find_matches(&lex(src).tokens);
        assert_eq!(matches.len(), 1);
        let m = &matches[0];
        assert_eq!(m.arm_patterns.len(), 3);
        assert_eq!(
            m.referenced_variants("Packet"),
            vec!["Join", "Probe", "Leave"]
        );
        assert_eq!(m.catch_all_arms().len(), 1);
    }

    #[test]
    fn tuple_wildcards_are_not_catch_alls() {
        let src = "
            fn f(x: (T, P)) {
                match x {
                    (_, Payload::Api(call)) => a(call),
                    (_, Payload::Data { .. }) | (_, Payload::Ack { .. }) => b(),
                }
            }
        ";
        let m = &find_matches(&lex(src).tokens)[0];
        assert!(m.catch_all_arms().is_empty());
        assert_eq!(m.referenced_variants("Payload"), vec!["Api", "Data", "Ack"]);
    }

    #[test]
    fn guarded_wildcard_is_a_catch_all() {
        let src = "fn f(p: P) { match p { P::A => 1, _ if p.ok() => 2, P::B => 3, }; }";
        let m = &find_matches(&lex(src).tokens)[0];
        assert_eq!(m.catch_all_arms().len(), 1);
    }

    #[test]
    fn nested_matches_are_all_found() {
        let src = "
            fn f(p: P) {
                match p {
                    P::A => match q { Q::X => 1, Q::Y => 2 },
                    P::B => 0,
                }
            }
        ";
        let matches = find_matches(&lex(src).tokens);
        assert_eq!(matches.len(), 2);
    }
}
