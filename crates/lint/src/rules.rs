//! The xlint rules.
//!
//! Token-pattern rules (`DET001`, `DET002`, `HOT001`, `UNW001`) scan the
//! non-test token stream of one file; structural rules (`EXH001`) use the
//! match-arm scanner; artifact rules (`SPEC001`, `BENCH001`) cross-check
//! source constants against files on disk. Every rule returns *candidate*
//! findings — suppression by `// xlint: allow(...)` annotations happens in
//! the driver ([`crate::run_workspace`]), which also enforces that every
//! annotation carries a reason and actually suppresses something.

use crate::ast;
use crate::lexer::{lex, Token, TokenKind};
use crate::report::Finding;
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

/// A file prepared for scanning: its path (workspace-relative, `/`-separated)
/// and non-test token stream.
#[derive(Debug)]
pub struct FileContext {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// The file's tokens with `#[cfg(test)]` regions stripped.
    pub tokens: Vec<Token>,
}

/// Pushes `finding` unless the same rule already fired on that line (one
/// finding per line per rule keeps tables readable).
fn push_dedup(findings: &mut Vec<Finding>, finding: Finding) {
    if !findings
        .iter()
        .any(|f| f.rule == finding.rule && f.line == finding.line && f.file == finding.file)
    {
        findings.push(finding);
    }
}

/// `true` if `tokens[i..]` is the path sequence `first :: second`.
fn is_path2(tokens: &[Token], i: usize, first: &str, second: &str) -> bool {
    tokens[i].is_ident(first)
        && tokens.get(i + 1).is_some_and(|t| t.is_punct("::"))
        && tokens.get(i + 2).is_some_and(|t| t.is_ident(second))
}

/// `true` if `tokens[i..]` is a method call `. name (`.
fn is_method_call(tokens: &[Token], i: usize, name: &str) -> bool {
    tokens[i].is_punct(".")
        && tokens.get(i + 1).is_some_and(|t| t.is_ident(name))
        && tokens.get(i + 2).is_some_and(|t| t.is_punct("("))
}

/// DET001: no std `HashMap`/`HashSet` in deterministic crates.
///
/// Iteration order of the std hash collections depends on a per-process
/// random seed, which is the classic silent determinism killer for a sharded
/// engine that must produce bit-identical reports at any thread count. The
/// rule flags every *mention* of the types, not just iteration: a map that
/// exists will eventually be iterated, and lookup-only or fixed-hasher uses
/// (e.g. `FastMap`) carry an `xlint: allow` with the invariant as reason.
pub fn det001(ctx: &FileContext) -> Vec<Finding> {
    let mut findings = Vec::new();
    for t in &ctx.tokens {
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            push_dedup(
                &mut findings,
                Finding::new(
                    "DET001",
                    &ctx.path,
                    t.line,
                    format!(
                        "`{}` in a deterministic crate: iteration order is seeded per process; use BTreeMap/BTreeSet, a sorted Vec, or IdSlotMap",
                        t.text
                    ),
                ),
            );
        }
    }
    findings
}

/// DET002: no wall-clock, thread-identity or environment reads in
/// deterministic crates (wall-clock belongs only in bench reporting, and
/// even there each site states why it cannot perturb results).
pub fn det002(ctx: &FileContext) -> Vec<Finding> {
    const ENV_READS: &[&str] = &["var", "var_os", "vars", "vars_os", "args", "args_os"];
    let mut findings = Vec::new();
    let tokens = &ctx.tokens;
    for i in 0..tokens.len() {
        let what = if is_path2(tokens, i, "Instant", "now") {
            Some("`Instant::now()` (wall clock)")
        } else if tokens[i].is_ident("SystemTime") {
            Some("`SystemTime` (wall clock)")
        } else if is_path2(tokens, i, "thread", "current") {
            Some("`thread::current()` (thread identity)")
        } else if tokens[i].is_ident("env")
            && tokens.get(i + 1).is_some_and(|t| t.is_punct("::"))
            && tokens
                .get(i + 2)
                .is_some_and(|t| ENV_READS.iter().any(|m| t.is_ident(m)))
        {
            Some("`std::env` read (process environment)")
        } else {
            None
        };
        if let Some(what) = what {
            push_dedup(
                &mut findings,
                Finding::new(
                    "DET002",
                    &ctx.path,
                    tokens[i].line,
                    format!("{what}: results must be a pure function of (spec, seed)"),
                ),
            );
        }
    }
    findings
}

/// HOT001: no allocation calls inside hot-path-manifest modules.
///
/// The per-event path was deliberately freed of allocation (reusable
/// `ActionBuffer`, calendar ring, inline id map); this rule keeps it that
/// way. One-time construction sites are annotated with the reason they are
/// off the per-event path.
pub fn hot001(ctx: &FileContext) -> Vec<Finding> {
    const ALLOC_METHODS: &[&str] = &["to_vec", "to_owned", "to_string", "clone"];
    let mut findings = Vec::new();
    let tokens = &ctx.tokens;
    for i in 0..tokens.len() {
        let what =
            if is_path2(tokens, i, "Vec", "new") || is_path2(tokens, i, "Vec", "with_capacity") {
                Some("`Vec` allocation".to_string())
            } else if is_path2(tokens, i, "Box", "new") {
                Some("`Box::new` allocation".to_string())
            } else if is_path2(tokens, i, "String", "from") {
                Some("`String::from` allocation".to_string())
            } else if (tokens[i].is_ident("vec") || tokens[i].is_ident("format"))
                && tokens.get(i + 1).is_some_and(|t| t.is_punct("!"))
            {
                Some(format!("`{}!` allocation", tokens[i].text))
            } else if tokens[i].is_punct(".")
                && tokens
                    .get(i + 1)
                    .is_some_and(|t| ALLOC_METHODS.iter().any(|m| t.is_ident(m)))
                && tokens.get(i + 2).is_some_and(|t| t.is_punct("("))
            {
                Some(format!("`.{}()` allocation", tokens[i + 1].text))
            } else {
                None
            };
        if let Some(what) = what {
            push_dedup(
                &mut findings,
                Finding::new(
                    "HOT001",
                    &ctx.path,
                    tokens[i].line,
                    format!("{what} in a hot-path-manifest module: the per-event path must not allocate"),
                ),
            );
        }
    }
    findings
}

/// UNW001 candidate sites: bare `.unwrap()` calls (test code excluded).
///
/// Advisory ratchet: the driver compares the per-crate count against the
/// committed budget in `crates/lint/unwrap-budget.txt`; the budget can only
/// be lowered. `expect("...")` with the invariant stated is always fine.
pub fn unw001(ctx: &FileContext) -> Vec<Finding> {
    let mut findings = Vec::new();
    let tokens = &ctx.tokens;
    for i in 0..tokens.len() {
        if is_method_call(tokens, i, "unwrap") {
            findings.push(Finding::new(
                "UNW001",
                &ctx.path,
                tokens[i].line,
                "bare `.unwrap()`: state the invariant with `expect(\"...\")` or return a typed error".to_string(),
            ));
        }
    }
    findings
}

/// A protocol enum EXH001 checks coverage of: its name and variant list.
#[derive(Debug, Clone)]
pub struct EnumSpec {
    /// The enum's name as it appears in patterns (`Packet`, `Payload`).
    pub name: String,
    /// All variant names, from the defining file.
    pub variants: Vec<String>,
}

/// Extracts an [`EnumSpec`] from the tokens of the defining file.
pub fn enum_spec(tokens: &[Token], name: &str) -> Option<EnumSpec> {
    ast::enum_variants(tokens, name).map(|variants| EnumSpec {
        name: name.to_string(),
        variants,
    })
}

/// EXH001: in task-handler files, every `match` whose patterns name a
/// protocol enum must (a) have no catch-all arm and (b) name every variant
/// of that enum across its arms — a new protocol message can then never be
/// silently swallowed by an old handler.
pub fn exh001(ctx: &FileContext, enums: &[EnumSpec]) -> Vec<Finding> {
    // The two finding categories (catch-all arm, missing variants) can share
    // a line in compact code, so each is deduped independently.
    let mut catch_alls = Vec::new();
    let mut missing_variants = Vec::new();
    for m in ast::find_matches(&ctx.tokens) {
        for spec in enums {
            let referenced = m.referenced_variants(&spec.name);
            if referenced.is_empty() {
                continue;
            }
            for line in m.catch_all_arms() {
                push_dedup(
                    &mut catch_alls,
                    Finding::new(
                        "EXH001",
                        &ctx.path,
                        line,
                        format!(
                            "catch-all arm in a `match` on `{}`: name the ignored variants explicitly",
                            spec.name
                        ),
                    ),
                );
            }
            let missing: Vec<&str> = spec
                .variants
                .iter()
                .filter(|v| !referenced.contains(v))
                .map(String::as_str)
                .collect();
            if !missing.is_empty() {
                push_dedup(
                    &mut missing_variants,
                    Finding::new(
                        "EXH001",
                        &ctx.path,
                        m.line,
                        format!(
                            "`match` on `{}` does not name variant(s) {}: every protocol message must be handled or explicitly ignored",
                            spec.name,
                            missing.join(", ")
                        ),
                    ),
                );
            }
        }
    }
    catch_alls.extend(missing_variants);
    catch_alls
}

/// SPEC001: every shipped spec preset has a golden fixture under the spec
/// fixtures directory, and every fixture corresponds to a shipped preset.
///
/// Preset names are read statically from the `PRESET_NAMES` array (plus the
/// `PAPER_FULL` alias) in the spec module, so a new preset cannot land
/// without its golden fixture — and a deleted preset cannot leave one behind.
pub fn spec001(root: &Path, spec_file: &str, fixtures_dir: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let spec_path = root.join(spec_file);
    let src = match fs::read_to_string(&spec_path) {
        Ok(src) => src,
        Err(err) => {
            return vec![Finding::new(
                "SPEC001",
                spec_file,
                0,
                format!("cannot read spec module: {err}"),
            )]
        }
    };
    let tokens = lex(&src).tokens;
    let mut presets = string_array_const(&tokens, "PRESET_NAMES");
    if let Some(alias) = string_const(&tokens, "PAPER_FULL") {
        presets.push(alias);
    }
    if presets.is_empty() {
        return vec![Finding::new(
            "SPEC001",
            spec_file,
            0,
            "no `PRESET_NAMES` array found: the preset list must stay statically readable",
        )];
    }
    let dir = root.join(fixtures_dir);
    let mut fixtures: Vec<String> = Vec::new();
    match fs::read_dir(&dir) {
        Ok(entries) => {
            for entry in entries.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                if let Some(stem) = name.strip_suffix(".json") {
                    fixtures.push(stem.to_string());
                }
            }
        }
        Err(err) => {
            return vec![Finding::new(
                "SPEC001",
                fixtures_dir,
                0,
                format!("cannot list spec fixtures: {err}"),
            )]
        }
    }
    fixtures.sort();
    for preset in &presets {
        if !fixtures.contains(preset) {
            findings.push(Finding::new(
                "SPEC001",
                fixtures_dir,
                0,
                format!("preset `{preset}` has no golden fixture `{fixtures_dir}/{preset}.json`"),
            ));
        }
    }
    for fixture in &fixtures {
        if !presets.contains(fixture) {
            findings.push(Finding::new(
                "SPEC001",
                format!("{fixtures_dir}/{fixture}.json"),
                0,
                format!("stray fixture: `{fixture}` is not a shipped preset"),
            ));
        }
    }
    findings
}

/// BENCH001: static form of the bench-smoke drift guard. For every crate
/// with `[[bench]]` targets: each target has a source file and vice versa,
/// each bench source's `benchmark_group("...")` names appear in the crate's
/// `bench-manifest.txt`, and every manifest group comes from some target.
pub fn bench001(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    let crates_dir = root.join("crates");
    let Ok(entries) = fs::read_dir(&crates_dir) else {
        return vec![Finding::new("BENCH001", "crates", 0, "cannot list crates/")];
    };
    let mut crate_dirs: Vec<_> = entries
        .flatten()
        .filter(|e| e.path().join("Cargo.toml").is_file())
        .map(|e| e.path())
        .collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let rel = |p: &Path| {
            p.strip_prefix(root)
                .unwrap_or(p)
                .to_string_lossy()
                .replace('\\', "/")
        };
        let manifest_path = crate_dir.join("Cargo.toml");
        let Ok(cargo_toml) = fs::read_to_string(&manifest_path) else {
            continue;
        };
        let targets = bench_target_names(&cargo_toml);
        let benches_dir = crate_dir.join("benches");
        let mut bench_files: Vec<String> = Vec::new();
        if let Ok(entries) = fs::read_dir(&benches_dir) {
            for entry in entries.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                if let Some(stem) = name.strip_suffix(".rs") {
                    bench_files.push(stem.to_string());
                }
            }
        }
        bench_files.sort();
        if targets.is_empty() && bench_files.is_empty() {
            continue;
        }
        // Both directions: declared targets need files, files need declarations.
        for target in &targets {
            if !bench_files.contains(target) {
                findings.push(Finding::new(
                    "BENCH001",
                    rel(&manifest_path),
                    0,
                    format!("[[bench]] target `{target}` has no benches/{target}.rs source"),
                ));
            }
        }
        for file in &bench_files {
            if !targets.contains(file) {
                findings.push(Finding::new(
                    "BENCH001",
                    rel(&benches_dir.join(format!("{file}.rs"))),
                    0,
                    format!("benches/{file}.rs has no [[bench]] entry in Cargo.toml (it would silently never run)"),
                ));
            }
        }
        // Group names per target, against the committed manifest.
        let manifest_file = crate_dir.join("bench-manifest.txt");
        let manifest = match fs::read_to_string(&manifest_file) {
            Ok(text) => text,
            Err(_) => {
                findings.push(Finding::new(
                    "BENCH001",
                    rel(&manifest_file),
                    0,
                    "crate declares [[bench]] targets but has no bench-manifest.txt",
                ));
                continue;
            }
        };
        let manifest_groups: Vec<&str> = {
            let mut groups: Vec<&str> = manifest
                .lines()
                .filter_map(|l| l.split('/').next())
                .filter(|g| !g.is_empty())
                .collect();
            groups.sort_unstable();
            groups.dedup();
            groups
        };
        let mut declared_groups: BTreeMap<String, String> = BTreeMap::new();
        for target in &targets {
            let path = benches_dir.join(format!("{target}.rs"));
            let Ok(src) = fs::read_to_string(&path) else {
                continue;
            };
            let tokens = lex(&src).tokens;
            let mut found_any = false;
            for i in 0..tokens.len() {
                if tokens[i].is_ident("benchmark_group")
                    && tokens.get(i + 1).is_some_and(|t| t.is_punct("("))
                {
                    if let Some(group) = tokens.get(i + 2).and_then(string_literal) {
                        declared_groups.insert(group, target.clone());
                        found_any = true;
                    }
                }
            }
            if !found_any {
                findings.push(Finding::new(
                    "BENCH001",
                    rel(&path),
                    0,
                    format!("bench target `{target}` declares no benchmark_group — it would emit no benchmarks"),
                ));
            }
        }
        for (group, target) in &declared_groups {
            if !manifest_groups.contains(&group.as_str()) {
                findings.push(Finding::new(
                    "BENCH001",
                    rel(&manifest_file),
                    0,
                    format!("group `{group}` (bench target `{target}`) has no entry in bench-manifest.txt"),
                ));
            }
        }
        for group in &manifest_groups {
            if !declared_groups.contains_key(*group) {
                findings.push(Finding::new(
                    "BENCH001",
                    rel(&manifest_file),
                    0,
                    format!("manifest group `{group}` is declared by no bench target"),
                ));
            }
        }
    }
    findings
}

/// Extracts `name = "..."` values from `[[bench]]` sections of a Cargo.toml.
fn bench_target_names(cargo_toml: &str) -> Vec<String> {
    let mut names = Vec::new();
    let mut in_bench = false;
    for line in cargo_toml.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_bench = line == "[[bench]]";
            continue;
        }
        if in_bench {
            if let Some(value) = line
                .strip_prefix("name")
                .map(str::trim_start)
                .and_then(|l| l.strip_prefix('='))
            {
                let value = value.trim().trim_matches('"');
                if !value.is_empty() {
                    names.push(value.to_string());
                }
            }
        }
    }
    names
}

/// The contents of a string-literal token, quotes stripped; `None` for other
/// tokens.
fn string_literal(token: &Token) -> Option<String> {
    if token.kind != TokenKind::Literal || !token.text.starts_with('"') {
        return None;
    }
    Some(token.text.trim_matches('"').to_string())
}

/// Reads `const NAME: ... = [ "a", "b", ... ]` from a token stream.
fn string_array_const(tokens: &[Token], name: &str) -> Vec<String> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if tokens[i].is_ident(name) {
            let mut j = i + 1;
            while j < tokens.len() && !tokens[j].is_punct("[") {
                if tokens[j].is_punct(";") {
                    break;
                }
                j += 1;
            }
            if j >= tokens.len() || !tokens[j].is_punct("[") {
                continue;
            }
            // This may be the `[&str; 10]` type; the value array is the next
            // bracket group containing string literals.
            loop {
                j += 1;
                let mut strings = Vec::new();
                while j < tokens.len() && !tokens[j].is_punct("]") {
                    if let Some(s) = string_literal(&tokens[j]) {
                        strings.push(s);
                    }
                    j += 1;
                }
                if !strings.is_empty() {
                    out = strings;
                    break;
                }
                j += 1;
                while j < tokens.len() && !tokens[j].is_punct("[") {
                    if tokens[j].is_punct(";") {
                        return out;
                    }
                    j += 1;
                }
                if j >= tokens.len() {
                    return out;
                }
            }
            if !out.is_empty() {
                return out;
            }
        }
    }
    out
}

/// Reads `const NAME: &str = "..."` from a token stream.
fn string_const(tokens: &[Token], name: &str) -> Option<String> {
    for i in 0..tokens.len() {
        if tokens[i].is_ident(name) {
            for t in tokens.iter().skip(i + 1).take(8) {
                if let Some(s) = string_literal(t) {
                    return Some(s);
                }
                if t.is_punct(";") {
                    break;
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::strip_test_regions;

    fn ctx(src: &str) -> FileContext {
        FileContext {
            path: "crates/fake/src/lib.rs".to_string(),
            tokens: strip_test_regions(&lex(src).tokens),
        }
    }

    #[test]
    fn det001_flags_each_line_once() {
        let findings = det001(&ctx(
            "use std::collections::{HashMap, HashSet};\nfn f(m: &HashMap<u32, u32>) {}\n",
        ));
        assert_eq!(findings.len(), 2);
        assert_eq!(findings[0].line, 1);
        assert_eq!(findings[1].line, 2);
    }

    #[test]
    fn det002_patterns() {
        let src = "fn f() { let t = Instant::now(); let v = std::env::var(\"X\"); let id = thread::current().id(); }";
        let findings = det002(&ctx(src));
        assert_eq!(findings.len(), 1); // one line, deduped
        let src2 = "fn f() {\n let t = Instant::now();\n let v = std::env::var(\"X\");\n}";
        assert_eq!(det002(&ctx(src2)).len(), 2);
    }

    #[test]
    fn hot001_patterns() {
        let src = "fn f() {\n let a = Vec::new();\n let b = vec![1];\n let c = x.to_vec();\n let d = format!(\"x\");\n let e = y.clone();\n}";
        assert_eq!(hot001(&ctx(src)).len(), 5);
    }

    #[test]
    fn unw001_counts_sites_not_lines() {
        let src = "fn f() { a.unwrap(); b.unwrap(); }\n#[cfg(test)]\nmod tests { fn g() { c.unwrap(); } }";
        assert_eq!(unw001(&ctx(src)).len(), 2);
    }

    #[test]
    fn exh001_catches_wildcards_and_missing_variants() {
        let spec = EnumSpec {
            name: "Packet".to_string(),
            variants: vec!["Join".into(), "Probe".into(), "Leave".into()],
        };
        let bad = ctx("fn h(p: Packet) { match p { Packet::Join { .. } => go(), _ => {} } }");
        let findings = exh001(&bad, std::slice::from_ref(&spec));
        assert_eq!(findings.len(), 2); // catch-all + missing variants
        let good = ctx("fn h(p: Packet) { match p { Packet::Join { .. } => go(), Packet::Probe { .. } | Packet::Leave => {} } }");
        assert!(exh001(&good, &[spec]).is_empty());
    }

    #[test]
    fn string_consts_parse() {
        let tokens = lex("pub const PRESET_NAMES: [&str; 2] = [\"a\", \"b\"];\npub const PAPER_FULL: &str = \"c\";").tokens;
        assert_eq!(string_array_const(&tokens, "PRESET_NAMES"), vec!["a", "b"]);
        assert_eq!(string_const(&tokens, "PAPER_FULL").as_deref(), Some("c"));
    }

    #[test]
    fn bench_names_parse() {
        let toml = "[package]\nname = \"x\"\n\n[[bench]]\nname = \"alpha\"\nharness = false\n\n[[bench]]\nname = \"beta\"\nharness = false\n";
        assert_eq!(bench_target_names(toml), vec!["alpha", "beta"]);
    }
}
