//! Property-based tests of the distributed protocol itself: on randomized
//! small topologies and workloads, B-Neck always reaches quiescence, always
//! matches the centralized oracle, never over-allocates a link while
//! converging, and its control traffic is finite and bounded.

use bneck_core::prelude::*;
use bneck_maxmin::prelude::*;
use bneck_net::prelude::*;
use bneck_sim::{FaultPlan, SimTime};
use proptest::prelude::*;

/// Builds a dumbbell with per-pair access capacities and a random bottleneck,
/// then joins one session per pair with the given limits (in Mbps, 0 meaning
/// unlimited).
fn run_dumbbell(
    bottleneck_mbps: f64,
    limits_mbps: &[f64],
    stagger_us: u64,
) -> (Network, Vec<(SessionId, RateLimit)>) {
    let network = synthetic::dumbbell(
        limits_mbps.len(),
        Capacity::from_mbps(100.0),
        Capacity::from_mbps(bottleneck_mbps),
        Delay::from_micros(1),
    );
    let requests: Vec<(SessionId, RateLimit)> = limits_mbps
        .iter()
        .enumerate()
        .map(|(i, &mbps)| {
            let limit = if mbps <= 0.0 {
                RateLimit::unlimited()
            } else {
                RateLimit::finite(mbps * 1e6)
            };
            (SessionId(i as u64), limit)
        })
        .collect();
    let _ = stagger_us;
    (network, requests)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On a shared bottleneck with arbitrary rate limits and staggered
    /// arrivals, the distributed protocol reaches quiescence with exactly the
    /// oracle's allocation.
    #[test]
    fn dumbbell_allocations_match_the_oracle(
        bottleneck in 20.0f64..400.0,
        limits in prop::collection::vec(0.0f64..120.0, 1..8),
        stagger in 0u64..2_000,
    ) {
        let (network, requests) = run_dumbbell(bottleneck, &limits, stagger);
        let hosts: Vec<_> = network.hosts().map(|h| h.id()).collect();
        let mut sim = BneckSimulation::new(&network, BneckConfig::default());
        for (i, (session, limit)) in requests.iter().enumerate() {
            sim.join(
                SimTime::from_micros(stagger * i as u64),
                *session,
                hosts[2 * i],
                hosts[2 * i + 1],
                *limit,
            )
            .expect("dumbbell sessions are valid");
        }
        let report = sim.run_to_quiescence();
        prop_assert!(report.quiescent);
        prop_assert!(sim.links_stable());

        let sessions = sim.session_set();
        let oracle = CentralizedBneck::new(&network, &sessions).solve();
        prop_assert!(compare_allocations(
            &sessions,
            &sim.allocation(),
            &oracle,
            Tolerance::new(1e-6, 10.0)
        )
        .is_ok());
        prop_assert!(verify_max_min(&network, &sessions, &sim.allocation()).is_ok());
    }

    /// Whatever the workload, the protocol's transient rates never overload
    /// the bottleneck link (B-Neck's conservative behaviour), and control
    /// traffic is finite: quiescence is always reached.
    #[test]
    fn transient_rates_never_overload_links(
        bottleneck in 20.0f64..200.0,
        limits in prop::collection::vec(0.0f64..120.0, 2..6),
    ) {
        let (network, requests) = run_dumbbell(bottleneck, &limits, 0);
        let hosts: Vec<_> = network.hosts().map(|h| h.id()).collect();
        let mut sim = BneckSimulation::new(&network, BneckConfig::default());
        for (i, (session, limit)) in requests.iter().enumerate() {
            sim.join(SimTime::ZERO, *session, hosts[2 * i], hosts[2 * i + 1], *limit)
                .expect("dumbbell sessions are valid");
        }
        let tol = Tolerance::new(1e-9, 1.0);
        let mut horizon = SimTime::from_micros(200);
        for _ in 0..200 {
            let report = sim.run_until(horizon);
            let total: f64 = sim.current_rates().iter().map(|(_, r)| r).sum();
            prop_assert!(
                tol.le(total, bottleneck * 1e6),
                "transient allocation {total} exceeds the bottleneck {bottleneck} Mbps"
            );
            if report.quiescent {
                break;
            }
            horizon += Delay::from_micros(200);
        }
        prop_assert!(sim.is_quiescent(), "the protocol must reach quiescence");
    }

    /// A session that leaves right after joining leaves no residue: the
    /// remaining sessions converge to the oracle of the survivors and all
    /// per-link state about the departed session is gone.
    #[test]
    fn join_then_leave_leaves_no_residue(
        bottleneck in 20.0f64..200.0,
        survivors in 1usize..5,
        departure_us in 1u64..3_000,
    ) {
        let limits = vec![0.0; survivors + 1];
        let (network, requests) = run_dumbbell(bottleneck, &limits, 0);
        let hosts: Vec<_> = network.hosts().map(|h| h.id()).collect();
        let mut sim = BneckSimulation::new(&network, BneckConfig::default());
        for (i, (session, limit)) in requests.iter().enumerate() {
            sim.join(SimTime::ZERO, *session, hosts[2 * i], hosts[2 * i + 1], *limit)
                .expect("dumbbell sessions are valid");
        }
        // The last session leaves very early, possibly before converging.
        let victim = requests.last().unwrap().0;
        sim.leave(SimTime::from_micros(departure_us), victim).unwrap();
        let report = sim.run_to_quiescence();
        prop_assert!(report.quiescent);

        let sessions = sim.session_set();
        prop_assert_eq!(sessions.len(), survivors);
        let oracle = CentralizedBneck::new(&network, &sessions).solve();
        prop_assert!(compare_allocations(
            &sessions,
            &sim.allocation(),
            &oracle,
            Tolerance::new(1e-6, 10.0)
        )
        .is_ok());
        // No link still remembers the departed session.
        for link in network.links() {
            if let Some(task) = sim.link_task(link.id()) {
                prop_assert!(task.probe_state(victim).is_none());
                prop_assert!(task.assigned_rate(victim).is_none());
            }
        }
    }

    /// A faulty channel (random drops and duplicates, recovery off) on a
    /// 2-session dumbbell can corrupt the run — but never *silently*. Every
    /// run lands in exactly one honestly observable bucket: converged (and
    /// then two independent checkers — the oracle comparison and the max-min
    /// verifier — both agree the rates are right), wrong-rates (mismatches
    /// recorded in the report), or stuck (flagged non-quiescent at the
    /// horizon). And the same fault stream with the recovery layer enabled
    /// always converges to the exact oracle rates.
    #[test]
    fn faulty_runs_are_never_silently_wrong(
        drop in 0.0f64..0.3,
        duplicate in 0.0f64..0.3,
        fault_seed in 0u64..10_000,
    ) {
        let (network, requests) = run_dumbbell(80.0, &[0.0, 0.0], 0);
        let hosts: Vec<_> = network.hosts().map(|h| h.id()).collect();
        let plan = FaultPlan::new(fault_seed, drop, duplicate, 0.2, 4);
        let horizon = SimTime::from_millis(50);

        // Recovery off: the raw protocol over the hostile channel.
        let mut sim = BneckSimulation::new(&network, BneckConfig::default());
        sim.set_fault_plan(plan);
        for (i, (session, limit)) in requests.iter().enumerate() {
            sim.join(SimTime::ZERO, *session, hosts[2 * i], hosts[2 * i + 1], *limit)
                .expect("dumbbell sessions are valid");
        }
        let report = sim.run_until(horizon);
        let sessions = sim.session_set();
        let oracle = CentralizedBneck::new(&network, &sessions).solve();
        let mismatches = compare_allocations(
            &sessions,
            &sim.allocation(),
            &oracle,
            Tolerance::new(1e-6, 10.0),
        )
        .err()
        .map(|v| v.len())
        .unwrap_or(0);
        if report.quiescent && mismatches == 0 {
            // Claimed converged: an oracle-independent checker must agree,
            // so a wrong allocation cannot slip through as a success.
            prop_assert!(
                verify_max_min(&network, &sessions, &sim.allocation()).is_ok(),
                "a run reported converged but violates max-min fairness"
            );
        } else {
            // Corrupted runs are flagged: non-quiescent or mismatching.
            prop_assert!(!report.quiescent || mismatches > 0);
        }

        // Recovery on, same faults: always oracle-exact and quiescent.
        let mut recovered = BneckSimulation::new(
            &network,
            BneckConfig::default().with_recovery(Delay::from_micros(300)),
        );
        recovered.set_fault_plan(plan);
        for (i, (session, limit)) in requests.iter().enumerate() {
            recovered
                .join(SimTime::ZERO, *session, hosts[2 * i], hosts[2 * i + 1], *limit)
                .expect("dumbbell sessions are valid");
        }
        let recovered_report = recovered.run_until(horizon);
        prop_assert!(recovered_report.quiescent, "recovery must drain by the horizon");
        prop_assert_eq!(recovered.unacked_frames(), 0);
        let recovered_sessions = recovered.session_set();
        let recovered_oracle = CentralizedBneck::new(&network, &recovered_sessions).solve();
        prop_assert!(compare_allocations(
            &recovered_sessions,
            &recovered.allocation(),
            &recovered_oracle,
            Tolerance::new(1e-6, 10.0)
        )
        .is_ok());
    }
}
