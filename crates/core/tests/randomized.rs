//! Randomized end-to-end validation of the distributed protocol against the
//! centralized oracle, on paper-style transit–stub topologies.

use bneck_core::prelude::*;
use bneck_maxmin::prelude::*;
use bneck_net::prelude::*;
use bneck_sim::SimTime;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Builds a Small transit–stub network with `hosts` hosts.
fn small_network(hosts: usize, delay: DelayModel, seed: u64) -> Network {
    bneck_net::topology::transit_stub::paper_network(NetworkSize::Small, hosts, delay, seed)
}

/// Joins `n` sessions between distinct random hosts within the first
/// millisecond, mirroring Experiment 1 of the paper.
fn join_random_sessions(
    sim: &mut BneckSimulation<'_>,
    rng: &mut SmallRng,
    n: usize,
    with_limits: bool,
) {
    let hosts: Vec<_> = sim.network().hosts().map(|h| h.id()).collect();
    let mut sources = hosts.clone();
    sources.shuffle(rng);
    for (i, chunk) in sources.chunks(2).take(n).enumerate() {
        if chunk.len() < 2 {
            break;
        }
        let limit = if with_limits && rng.gen_bool(0.3) {
            RateLimit::finite(rng.gen_range(1e6..80e6))
        } else {
            RateLimit::unlimited()
        };
        let at = SimTime::from_nanos(rng.gen_range(0..1_000_000));
        let _ = sim.join(at, SessionId(i as u64), chunk[0], chunk[1], limit);
    }
}

fn assert_matches_oracle(sim: &BneckSimulation<'_>, context: &str) {
    let sessions = sim.session_set();
    let expected = CentralizedBneck::new(sim.network(), &sessions).solve();
    let got = sim.allocation();
    let tol = Tolerance::new(1e-6, 10.0);
    if let Err(violations) = compare_allocations(&sessions, &got, &expected, tol) {
        panic!(
            "[{context}] distributed allocation disagrees with the oracle ({} violations), e.g. {}",
            violations.len(),
            violations[0]
        );
    }
    // The distributed result must itself satisfy the max-min conditions.
    if let Err(violations) = verify_max_min(sim.network(), &sessions, &got) {
        panic!(
            "[{context}] distributed allocation is not max-min fair ({} violations), e.g. {}",
            violations.len(),
            violations[0]
        );
    }
}

#[test]
fn simultaneous_joins_on_small_lan_match_the_oracle() {
    for seed in [1u64, 2, 3] {
        let net = small_network(80, DelayModel::Lan, seed);
        let mut rng = SmallRng::seed_from_u64(seed * 101);
        let mut sim = BneckSimulation::new(&net, BneckConfig::default());
        join_random_sessions(&mut sim, &mut rng, 40, false);
        let report = sim.run_to_quiescence();
        assert!(report.quiescent);
        assert!(sim.links_stable(), "seed {seed}: links not stable");
        assert_matches_oracle(&sim, &format!("lan seed {seed}"));
    }
}

#[test]
fn simultaneous_joins_on_small_wan_match_the_oracle() {
    for seed in [4u64, 5] {
        let net = small_network(60, DelayModel::Wan, seed);
        let mut rng = SmallRng::seed_from_u64(seed * 77);
        let mut sim = BneckSimulation::new(&net, BneckConfig::default());
        join_random_sessions(&mut sim, &mut rng, 30, true);
        let report = sim.run_to_quiescence();
        assert!(report.quiescent);
        assert_matches_oracle(&sim, &format!("wan seed {seed}"));
    }
}

#[test]
fn joins_with_rate_limits_match_the_oracle() {
    let net = small_network(100, DelayModel::Lan, 11);
    let mut rng = SmallRng::seed_from_u64(2024);
    let mut sim = BneckSimulation::new(&net, BneckConfig::default());
    join_random_sessions(&mut sim, &mut rng, 50, true);
    sim.run_to_quiescence();
    assert_matches_oracle(&sim, "limits");
}

#[test]
fn departures_and_rate_changes_reconverge_to_the_oracle() {
    let net = small_network(80, DelayModel::Lan, 21);
    let mut rng = SmallRng::seed_from_u64(4242);
    let mut sim = BneckSimulation::new(&net, BneckConfig::default());
    join_random_sessions(&mut sim, &mut rng, 40, true);
    sim.run_to_quiescence();
    assert_matches_oracle(&sim, "phase 1: joins");

    // Phase 2: a quarter of the sessions leave.
    let active: Vec<_> = sim.active_sessions().collect();
    let base = sim.now() + Delay::from_millis(1);
    for s in active.iter().take(active.len() / 4) {
        let at = base + Delay::from_nanos(rng.gen_range(0..1_000_000));
        sim.leave(at, *s).unwrap();
    }
    let report = sim.run_to_quiescence();
    assert!(report.quiescent);
    assert_matches_oracle(&sim, "phase 2: leaves");

    // Phase 3: a quarter of the remaining sessions change their maximum rate.
    let active: Vec<_> = sim.active_sessions().collect();
    let base = sim.now() + Delay::from_millis(1);
    for s in active.iter().take(active.len() / 4) {
        let at = base + Delay::from_nanos(rng.gen_range(0..1_000_000));
        let limit = if rng.gen_bool(0.5) {
            RateLimit::finite(rng.gen_range(1e6..50e6))
        } else {
            RateLimit::unlimited()
        };
        sim.change(at, *s, limit).unwrap();
    }
    let report = sim.run_to_quiescence();
    assert!(report.quiescent);
    assert_matches_oracle(&sim, "phase 3: changes");

    // Phase 4: new sessions arrive on top of the survivors. Source hosts must
    // be free (the paper's model allows at most one session per source host).
    let hosts: Vec<_> = sim.network().hosts().map(|h| h.id()).collect();
    let base = sim.now() + Delay::from_millis(1);
    let mut next_id = 1_000u64;
    let mut joined = 0;
    while joined < 10 {
        let a = hosts[rng.gen_range(0..hosts.len())];
        let b = hosts[rng.gen_range(0..hosts.len())];
        if a == b || sim.is_source_host_busy(a) {
            continue;
        }
        let at = base + Delay::from_nanos(rng.gen_range(0..1_000_000));
        if sim
            .join(at, SessionId(next_id), a, b, RateLimit::unlimited())
            .is_ok()
        {
            joined += 1;
        }
        next_id += 1;
    }
    let report = sim.run_to_quiescence();
    assert!(report.quiescent);
    assert_matches_oracle(&sim, "phase 4: late joins");
}

#[test]
fn joining_from_a_busy_source_host_is_rejected() {
    let net = small_network(10, DelayModel::Lan, 77);
    let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
    let mut sim = BneckSimulation::new(&net, BneckConfig::default());
    sim.join(
        SimTime::ZERO,
        SessionId(0),
        hosts[0],
        hosts[1],
        RateLimit::unlimited(),
    )
    .unwrap();
    assert!(sim.is_source_host_busy(hosts[0]));
    let err = sim
        .join(
            SimTime::ZERO,
            SessionId(1),
            hosts[0],
            hosts[2],
            RateLimit::unlimited(),
        )
        .unwrap_err();
    assert!(matches!(err, bneck_core::JoinError::SourceHostBusy { .. }));
    // Once the first session leaves, the host is free again.
    sim.run_to_quiescence();
    let t = sim.now() + Delay::from_millis(1);
    sim.leave(t, SessionId(0)).unwrap();
    sim.run_to_quiescence();
    assert!(!sim.is_source_host_busy(hosts[0]));
    sim.join(
        sim.now() + Delay::from_millis(1),
        SessionId(1),
        hosts[0],
        hosts[2],
        RateLimit::unlimited(),
    )
    .unwrap();
    sim.run_to_quiescence();
    assert_matches_oracle(&sim, "rejoined source host");
}

#[test]
fn transient_rates_never_exceed_the_max_min_rates() {
    // The paper highlights that, until convergence, B-Neck assigns transient
    // rates that are smaller than the max-min fair rates (conservative
    // behaviour). Check it by sampling during convergence.
    let net = small_network(60, DelayModel::Wan, 31);
    let mut rng = SmallRng::seed_from_u64(99);
    let mut sim = BneckSimulation::new(&net, BneckConfig::default());
    join_random_sessions(&mut sim, &mut rng, 30, false);
    let sessions = sim.session_set();
    let fair = CentralizedBneck::new(sim.network(), &sessions).solve();
    let tol = Tolerance::new(1e-6, 10.0);
    let mut horizon = SimTime::from_millis(1);
    loop {
        let report = sim.run_until(horizon);
        for s in sim.active_sessions().collect::<Vec<_>>() {
            let transient = sim.current_rate(s).unwrap_or(0.0);
            let fair_rate = fair.rate(s).unwrap_or(f64::INFINITY);
            assert!(
                tol.le(transient, fair_rate),
                "session {s}: transient rate {transient} exceeds max-min rate {fair_rate}"
            );
        }
        if report.quiescent {
            break;
        }
        horizon += Delay::from_millis(1);
    }
    assert_matches_oracle(&sim, "conservative transients");
}
