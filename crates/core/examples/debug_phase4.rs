//! Internal debugging tool: replays the randomized dynamics scenario and dumps
//! the protocol state of any session whose final rate disagrees with the
//! centralized oracle. Not part of the public examples.

use bneck_core::prelude::*;
use bneck_maxmin::prelude::*;
use bneck_net::prelude::*;
use bneck_sim::SimTime;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

fn join_random_sessions(
    sim: &mut BneckSimulation<'_>,
    rng: &mut SmallRng,
    n: usize,
    with_limits: bool,
) {
    let hosts: Vec<_> = sim.network().hosts().map(|h| h.id()).collect();
    let mut sources = hosts.clone();
    sources.shuffle(rng);
    for (i, chunk) in sources.chunks(2).take(n).enumerate() {
        if chunk.len() < 2 {
            break;
        }
        let limit = if with_limits && rng.gen_bool(0.3) {
            RateLimit::finite(rng.gen_range(1e6..80e6))
        } else {
            RateLimit::unlimited()
        };
        let at = SimTime::from_nanos(rng.gen_range(0..1_000_000));
        let _ = sim.join(at, SessionId(i as u64), chunk[0], chunk[1], limit);
    }
}

fn check(sim: &BneckSimulation<'_>, phase: &str) {
    let sessions = sim.session_set();
    let solution = CentralizedBneck::new(sim.network(), &sessions).solve_with_bottlenecks();
    let expected = solution.allocation.clone();
    let got = sim.allocation();
    let tol = Tolerance::new(1e-6, 10.0);
    match compare_allocations(&sessions, &got, &expected, tol) {
        Ok(()) => println!("[{phase}] OK ({} sessions)", sessions.len()),
        Err(violations) => {
            println!("[{phase}] {} violations", violations.len());
            for v in violations.iter().take(3) {
                println!("  {v}");
                if let Violation::RateMismatch { session, .. }
                | Violation::MissingRate { session } = v
                {
                    dump_session(sim, *session, &expected);
                    // Which link does the oracle consider the session's bottleneck?
                    if let Some(path) = sim.session_path(*session) {
                        for &link in path.links() {
                            if let Some(lb) = solution.link(link) {
                                if lb.is_bottleneck() && lb.restricted.contains(session) {
                                    println!(
                                        "    oracle bottleneck {link}: B*={:.1} R*={:?} F*={:?}",
                                        lb.bottleneck_rate.unwrap() / 1e6,
                                        lb.restricted,
                                        lb.unrestricted
                                    );
                                    for r in &lb.unrestricted {
                                        println!(
                                            "       F* member {r}: oracle={:?} distributed={:?}",
                                            expected.rate(*r).map(|x| x / 1e6),
                                            got.rate(*r).map(|x| x / 1e6)
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

fn dump_session(sim: &BneckSimulation<'_>, session: SessionId, expected: &Allocation) {
    let Some(path) = sim.session_path(session) else {
        return;
    };
    let src = sim.source_task(session).unwrap();
    println!(
        "  session {session}: demand={} current={} settled={} mu={:?} expected={:?}",
        src.demand(),
        src.current_rate(),
        src.is_settled(),
        src.probe_state(),
        expected.rate(session)
    );
    for &link in path.links() {
        if let Some(task) = sim.link_task(link) {
            let cap = sim.network().link(link).capacity().as_mbps();
            println!(
                "    link {link} cap={cap} Be={:.1} Re={:?} Fe={:?} mu(s)={:?} lambda(s)={:?} stable={}",
                task.bottleneck_rate() / 1e6,
                task.restricted().collect::<Vec<_>>(),
                task.unrestricted().collect::<Vec<_>>(),
                task.probe_state(session),
                task.assigned_rate(session).map(|r| r / 1e6),
                task.is_stable(),
            );
        }
    }
}

fn main() {
    let net = bneck_net::topology::transit_stub::paper_network(
        NetworkSize::Small,
        80,
        DelayModel::Lan,
        21,
    );
    let mut rng = SmallRng::seed_from_u64(4242);
    let mut sim = BneckSimulation::new(&net, BneckConfig::default());
    join_random_sessions(&mut sim, &mut rng, 40, true);
    sim.run_to_quiescence();
    check(&sim, "phase 1: joins");

    let active: Vec<_> = sim.active_sessions().collect();
    let base = sim.now() + Delay::from_millis(1);
    for s in active.iter().take(active.len() / 4) {
        let at = base + Delay::from_nanos(rng.gen_range(0..1_000_000));
        sim.leave(at, *s).unwrap();
    }
    sim.run_to_quiescence();
    check(&sim, "phase 2: leaves");

    let active: Vec<_> = sim.active_sessions().collect();
    let base = sim.now() + Delay::from_millis(1);
    for s in active.iter().take(active.len() / 4) {
        let at = base + Delay::from_nanos(rng.gen_range(0..1_000_000));
        let limit = if rng.gen_bool(0.5) {
            RateLimit::finite(rng.gen_range(1e6..50e6))
        } else {
            RateLimit::unlimited()
        };
        sim.change(at, *s, limit).unwrap();
    }
    sim.run_to_quiescence();
    check(&sim, "phase 3: changes");

    let hosts: Vec<_> = sim.network().hosts().map(|h| h.id()).collect();
    let base = sim.now() + Delay::from_millis(1);
    let mut next_id = 1_000u64;
    for _ in 0..10 {
        let a = hosts[rng.gen_range(0..hosts.len())];
        let b = hosts[rng.gen_range(0..hosts.len())];
        if a == b {
            continue;
        }
        let at = base + Delay::from_nanos(rng.gen_range(0..1_000_000));
        let _ = sim.join(at, SessionId(next_id), a, b, RateLimit::unlimited());
        next_id += 1;
    }
    sim.run_to_quiescence();
    check(&sim, "phase 4: late joins");
    println!(
        "links_stable={} quiescent={}",
        sim.links_stable(),
        sim.is_quiescent()
    );
}
