//! Shared world plumbing for protocol harnesses.
//!
//! Every protocol-under-test in this workspace — B-Neck itself
//! (`BneckSimulation` in this crate) and the probing baselines
//! (`BaselineSimulation` in `bneck-baselines`) — runs over the same two
//! pieces of world state, which used to be duplicated in each harness:
//!
//! * [`LinkTable`] — the per-directed-link vectors: the simulator channel of
//!   each link, its capacity, its reverse link, and the channel upstream
//!   traffic travels over, all indexed by [`LinkId::index`].
//! * [`SessionArena`] — the dense session-slot arena: a per-simulation slot
//!   is assigned to each session identifier at join (and reused when the
//!   identifier rejoins after a leave), the id → slot map, the per-slot path
//!   and requested limit, the active-session set, and a cached
//!   [`Arc<SessionSet>`] snapshot for feeding the centralized oracle.
//!
//! Envelope addressing is shared too: protocol messages carry their
//! session's *slot* plus the *hop index* of the link they sit on, so
//! forwarding a packet one hop resolves no id → slot map and scans no path.
//! A stale envelope — one emitted by a previous incarnation of a session
//! identifier that left and rejoined along a different path while packets
//! were still in flight — is detected and re-resolved (or dropped) by
//! [`SessionArena::resolve_hop`].

use bneck_maxmin::{Allocation, FastMap, Rate, RateLimit, Session, SessionId, SessionSet};
use bneck_net::{LinkId, Network, Path};
use bneck_sim::{ChannelId, ChannelSpec, Engine};
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Per-directed-link world state, indexed by [`LinkId::index`]: the simulator
/// channel of each link, its capacity, and the precomputed reverse-link
/// table upstream traffic is routed over (so no harness consults the
/// network's endpoint hash map on a per-packet basis).
#[derive(Debug)]
pub struct LinkTable {
    /// Channel of each directed link.
    channels: Vec<ChannelId>,
    /// Reverse link of each directed link (`None` for one-way links).
    reverse: Vec<Option<LinkId>>,
    /// Channel of the reverse of each directed link; falls back to the
    /// forward channel when a link has no reverse.
    reverse_channels: Vec<ChannelId>,
    /// Capacity of each directed link, in bits per second.
    capacities: Vec<Rate>,
}

impl LinkTable {
    /// Registers every directed link of `network` as a simulator channel
    /// (with the link's bandwidth and propagation delay and the given control
    /// packet size) and builds the link-indexed tables.
    pub fn new<M>(network: &Network, engine: &mut Engine<M>, packet_bits: u64) -> Self {
        let mut channels = Vec::with_capacity(network.link_count());
        let mut capacities = Vec::with_capacity(network.link_count());
        for link in network.links() {
            let spec = ChannelSpec::new(link.capacity().as_bps(), link.delay(), packet_bits);
            channels.push(engine.add_channel(spec));
            capacities.push(link.capacity().as_bps());
        }
        let reverse: Vec<Option<LinkId>> = network
            .links()
            .map(|link| network.reverse_link(link.id()))
            .collect();
        let reverse_channels = reverse
            .iter()
            .enumerate()
            .map(|(i, r)| r.map(|r| channels[r.index()]).unwrap_or(channels[i]))
            .collect();
        LinkTable {
            channels,
            reverse,
            reverse_channels,
            capacities,
        }
    }

    /// Number of directed links.
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// `true` when the network had no links at all.
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// The simulator channel of a directed link.
    pub fn channel(&self, link: LinkId) -> ChannelId {
        self.channels[link.index()]
    }

    /// The reverse of a directed link, if the link is two-way.
    pub fn reverse(&self, link: LinkId) -> Option<LinkId> {
        self.reverse[link.index()]
    }

    /// The channel upstream traffic over `link` travels on: the reverse
    /// link's channel, or the forward channel if the link has no reverse.
    pub fn reverse_channel(&self, link: LinkId) -> ChannelId {
        self.reverse_channels[link.index()]
    }

    /// The capacity of a directed link, in bits per second.
    pub fn capacity(&self, link: LinkId) -> Rate {
        self.capacities[link.index()]
    }
}

/// The slot a [`SessionArena::join`] assigned, and whether it was reused from
/// a previous incarnation of the same identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotJoin {
    /// The dense per-simulation slot of the session.
    pub slot: u32,
    /// `true` when the identifier rejoined after a leave and kept its slot
    /// (the harness must overwrite its per-slot protocol state), `false` when
    /// a fresh slot was appended (the harness must push new entries).
    pub reused: bool,
}

/// The dense session-slot arena shared by every protocol harness.
///
/// Slots are assigned at join and persist across a leave — in-flight packets
/// (including the departure notification itself) may still reference the
/// slot — and are reused when the same identifier rejoins. The arena owns the
/// session bookkeeping every harness needs (id ↔ slot, path, requested
/// limit, active set) while harnesses keep their protocol-specific per-slot
/// state in parallel vectors of the same length.
#[derive(Debug, Default)]
pub struct SessionArena {
    /// Session id → slot. Entries persist across a leave so stray packets
    /// can still be routed.
    slot_of: FastMap<SessionId, u32>,
    /// Session identifier of each slot (the current or last incarnation).
    ids: Vec<SessionId>,
    /// Path of each slot's session. Persists after a leave, overwritten on
    /// rejoin.
    paths: Vec<Path>,
    /// Requested maximum rate of each slot's session.
    limits: Vec<RateLimit>,
    /// The currently active session identifiers.
    active: BTreeSet<SessionId>,
    /// Lazily built snapshot of the active sessions, invalidated by
    /// join/leave/change (see [`SessionArena::session_set`]).
    cache: RefCell<Option<Arc<SessionSet>>>,
}

impl SessionArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of slots ever assigned (active plus departed sessions).
    pub fn slot_count(&self) -> usize {
        self.ids.len()
    }

    /// The slot of a session identifier, if it ever joined. Persists across
    /// a leave.
    pub fn slot_of(&self, session: SessionId) -> Option<u32> {
        self.slot_of.get(&session).copied()
    }

    /// The session identifier occupying a slot.
    pub fn id_at(&self, slot: u32) -> SessionId {
        self.ids[slot as usize]
    }

    /// `true` when the session is currently active.
    pub fn is_active(&self, session: SessionId) -> bool {
        self.active.contains(&session)
    }

    /// Number of currently active sessions.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// The identifiers of the currently active sessions, in increasing order.
    pub fn active_sessions(&self) -> impl Iterator<Item = SessionId> + '_ {
        self.active.iter().copied()
    }

    /// The active sessions with their slots, in increasing identifier order.
    pub fn active_slots(&self) -> impl Iterator<Item = (SessionId, u32)> + '_ {
        self.active
            .iter()
            .filter_map(move |s| Some((*s, *self.slot_of.get(s)?)))
    }

    /// Activates `session` along `path`, assigning a slot (reusing the
    /// identifier's previous slot after a leave). Returns `None` if the
    /// identifier is already in use by an active session.
    pub fn join(&mut self, session: SessionId, path: Path, limit: RateLimit) -> Option<SlotJoin> {
        if self.active.contains(&session) {
            return None;
        }
        let joined = match self.slot_of.get(&session) {
            Some(&slot) => {
                let i = slot as usize;
                self.paths[i] = path;
                self.limits[i] = limit;
                SlotJoin { slot, reused: true }
            }
            None => {
                let slot = self.ids.len() as u32;
                self.ids.push(session);
                self.paths.push(path);
                self.limits.push(limit);
                self.slot_of.insert(session, slot);
                SlotJoin {
                    slot,
                    reused: false,
                }
            }
        };
        self.active.insert(session);
        *self.cache.borrow_mut() = None;
        Some(joined)
    }

    /// Deactivates `session`, returning its slot, or `None` if the session is
    /// not active. The slot (and its path) persists for stray packets.
    pub fn leave(&mut self, session: SessionId) -> Option<u32> {
        if !self.active.remove(&session) {
            return None;
        }
        *self.cache.borrow_mut() = None;
        self.slot_of(session)
    }

    /// Updates the requested maximum rate of an active session, returning its
    /// slot, or `None` if the session is not active.
    pub fn change(&mut self, session: SessionId, limit: RateLimit) -> Option<u32> {
        if !self.active.contains(&session) {
            return None;
        }
        let slot = self.slot_of(session)?;
        self.limits[slot as usize] = limit;
        *self.cache.borrow_mut() = None;
        Some(slot)
    }

    /// The path of a slot's session (current or last incarnation).
    pub fn path(&self, slot: u32) -> &Path {
        &self.paths[slot as usize]
    }

    /// The path of a session, if the identifier ever joined.
    pub fn path_of(&self, session: SessionId) -> Option<&Path> {
        Some(self.path(self.slot_of(session)?))
    }

    /// The requested maximum rate of a slot's session.
    pub fn limit(&self, slot: u32) -> RateLimit {
        self.limits[slot as usize]
    }

    /// The link at hop `hop` of a slot's path, or `None` when a stale hop
    /// index runs past the (current) path.
    pub fn link_at(&self, slot: u32, hop: u32) -> Option<LinkId> {
        self.paths[slot as usize].links().get(hop as usize).copied()
    }

    /// Number of links on a slot's path.
    pub fn hop_count(&self, slot: u32) -> usize {
        self.paths[slot as usize].links().len()
    }

    /// Resolves the `(slot, hop)` a packet of `session` sits at on `link`,
    /// given the slot and hop its envelope carried.
    ///
    /// The carried hop is only valid for the path the envelope was routed
    /// along: when the envelope's session matches and the carried hop still
    /// names `link` on the slot's path, the carried coordinates are trusted
    /// as-is. A stray packet from a previous incarnation of the session
    /// (leave + rejoin with the same identifier) is re-resolved against the
    /// current path of the packet's session, and dropped (`None`) when that
    /// session never joined or `link` is no longer on its path.
    pub fn resolve_hop(
        &self,
        session: SessionId,
        origin_session: SessionId,
        slot: u32,
        hop: u32,
        link: LinkId,
    ) -> Option<(u32, u32)> {
        if session == origin_session && self.link_at(slot, hop) == Some(link) {
            return Some((slot, hop));
        }
        let slot = self.slot_of(session)?;
        let hop = self.paths[slot as usize]
            .links()
            .iter()
            .position(|l| *l == link)?;
        Some((slot, hop as u32))
    }

    /// The active sessions as a [`SessionSet`] (paths plus requested limits),
    /// suitable for feeding the centralized oracle.
    ///
    /// The snapshot is built lazily and cached until the next
    /// join/leave/change, so repeated calls between membership changes (e.g.
    /// per-tick oracle cross-checks) are O(1) — callers get a shared handle
    /// to the same set.
    pub fn session_set(&self) -> Arc<SessionSet> {
        let mut cache = self.cache.borrow_mut();
        if let Some(set) = cache.as_ref() {
            return Arc::clone(set);
        }
        let set: SessionSet = self
            .active_slots()
            .map(|(id, slot)| {
                Session::new(
                    id,
                    self.paths[slot as usize].clone(),
                    self.limits[slot as usize],
                )
            })
            .collect();
        let set = Arc::new(set);
        *cache = Some(Arc::clone(&set));
        set
    }

    /// Collects the rates of the active sessions into an [`Allocation`],
    /// reading each session's rate from its slot; slots for which `rate_of`
    /// returns `None` (e.g. never-notified sessions) are skipped.
    pub fn collect_rates<F>(&self, mut rate_of: F) -> Allocation
    where
        F: FnMut(u32) -> Option<Rate>,
    {
        self.active_slots()
            .filter_map(|(id, slot)| Some((id, rate_of(slot)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bneck_net::prelude::*;

    fn net() -> Network {
        synthetic::dumbbell(
            2,
            Capacity::from_mbps(100.0),
            Capacity::from_mbps(60.0),
            Delay::from_micros(1),
        )
    }

    fn path_between(network: &Network, a: usize, b: usize) -> Path {
        let hosts: Vec<_> = network.hosts().map(|h| h.id()).collect();
        Router::new(network)
            .shortest_path(hosts[a], hosts[b])
            .unwrap()
    }

    #[test]
    fn link_table_mirrors_the_network() {
        let network = net();
        let mut engine: Engine<u32> = Engine::new();
        let links = LinkTable::new(&network, &mut engine, 256);
        assert_eq!(links.len(), network.link_count());
        assert!(!links.is_empty());
        assert_eq!(engine.channel_count(), network.link_count());
        for link in network.links() {
            let id = link.id();
            assert_eq!(links.capacity(id), link.capacity().as_bps());
            assert_eq!(links.reverse(id), network.reverse_link(id));
            match network.reverse_link(id) {
                Some(r) => assert_eq!(links.reverse_channel(id), links.channel(r)),
                None => assert_eq!(links.reverse_channel(id), links.channel(id)),
            }
        }
    }

    #[test]
    fn slots_are_assigned_and_reused_across_rejoins() {
        let network = net();
        let mut arena = SessionArena::new();
        let p0 = path_between(&network, 0, 1);
        let p1 = path_between(&network, 2, 3);

        let a = arena
            .join(SessionId(7), p0.clone(), RateLimit::unlimited())
            .unwrap();
        assert_eq!((a.slot, a.reused), (0, false));
        // Double join of an active identifier is rejected.
        assert!(arena
            .join(SessionId(7), p1.clone(), RateLimit::unlimited())
            .is_none());
        let b = arena
            .join(SessionId(9), p1.clone(), RateLimit::finite(5e6))
            .unwrap();
        assert_eq!((b.slot, b.reused), (1, false));
        assert_eq!(arena.active_count(), 2);
        assert_eq!(arena.id_at(0), SessionId(7));
        assert_eq!(arena.limit(1), RateLimit::finite(5e6));

        // Leave keeps the slot and path for stray packets.
        assert_eq!(arena.leave(SessionId(7)), Some(0));
        assert_eq!(arena.leave(SessionId(7)), None);
        assert!(!arena.is_active(SessionId(7)));
        assert_eq!(arena.slot_of(SessionId(7)), Some(0));
        assert_eq!(arena.path(0).source(), p0.source());

        // Rejoin reuses the slot and overwrites the path.
        let c = arena
            .join(SessionId(7), p1.clone(), RateLimit::unlimited())
            .unwrap();
        assert_eq!((c.slot, c.reused), (0, true));
        assert_eq!(arena.path(0).source(), p1.source());
        assert_eq!(arena.slot_count(), 2);
    }

    #[test]
    fn change_updates_limits_of_active_sessions_only() {
        let network = net();
        let mut arena = SessionArena::new();
        let p = path_between(&network, 0, 1);
        arena.join(SessionId(1), p, RateLimit::unlimited()).unwrap();
        assert_eq!(arena.change(SessionId(1), RateLimit::finite(2e6)), Some(0));
        assert_eq!(arena.limit(0), RateLimit::finite(2e6));
        assert_eq!(arena.change(SessionId(2), RateLimit::finite(2e6)), None);
        arena.leave(SessionId(1));
        assert_eq!(arena.change(SessionId(1), RateLimit::unlimited()), None);
    }

    #[test]
    fn session_set_snapshot_is_cached_and_invalidated() {
        let network = net();
        let mut arena = SessionArena::new();
        arena
            .join(
                SessionId(0),
                path_between(&network, 0, 1),
                RateLimit::unlimited(),
            )
            .unwrap();
        arena
            .join(
                SessionId(1),
                path_between(&network, 2, 3),
                RateLimit::unlimited(),
            )
            .unwrap();
        let a = arena.session_set();
        let b = arena.session_set();
        assert!(Arc::ptr_eq(&a, &b), "repeated snapshots share one set");
        assert_eq!(a.len(), 2);
        arena.leave(SessionId(0));
        let c = arena.session_set();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.len(), 1);
        arena.change(SessionId(1), RateLimit::finite(1e6));
        let d = arena.session_set();
        assert!(!Arc::ptr_eq(&c, &d));
    }

    #[test]
    fn resolve_hop_trusts_fresh_envelopes_and_reresolves_stale_ones() {
        let network = net();
        let mut arena = SessionArena::new();
        let p0 = path_between(&network, 0, 1);
        let p1 = path_between(&network, 2, 3);
        arena
            .join(SessionId(0), p0.clone(), RateLimit::unlimited())
            .unwrap();

        let links = p0.links();
        // Fresh envelope: carried coordinates are used as-is.
        assert_eq!(
            arena.resolve_hop(SessionId(0), SessionId(0), 0, 1, links[1]),
            Some((0, 1))
        );
        // Stale hop (wrong link for the carried hop): re-resolved by scan.
        assert_eq!(
            arena.resolve_hop(SessionId(0), SessionId(0), 0, 0, links[1]),
            Some((0, 1))
        );
        // Unknown session: dropped.
        assert_eq!(
            arena.resolve_hop(SessionId(5), SessionId(0), 0, 0, links[0]),
            None
        );
        // After a rejoin along a different path, links unique to the previous
        // incarnation's path are dropped (in the dumbbell, hop 0 is the old
        // source's access link, which the new path does not cross).
        arena.leave(SessionId(0));
        arena
            .join(SessionId(0), p1.clone(), RateLimit::unlimited())
            .unwrap();
        assert_eq!(
            arena.resolve_hop(SessionId(0), SessionId(0), 0, 0, links[0]),
            None,
            "links of the previous incarnation's path are no longer resolvable"
        );
        assert_eq!(
            arena.resolve_hop(SessionId(0), SessionId(0), 0, 1, p1.links()[1]),
            Some((0, 1))
        );
    }

    #[test]
    fn collect_rates_skips_unreported_slots() {
        let network = net();
        let mut arena = SessionArena::new();
        arena
            .join(
                SessionId(0),
                path_between(&network, 0, 1),
                RateLimit::unlimited(),
            )
            .unwrap();
        arena
            .join(
                SessionId(1),
                path_between(&network, 2, 3),
                RateLimit::unlimited(),
            )
            .unwrap();
        let rates = arena.collect_rates(|slot| (slot == 1).then_some(42.0));
        assert_eq!(rates.rate(SessionId(0)), None);
        assert_eq!(rates.rate(SessionId(1)), Some(42.0));
    }
}
