//! Topology-aware world partitioning for the conservative parallel engine.
//!
//! The sharded engine ([`bneck_sim::ShardedEngine`]) needs two things from
//! the protocol layer: a map from every deliverable message to the shard
//! owning its receiving task, and a lookahead bound — the minimum delay any
//! message needs to cross from one shard to another. [`WorldPartition`]
//! derives both from the network topology:
//!
//! - **Routers** are split into contiguous blocks by identifier rank, so
//!   shard boundaries follow the generators' locality (transit–stub
//!   topologies allocate stub domains contiguously).
//! - **Hosts** inherit the shard of the router they attach to, which makes
//!   every host access link shard-internal: only router–router links ever
//!   cross shards.
//! - **Tasks** follow their node: the `RouterLink` task of link `e` runs on
//!   the shard of `src(e)` (every sender into `e`'s channel lives there, so
//!   channel FIFO state has a single owner), and a session's source and
//!   destination tasks run on the shards of their hosts.
//!
//! The lookahead between two shards is the minimum packet flight time
//! (transmission plus propagation) over the links crossing them — exactly
//! the paper topology's real propagation delays, which is what makes a
//! conservative scheme profitable here.

use crate::harness::{Envelope, Target};
use bneck_net::{Network, NodeId, Path};
use bneck_sim::{Address, ChannelSpec, Partition};

/// A router-rank partition of a network plus the per-session-slot task
/// placement, implementing [`Partition`] for the B-Neck harness envelopes.
///
/// Built once per run; [`WorldPartition::note_join`] must be called for every
/// session registration (in the same order on which slots are assigned) so
/// API injections and stray in-flight packets route to the right shard.
#[derive(Debug, Clone)]
pub struct WorldPartition {
    shards: usize,
    /// Shard of every node (router or host), indexed by `NodeId`.
    node_shard: Vec<u32>,
    /// Shard of every link's `RouterLink` task (= shard of the link's source
    /// node), indexed by `LinkId`.
    link_shard: Vec<u32>,
    /// Shard of each session slot's source task (the slot's source host).
    source_shard: Vec<u32>,
    /// Shard of each session slot's destination task.
    dest_shard: Vec<u32>,
    /// Minimum cross-shard flight time in nanoseconds, row-major
    /// `[from * shards + to]`; `None` when no link crosses that pair.
    lookahead: Vec<Option<u64>>,
}

impl WorldPartition {
    /// Partitions `network` into `shards` router blocks.
    ///
    /// `packet_bits` must match the simulation's
    /// [`crate::config::BneckConfig::packet_bits`], since per-link
    /// transmission time is part of the lookahead.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or the network has no routers.
    pub fn new(network: &Network, packet_bits: u64, shards: usize) -> Self {
        assert!(shards >= 1, "at least one shard");
        let routers = network.router_count();
        assert!(routers > 0, "cannot partition a network without routers");
        let mut node_shard = vec![0u32; network.node_count()];
        let mut rank = 0usize;
        for node in network.nodes() {
            if node.kind().is_router() {
                // Contiguous rank blocks: router `rank` of `routers` goes to
                // shard `rank * shards / routers` (never >= shards).
                node_shard[node.id().index()] = (rank * shards / routers) as u32;
                rank += 1;
            } else {
                // Hosts attach to exactly one router, added before the host,
                // so its shard is already assigned in this identifier-order
                // pass.
                let access = network.out_links(node.id())[0];
                let router = network.link(access).dst();
                node_shard[node.id().index()] = node_shard[router.index()];
            }
        }
        let link_shard: Vec<u32> = network
            .links()
            .map(|l| node_shard[l.src().index()])
            .collect();
        let mut lookahead = vec![None; shards * shards];
        for link in network.links() {
            let from = node_shard[link.src().index()] as usize;
            let to = node_shard[link.dst().index()] as usize;
            if from == to {
                continue;
            }
            let spec = ChannelSpec::new(link.capacity().as_bps(), link.delay(), packet_bits);
            let flight = spec.transmission_delay().as_nanos() + link.delay().as_nanos();
            let cell = &mut lookahead[from * shards + to];
            *cell = Some(cell.map_or(flight, |prev: u64| prev.min(flight)));
        }
        WorldPartition {
            shards,
            node_shard,
            link_shard,
            source_shard: Vec::new(),
            dest_shard: Vec::new(),
            lookahead,
        }
    }

    /// Records the task placement of a freshly registered session slot.
    ///
    /// Must be called with the slot returned by the world's registration, in
    /// registration order (slots are assigned densely and reused).
    ///
    /// # Panics
    ///
    /// Panics if a reused slot's source or destination host moves to a
    /// different shard: packets of the previous incarnation may still be in
    /// flight, and they must keep routing to the shard that owns the slot's
    /// tasks.
    pub fn note_join(&mut self, slot: u32, path: &Path) {
        let src = self.node_shard[path.source().index()];
        let dst = self.node_shard[path.destination().index()];
        let i = slot as usize;
        if i < self.source_shard.len() {
            assert!(
                self.source_shard[i] == src && self.dest_shard[i] == dst,
                "sharded runs require a rejoining slot to keep its source and \
                 destination hosts on the same shards"
            );
        } else {
            debug_assert_eq!(i, self.source_shard.len(), "slots are assigned densely");
            self.source_shard.push(src);
            self.dest_shard.push(dst);
        }
    }

    /// The shard owning a node's tasks.
    pub fn node_shard(&self, node: NodeId) -> usize {
        self.node_shard[node.index()] as usize
    }

    /// The shard owning session slot `slot`'s source task.
    pub fn source_shard(&self, slot: u32) -> usize {
        self.source_shard[slot as usize] as usize
    }

    /// The shard owning session slot `slot`'s destination task.
    pub fn dest_shard(&self, slot: u32) -> usize {
        self.dest_shard[slot as usize] as usize
    }

    /// The shard owning link `link`'s `RouterLink` task (the shard of the
    /// link's source node).
    pub fn link_shard(&self, link: bneck_net::LinkId) -> usize {
        self.link_shard[link.index()] as usize
    }

    /// Number of shards of this partition.
    pub fn shard_count(&self) -> usize {
        self.shards
    }
}

impl Partition<Envelope> for WorldPartition {
    fn shards(&self) -> usize {
        self.shards
    }

    fn shard_of(&self, _to: Address, msg: &Envelope) -> usize {
        match msg.target {
            Target::Source(slot) => self.source_shard[slot as usize] as usize,
            Target::Destination(slot) => self.dest_shard[slot as usize] as usize,
            Target::Link { link, .. } => self.link_shard[link.index()] as usize,
        }
    }

    fn lookahead_ns(&self, from: usize, to: usize) -> Option<u64> {
        self.lookahead[from * self.shards + to]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bneck_net::synthetic;
    use bneck_net::{Capacity, Delay};

    fn parking_lot() -> Network {
        synthetic::parking_lot(
            4,
            Capacity::from_mbps(100.0),
            Capacity::from_mbps(100.0),
            Delay::from_micros(10),
        )
    }

    #[test]
    fn hosts_follow_their_router() {
        let net = parking_lot();
        let part = WorldPartition::new(&net, 256, 2);
        for host in net.hosts() {
            let access = net.out_links(host.id())[0];
            let router = net.link(access).dst();
            assert_eq!(part.node_shard(host.id()), part.node_shard(router));
        }
    }

    #[test]
    fn router_blocks_are_contiguous_and_cover_all_shards() {
        let net = parking_lot();
        for shards in [1usize, 2, 3] {
            let part = WorldPartition::new(&net, 256, shards);
            let blocks: Vec<usize> = net.routers().map(|r| part.node_shard(r.id())).collect();
            assert!(blocks.windows(2).all(|w| w[0] <= w[1]), "monotone blocks");
            assert_eq!(blocks.last().copied(), Some(shards - 1));
        }
    }

    #[test]
    fn only_router_links_cross_and_lookahead_is_positive() {
        let net = parking_lot();
        let part = WorldPartition::new(&net, 256, 3);
        for link in net.links() {
            let from = part.node_shard(link.src());
            let to = part.node_shard(link.dst());
            if from != to {
                assert!(net.node(link.src()).kind().is_router());
                assert!(net.node(link.dst()).kind().is_router());
                let look = part.lookahead_ns(from, to).expect("crossing pair");
                assert!(look >= link.delay().as_nanos());
            }
        }
    }

    #[test]
    #[should_panic(expected = "same shards")]
    fn rejoin_must_keep_its_shards() {
        let net = parking_lot();
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut part = WorldPartition::new(&net, 256, 3);
        let forward = net.shortest_path(hosts[0], hosts[1]).unwrap();
        let other = net.shortest_path(*hosts.last().unwrap(), hosts[0]).unwrap();
        part.note_join(0, &forward);
        assert_eq!(part.source_shard(0), part.node_shard(hosts[0]));
        part.note_join(0, &other);
    }
}
