//! The `SourceNode(s, e)` task (Figure 3 of the paper).
//!
//! The source node of a session owns the first link `e` of the session's path
//! (the dedicated host-to-router link), keeps the session's maximum desired
//! rate `D_s = min(r_s, C_e)`, starts Probe cycles, and delivers `API.Rate`
//! notifications when the session's max-min fair rate is known.

use crate::packet::{Packet, ResponseKind};
use crate::task::{Action, ActionBuffer, ProbeState};
use bneck_maxmin::{Rate, RateLimit, SessionId, Tolerance};
use bneck_net::LinkId;

/// Whether the session is currently accounted in `R_e` or `F_e` of its own
/// first link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Membership {
    /// The session is in `R_e` (restricted at its first link / demand).
    Restricted,
    /// The session is in `F_e` (restricted further down the path).
    Unrestricted,
    /// The session has left (both sets empty).
    Gone,
}

/// The per-session source task of the B-Neck protocol.
#[derive(Debug, Clone)]
pub struct SourceNode {
    session: SessionId,
    first_link: LinkId,
    first_capacity: Rate,
    tol: Tolerance,
    demand: Rate,
    membership: Membership,
    mu: ProbeState,
    lambda: Option<Rate>,
    update_received: bool,
    bottleneck_received: bool,
}

impl SourceNode {
    /// Creates the source task for `session`, whose path starts with
    /// `first_link` of capacity `first_capacity` (bits per second).
    pub fn new(
        session: SessionId,
        first_link: LinkId,
        first_capacity: Rate,
        tol: Tolerance,
    ) -> Self {
        SourceNode {
            session,
            first_link,
            first_capacity,
            tol,
            demand: 0.0,
            membership: Membership::Gone,
            mu: ProbeState::Idle,
            lambda: None,
            update_received: false,
            bottleneck_received: false,
        }
    }

    /// The session this task belongs to.
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// The session's effective demand `D_s = min(r_s, C_e)`.
    pub fn demand(&self) -> Rate {
        self.demand
    }

    /// The rate currently assigned to the session at its source (`λ_e^s`), or
    /// 0 if no Probe cycle has completed yet.
    ///
    /// Before convergence this is B-Neck's *transient* rate; the paper points
    /// out that these transient rates never exceed the final max-min fair
    /// rates.
    pub fn current_rate(&self) -> Rate {
        self.lambda.unwrap_or(0.0)
    }

    /// `true` once the session has been told (via `API.Rate`) that its current
    /// rate is its max-min fair rate, and no later event invalidated it.
    pub fn is_settled(&self) -> bool {
        self.bottleneck_received
    }

    /// The source's probe state for its own link.
    pub fn probe_state(&self) -> ProbeState {
        self.mu
    }

    /// `API.Join(s, r)` (Figure 3, lines 3–6).
    pub fn api_join(&mut self, limit: RateLimit, actions: &mut ActionBuffer) {
        self.membership = Membership::Restricted;
        self.demand = limit.effective_demand(self.first_capacity);
        self.mu = ProbeState::WaitingResponse;
        self.update_received = false;
        self.bottleneck_received = false;
        actions.push(Action::SendDownstream(Packet::Join {
            session: self.session,
            rate: self.demand,
            restricting: self.first_link,
        }));
    }

    /// `API.Leave(s)` (Figure 3, lines 8–9).
    pub fn api_leave(&mut self, actions: &mut ActionBuffer) {
        self.membership = Membership::Gone;
        self.mu = ProbeState::Idle;
        self.lambda = None;
        self.bottleneck_received = false;
        actions.push(Action::SendDownstream(Packet::Leave {
            session: self.session,
        }));
    }

    /// `API.Change(s, r)` (Figure 3, lines 11–18).
    pub fn api_change(&mut self, limit: RateLimit, actions: &mut ActionBuffer) {
        self.demand = limit.effective_demand(self.first_capacity);
        if self.mu.is_idle() {
            if self.membership == Membership::Unrestricted {
                self.membership = Membership::Restricted;
            }
            self.update_received = false;
            self.bottleneck_received = false;
            self.mu = ProbeState::WaitingResponse;
            actions.push(Action::SendDownstream(Packet::Probe {
                session: self.session,
                rate: self.demand,
                restricting: self.first_link,
            }));
        } else {
            self.update_received = true;
        }
    }

    /// Handles a packet received from the network (an upstream `Update`,
    /// `Bottleneck` or `Response` for this session), emitting the produced
    /// actions into `actions`.
    ///
    /// Packets for other sessions, or downstream packet kinds, are ignored.
    pub fn handle(&mut self, packet: Packet, actions: &mut ActionBuffer) {
        if packet.session() != self.session || self.membership == Membership::Gone {
            return;
        }
        match packet {
            Packet::Update { .. } => self.on_update(actions),
            Packet::Bottleneck { .. } => self.on_bottleneck(actions),
            Packet::Response { kind, rate, .. } => self.on_response(kind, rate, actions),
            // Downstream-travelling kinds a source emits but never receives.
            Packet::Join { .. }
            | Packet::Probe { .. }
            | Packet::SetBottleneck { .. }
            | Packet::Leave { .. } => {}
        }
    }

    /// Figure 3, lines 20–25.
    fn on_update(&mut self, actions: &mut ActionBuffer) {
        if self.mu.is_idle() {
            if self.membership == Membership::Unrestricted {
                self.membership = Membership::Restricted;
            }
            self.bottleneck_received = false;
            self.mu = ProbeState::WaitingResponse;
            actions.push(Action::SendDownstream(Packet::Probe {
                session: self.session,
                rate: self.demand,
                restricting: self.first_link,
            }));
        } else {
            self.update_received = true;
        }
    }

    /// Figure 3, lines 27–31.
    fn on_bottleneck(&mut self, actions: &mut ActionBuffer) {
        if self.mu.is_idle() && !self.bottleneck_received {
            self.bottleneck_received = true;
            let rate = self.lambda.unwrap_or(0.0);
            actions.push(Action::NotifyRate {
                session: self.session,
                rate,
            });
            if self.tol.gt(self.demand, rate) {
                self.membership = Membership::Unrestricted;
            }
            actions.push(Action::SendDownstream(Packet::SetBottleneck {
                session: self.session,
                found: self.tol.eq(self.demand, rate),
            }));
        }
    }

    /// Figure 3, lines 33–47.
    fn on_response(&mut self, kind: ResponseKind, rate: Rate, actions: &mut ActionBuffer) {
        if kind == ResponseKind::Update || self.update_received {
            self.update_received = false;
            self.bottleneck_received = false;
            self.mu = ProbeState::WaitingResponse;
            actions.push(Action::SendDownstream(Packet::Probe {
                session: self.session,
                rate: self.demand,
                restricting: self.first_link,
            }));
            return;
        }
        if kind == ResponseKind::Bottleneck {
            self.lambda = Some(rate);
            self.mu = ProbeState::Idle;
            self.bottleneck_received = true;
            actions.push(Action::NotifyRate {
                session: self.session,
                rate,
            });
            if self.tol.gt(self.demand, rate) {
                self.membership = Membership::Unrestricted;
            }
            actions.push(Action::SendDownstream(Packet::SetBottleneck {
                session: self.session,
                found: self.tol.eq(self.demand, rate),
            }));
            return;
        }
        // Plain Response.
        self.lambda = Some(rate);
        self.mu = ProbeState::Idle;
        if self.tol.eq(self.demand, rate) {
            self.bottleneck_received = true;
            actions.push(Action::NotifyRate {
                session: self.session,
                rate,
            });
            actions.push(Action::SendDownstream(Packet::SetBottleneck {
                session: self.session,
                found: true,
            }));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAP: Rate = 100e6;

    fn source() -> SourceNode {
        SourceNode::new(SessionId(1), LinkId(0), CAP, Tolerance::default())
    }

    fn handle(s: &mut SourceNode, packet: Packet) -> Vec<Action> {
        let mut buf = ActionBuffer::new();
        s.handle(packet, &mut buf);
        buf.into_vec()
    }

    fn api_join(s: &mut SourceNode, limit: RateLimit) -> Vec<Action> {
        let mut buf = ActionBuffer::new();
        s.api_join(limit, &mut buf);
        buf.into_vec()
    }

    fn api_change(s: &mut SourceNode, limit: RateLimit) -> Vec<Action> {
        let mut buf = ActionBuffer::new();
        s.api_change(limit, &mut buf);
        buf.into_vec()
    }

    fn api_leave(s: &mut SourceNode) -> Vec<Action> {
        let mut buf = ActionBuffer::new();
        s.api_leave(&mut buf);
        buf.into_vec()
    }

    fn response(kind: ResponseKind, rate: Rate) -> Packet {
        Packet::Response {
            session: SessionId(1),
            kind,
            rate,
            restricting: LinkId(5),
        }
    }

    #[test]
    fn join_caps_demand_at_the_first_link() {
        let mut s = source();
        let actions = api_join(&mut s, RateLimit::unlimited());
        assert_eq!(s.demand(), CAP);
        assert_eq!(
            actions,
            vec![Action::SendDownstream(Packet::Join {
                session: SessionId(1),
                rate: CAP,
                restricting: LinkId(0)
            })]
        );
        let mut s = source();
        api_join(&mut s, RateLimit::finite(10e6));
        assert_eq!(s.demand(), 10e6);
    }

    #[test]
    fn response_below_demand_waits_for_bottleneck() {
        let mut s = source();
        api_join(&mut s, RateLimit::unlimited());
        let actions = handle(&mut s, response(ResponseKind::Response, 40e6));
        assert!(
            actions.is_empty(),
            "no API.Rate before the bottleneck is confirmed"
        );
        assert_eq!(s.current_rate(), 40e6);
        assert!(!s.is_settled());
        // The Bottleneck packet confirms the rate.
        let actions = handle(
            &mut s,
            Packet::Bottleneck {
                session: SessionId(1),
            },
        );
        assert!(matches!(
            actions[0],
            Action::NotifyRate { rate, .. } if (rate - 40e6).abs() < 1e-3
        ));
        assert!(matches!(
            actions[1],
            Action::SendDownstream(Packet::SetBottleneck { found: false, .. })
        ));
        assert!(s.is_settled());
    }

    #[test]
    fn response_meeting_full_demand_settles_immediately() {
        let mut s = source();
        api_join(&mut s, RateLimit::finite(10e6));
        let actions = handle(&mut s, response(ResponseKind::Response, 10e6));
        assert_eq!(actions.len(), 2);
        assert!(
            matches!(actions[0], Action::NotifyRate { rate, .. } if (rate - 10e6).abs() < 1e-3)
        );
        assert!(matches!(
            actions[1],
            Action::SendDownstream(Packet::SetBottleneck { found: true, .. })
        ));
        assert!(s.is_settled());
    }

    #[test]
    fn bottleneck_response_notifies_and_confirms() {
        let mut s = source();
        api_join(&mut s, RateLimit::unlimited());
        let actions = handle(&mut s, response(ResponseKind::Bottleneck, 25e6));
        assert!(
            matches!(actions[0], Action::NotifyRate { rate, .. } if (rate - 25e6).abs() < 1e-3)
        );
        assert!(matches!(
            actions[1],
            Action::SendDownstream(Packet::SetBottleneck { found: false, .. })
        ));
        assert!(s.is_settled());
        // A duplicate Bottleneck packet afterwards is ignored.
        assert!(handle(
            &mut s,
            Packet::Bottleneck {
                session: SessionId(1)
            }
        )
        .is_empty());
    }

    #[test]
    fn update_response_triggers_a_new_probe_cycle() {
        let mut s = source();
        api_join(&mut s, RateLimit::unlimited());
        let actions = handle(&mut s, response(ResponseKind::Update, 40e6));
        assert_eq!(
            actions,
            vec![Action::SendDownstream(Packet::Probe {
                session: SessionId(1),
                rate: CAP,
                restricting: LinkId(0)
            })]
        );
        assert!(!s.is_settled());
    }

    #[test]
    fn update_during_probe_cycle_is_deferred() {
        let mut s = source();
        api_join(&mut s, RateLimit::unlimited());
        // An Update arrives while the Join's response is still pending: the
        // source remembers it and re-probes after the response arrives.
        assert!(handle(
            &mut s,
            Packet::Update {
                session: SessionId(1)
            }
        )
        .is_empty());
        let actions = handle(&mut s, response(ResponseKind::Response, 40e6));
        assert!(matches!(
            actions[0],
            Action::SendDownstream(Packet::Probe { .. })
        ));
    }

    #[test]
    fn update_when_idle_probes_immediately() {
        let mut s = source();
        api_join(&mut s, RateLimit::unlimited());
        handle(&mut s, response(ResponseKind::Bottleneck, 25e6));
        let actions = handle(
            &mut s,
            Packet::Update {
                session: SessionId(1),
            },
        );
        assert!(matches!(
            actions[0],
            Action::SendDownstream(Packet::Probe { .. })
        ));
        assert!(!s.is_settled());
    }

    #[test]
    fn change_when_idle_probes_with_the_new_demand() {
        let mut s = source();
        api_join(&mut s, RateLimit::unlimited());
        handle(&mut s, response(ResponseKind::Bottleneck, 25e6));
        let actions = api_change(&mut s, RateLimit::finite(5e6));
        assert_eq!(s.demand(), 5e6);
        assert!(matches!(
            actions[0],
            Action::SendDownstream(Packet::Probe { rate, .. }) if (rate - 5e6).abs() < 1e-3
        ));
    }

    #[test]
    fn change_during_probe_cycle_is_deferred() {
        let mut s = source();
        api_join(&mut s, RateLimit::unlimited());
        assert!(api_change(&mut s, RateLimit::finite(5e6)).is_empty());
        // The deferred change forces a new probe after the pending response.
        let actions = handle(&mut s, response(ResponseKind::Response, 40e6));
        assert!(matches!(
            actions[0],
            Action::SendDownstream(Packet::Probe { rate, .. }) if (rate - 5e6).abs() < 1e-3
        ));
    }

    #[test]
    fn leave_emits_leave_and_silences_the_task() {
        let mut s = source();
        api_join(&mut s, RateLimit::unlimited());
        let actions = api_leave(&mut s);
        assert_eq!(
            actions,
            vec![Action::SendDownstream(Packet::Leave {
                session: SessionId(1)
            })]
        );
        assert!(handle(&mut s, response(ResponseKind::Response, 40e6)).is_empty());
        assert_eq!(s.current_rate(), 0.0);
    }

    #[test]
    fn packets_for_other_sessions_are_ignored() {
        let mut s = source();
        api_join(&mut s, RateLimit::unlimited());
        assert!(handle(
            &mut s,
            Packet::Update {
                session: SessionId(99)
            }
        )
        .is_empty());
    }
}
