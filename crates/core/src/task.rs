//! Common vocabulary shared by the three protocol tasks.
//!
//! Every task handler is a pure function from an input (an API primitive or a
//! received packet) to a list of [`Action`]s, emitted into a caller-provided
//! [`ActionBuffer`]. The simulation harness owns one buffer, hands it to the
//! handler of every delivered packet and turns the emitted actions into
//! packets transmitted over the network's links — so steady-state packet
//! processing performs no per-packet allocation at all.

use crate::packet::Packet;
use bneck_maxmin::{Rate, SessionId};
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Per-session probe state at a link (`μ_e^s` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum ProbeState {
    /// No probe activity pending for this session at this link.
    #[default]
    Idle,
    /// The link asked the session (through an `Update`) to start a new Probe
    /// cycle and is waiting for the corresponding `Probe` to come through.
    WaitingProbe,
    /// A `Join`/`Probe` went downstream through this link and the link is
    /// waiting for the matching `Response`.
    WaitingResponse,
}

impl ProbeState {
    /// `true` when the state is [`ProbeState::Idle`].
    pub fn is_idle(self) -> bool {
        matches!(self, ProbeState::Idle)
    }
}

/// An effect produced by a task handler.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum Action {
    /// Send a packet downstream (towards the session's destination).
    SendDownstream(Packet),
    /// Send a packet upstream (towards the session's source).
    SendUpstream(Packet),
    /// Invoke `API.Rate(session, rate)`: notify the application of its rate.
    NotifyRate {
        /// The session being notified.
        session: SessionId,
        /// The rate assigned to the session.
        rate: Rate,
    },
}

impl Action {
    /// The packet carried by this action, if it is a send.
    pub fn packet(&self) -> Option<&Packet> {
        match self {
            Action::SendDownstream(p) | Action::SendUpstream(p) => Some(p),
            Action::NotifyRate { .. } => None,
        }
    }
}

/// A reusable buffer the task handlers emit their [`Action`]s into.
///
/// The harness keeps one buffer alive for the whole simulation and passes it
/// to every handler invocation, eliminating the per-packet `Vec<Action>`
/// allocations the handlers used to perform. Handlers only append; the caller
/// decides when to [`drain`](ActionBuffer::drain) or
/// [`clear`](ActionBuffer::clear) the buffer.
#[derive(Debug, Clone, Default)]
pub struct ActionBuffer {
    actions: Vec<Action>,
}

impl ActionBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an action.
    pub fn push(&mut self, action: Action) {
        self.actions.push(action);
    }

    /// Number of buffered actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// `true` when no action is buffered.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// The buffered actions, in emission order.
    pub fn as_slice(&self) -> &[Action] {
        &self.actions
    }

    /// Removes all buffered actions, keeping the allocation.
    pub fn clear(&mut self) {
        self.actions.clear();
    }

    /// Drains the buffered actions in emission order, keeping the allocation.
    pub fn drain(&mut self) -> impl Iterator<Item = Action> + '_ {
        self.actions.drain(..)
    }

    /// Consumes the buffer into a plain vector (mainly for tests).
    pub fn into_vec(self) -> Vec<Action> {
        self.actions
    }
}

/// A recorded `API.Rate` notification (used by the harness to keep the rate
/// history of every session).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct RateNotification {
    /// The notified session.
    pub session: SessionId,
    /// The rate communicated to the session.
    pub rate: Rate,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bneck_net::LinkId;

    #[test]
    fn probe_state_default_is_idle() {
        assert_eq!(ProbeState::default(), ProbeState::Idle);
        assert!(ProbeState::Idle.is_idle());
        assert!(!ProbeState::WaitingProbe.is_idle());
        assert!(!ProbeState::WaitingResponse.is_idle());
    }

    #[test]
    fn action_packet_accessor() {
        let packet = Packet::Update {
            session: SessionId(3),
        };
        assert_eq!(Action::SendUpstream(packet).packet(), Some(&packet));
        assert_eq!(Action::SendDownstream(packet).packet(), Some(&packet));
        assert_eq!(
            Action::NotifyRate {
                session: SessionId(3),
                rate: 1.0
            }
            .packet(),
            None
        );
        let _ = LinkId(0); // silence unused import warnings in some cfgs
    }
}
