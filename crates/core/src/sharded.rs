//! The sharded B-Neck simulation: the serial harness fanned out over the
//! conservative parallel engine.
//!
//! [`ShardedBneckSimulation`] runs the exact same protocol tasks as
//! [`BneckSimulation`](crate::harness::BneckSimulation), split across the
//! shards of a [`WorldPartition`]: each shard owns a block of routers plus
//! their attached hosts and runs the tasks living there on its own engine
//! thread, while [`bneck_sim::ShardedEngine`] merges cross-shard deliveries
//! back into the canonical `(time, key)` order. Reports — allocations,
//! quiescence times, event and packet counts — are bit-identical to the
//! serial harness at any shard count.
//!
//! # How replication works
//!
//! Every shard holds a full `BneckWorld` (channel table, task vectors, the
//! session arena). Session registrations are applied to *all* worlds in the
//! same order — slot assignment is deterministic, so the replicas agree on
//! slots, paths and limits. Protocol messages, however, are only ever
//! delivered on the shard owning the receiving task, so task state evolves
//! on exactly one replica: reading a result (a notified rate, a packet
//! counter) means asking the owning shard, which is what the accessors here
//! do.
//!
//! # Restrictions
//!
//! - The recovery layer keeps central retransmission state and is rejected
//!   (`config.recovery` must be `None`).
//! - Observers (subscribers, packet logs, rate histories) would require a
//!   cross-shard merge of notification order and are rejected too.
//! - A session identifier that rejoins must keep its source and destination
//!   hosts on the same shards (see [`WorldPartition::note_join`]).

use crate::config::BneckConfig;
use crate::harness::{
    ApiCall, BneckWorld, Envelope, JoinError, Payload, QuiescenceReport, SessionHandle, Target,
    UnknownSession,
};
use crate::partition::WorldPartition;
use crate::stats::PacketStats;
use bneck_maxmin::{Allocation, RateLimit, SessionId, SessionSet};
use bneck_net::{Network, NodeId, Path, Router};
use bneck_sim::{Address, FaultPlan, ShardedEngine, SimTime};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A B-Neck simulation running on the conservative parallel engine.
///
/// Mirrors the [`crate::harness::BneckSimulation`] API (join/leave/change,
/// run to quiescence, allocation queries) and produces bit-identical results
/// at any shard count, including under an active [`FaultPlan`].
pub struct ShardedBneckSimulation<'a> {
    engine: ShardedEngine<Envelope>,
    worlds: Vec<BneckWorld>,
    partition: WorldPartition,
    network: &'a Network,
    router: Router<'a>,
    source_hosts: BTreeMap<NodeId, SessionId>,
}

impl fmt::Debug for ShardedBneckSimulation<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedBneckSimulation")
            .field("shards", &self.engine.shards())
            .field("now", &self.engine.now())
            .field("pending_events", &self.engine.pending_events())
            .finish()
    }
}

impl<'a> ShardedBneckSimulation<'a> {
    /// Creates a sharded simulation over `network` with `shards` shards.
    ///
    /// Every directed link is registered as a channel on every shard (in
    /// link order, so the channel tables — and therefore event keys — are
    /// identical across shards); only the owning shard ever transmits on a
    /// channel.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero, the network has no routers, or the
    /// configuration enables the recovery layer or a recorder (neither is
    /// supported in sharded mode).
    pub fn new(network: &'a Network, config: BneckConfig, shards: usize) -> Self {
        assert!(
            config.recovery.is_none(),
            "the recovery layer keeps central retransmission state and is not \
             supported by the sharded engine"
        );
        assert!(
            !config.record_packet_log && !config.record_rate_history,
            "recorders are not supported by the sharded engine"
        );
        let mut engine = ShardedEngine::new(shards);
        let worlds = (0..shards)
            .map(|k| BneckWorld::new(network, engine.shard_mut(k), config))
            .collect();
        ShardedBneckSimulation {
            engine,
            worlds,
            partition: WorldPartition::new(network, config.packet_bits, shards),
            network,
            router: Router::new(network),
            source_hosts: BTreeMap::new(),
        }
    }

    /// The number of shards.
    pub fn shards(&self) -> usize {
        self.engine.shards()
    }

    /// The network the simulation runs over.
    pub fn network(&self) -> &'a Network {
        self.network
    }

    /// `API.Join(s, r)` at time `at` along a shortest path (see
    /// [`crate::harness::BneckSimulation::join`]).
    ///
    /// # Errors
    ///
    /// Returns [`JoinError::NoPath`] if the hosts are not connected, plus the
    /// errors of [`ShardedBneckSimulation::join_with_path`].
    pub fn join(
        &mut self,
        at: SimTime,
        session: SessionId,
        source: NodeId,
        destination: NodeId,
        limit: RateLimit,
    ) -> Result<SessionHandle, JoinError> {
        let path = self
            .router
            .shortest_path(source, destination)
            .ok_or(JoinError::NoPath {
                source,
                destination,
            })?;
        self.join_with_path(at, session, path, limit)
    }

    /// `API.Join(s, r)` at time `at` along an explicit path. The session is
    /// registered on every shard; the API event is injected on the shard
    /// owning the source host.
    ///
    /// # Errors
    ///
    /// Returns [`JoinError::DuplicateSession`] if the identifier is already
    /// active or [`JoinError::SourceHostBusy`] if another active session
    /// starts at the path's source host.
    pub fn join_with_path(
        &mut self,
        at: SimTime,
        session: SessionId,
        path: Path,
        limit: RateLimit,
    ) -> Result<SessionHandle, JoinError> {
        if self.worlds[0].arena().is_active(session) {
            return Err(JoinError::DuplicateSession(session));
        }
        if let Some(existing) = self.source_hosts.get(&path.source()) {
            return Err(JoinError::SourceHostBusy {
                host: path.source(),
                existing: *existing,
            });
        }
        self.source_hosts.insert(path.source(), session);
        let mut slot = 0;
        for (k, world) in self.worlds.iter_mut().enumerate() {
            let assigned = world.register_session(session, path.clone(), limit);
            debug_assert!(
                k == 0 || assigned == slot,
                "replicated worlds must assign the same slot"
            );
            slot = assigned;
        }
        self.partition.note_join(slot, &path);
        self.engine.inject(
            self.partition.source_shard(slot),
            at,
            Address(0),
            Envelope {
                target: Target::Source(slot),
                payload: Payload::Api(ApiCall::Join { limit }),
            },
        );
        Ok(SessionHandle::new(session, slot))
    }

    /// `API.Leave(s)` at time `at`.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownSession`] if the session is not active.
    pub fn leave(&mut self, at: SimTime, session: SessionId) -> Result<(), UnknownSession> {
        let mut slot = None;
        for world in &mut self.worlds {
            slot = world.deregister_session(session);
        }
        let Some(slot) = slot else {
            return Err(UnknownSession(session));
        };
        self.source_hosts.retain(|_, s| *s != session);
        self.engine.inject(
            self.partition.source_shard(slot),
            at,
            Address(0),
            Envelope {
                target: Target::Source(slot),
                payload: Payload::Api(ApiCall::Leave),
            },
        );
        Ok(())
    }

    /// `API.Change(s, r)` at time `at`.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownSession`] if the session is not active.
    pub fn change(
        &mut self,
        at: SimTime,
        session: SessionId,
        limit: RateLimit,
    ) -> Result<(), UnknownSession> {
        let mut slot = None;
        for world in &mut self.worlds {
            slot = world.change_session(session, limit);
        }
        let Some(slot) = slot else {
            return Err(UnknownSession(session));
        };
        self.engine.inject(
            self.partition.source_shard(slot),
            at,
            Address(0),
            Envelope {
                target: Target::Source(slot),
                payload: Payload::Api(ApiCall::Change { limit }),
            },
        );
        Ok(())
    }

    /// Runs until every shard's queue is empty (quiescence).
    pub fn run_to_quiescence(&mut self) -> QuiescenceReport {
        self.run_until(SimTime::MAX)
    }

    /// Runs until `horizon` (inclusive) or quiescence, whichever comes first.
    pub fn run_until(&mut self, horizon: SimTime) -> QuiescenceReport {
        let report = self.engine.run(&mut self.worlds, &self.partition, horizon);
        report.into()
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// `true` when no protocol packet is pending or in flight on any shard.
    pub fn is_quiescent(&self) -> bool {
        self.engine.is_quiescent()
    }

    /// The identifiers of the currently active sessions.
    pub fn active_sessions(&self) -> impl Iterator<Item = SessionId> + '_ {
        self.worlds[0].arena().active_sessions()
    }

    /// The rates last notified through `API.Rate`, for active sessions.
    ///
    /// A slot's notified rate lives on the shard owning its source task, so
    /// the merge reads each slot from its owning world.
    pub fn allocation(&self) -> Allocation {
        self.worlds[0].arena().collect_rates(|slot| {
            let owner = self.partition.source_shard(slot);
            let rate = self.worlds[owner].notified_rate(slot);
            (!rate.is_nan()).then_some(rate)
        })
    }

    /// The active sessions as a [`SessionSet`], for the centralized oracle.
    pub fn session_set(&self) -> Arc<SessionSet> {
        self.worlds[0].arena().session_set()
    }

    /// Cumulative packet counts by kind, summed over all shards (each packet
    /// transmission is recorded by exactly one world).
    pub fn packet_stats(&self) -> PacketStats {
        let mut total = PacketStats::new();
        for world in &self.worlds {
            total += *world.stats();
        }
        total
    }

    /// Events processed per shard since construction (the load-balance
    /// diagnostic recorded in scale reports).
    pub fn shard_events(&self) -> Vec<u64> {
        self.engine.shard_events()
    }

    /// Installs the same fault plan on every shard. Fault decisions are
    /// keyed per channel and channels are owned by exactly one shard, so
    /// injected faults are identical at any shard count.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.engine.set_fault_plan(plan);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::BneckSimulation;
    use bneck_net::synthetic;
    use bneck_net::{Capacity, Delay};

    fn parking_lot() -> Network {
        synthetic::parking_lot(
            7,
            Capacity::from_mbps(100.0),
            Capacity::from_mbps(80.0),
            Delay::from_micros(25),
        )
    }

    /// Joins every adjacent host pair (plus one long session over the whole
    /// backbone), changes one limit mid-flight and removes one session.
    fn drive<J, L, C, R>(mut join: J, mut leave: L, mut change: C, run: R) -> QuiescenceReport
    where
        J: FnMut(SimTime, SessionId, NodeId, NodeId, RateLimit) -> bool,
        L: FnMut(SimTime, SessionId) -> bool,
        C: FnMut(SimTime, SessionId, RateLimit) -> bool,
        R: FnOnce() -> QuiescenceReport,
    {
        let net = parking_lot();
        let hosts: Vec<NodeId> = net.hosts().map(|h| h.id()).collect();
        let n = hosts.len();
        assert!(join(
            SimTime::ZERO,
            SessionId(0),
            hosts[0],
            hosts[n - 1],
            RateLimit::unlimited()
        ));
        for i in 1..n - 1 {
            let at = SimTime::from_micros(40 * i as u64);
            assert!(join(
                at,
                SessionId(i as u64),
                hosts[i],
                hosts[i + 1],
                RateLimit::unlimited()
            ));
        }
        assert!(change(
            SimTime::from_micros(700),
            SessionId(1),
            RateLimit::finite(9e6)
        ));
        assert!(leave(SimTime::from_micros(900), SessionId(2)));
        run()
    }

    fn serial_outcome(
        fault: Option<FaultPlan>,
    ) -> (QuiescenceReport, Allocation, PacketStats, u64) {
        let net = parking_lot();
        let mut sim = BneckSimulation::new(&net, BneckConfig::default());
        if let Some(plan) = fault {
            sim.set_fault_plan(plan);
        }
        let sim = std::cell::RefCell::new(sim);
        let report = drive(
            |at, s, src, dst, r| sim.borrow_mut().join(at, s, src, dst, r).is_ok(),
            |at, s| sim.borrow_mut().leave(at, s).is_ok(),
            |at, s, r| sim.borrow_mut().change(at, s, r).is_ok(),
            || sim.borrow_mut().run_to_quiescence(),
        );
        let sim = sim.into_inner();
        let stats = *sim.packet_stats();
        (report, sim.allocation(), stats, sim.now().as_nanos())
    }

    fn sharded_outcome(
        shards: usize,
        fault: Option<FaultPlan>,
    ) -> (QuiescenceReport, Allocation, PacketStats, u64) {
        let net = parking_lot();
        let mut sim = ShardedBneckSimulation::new(&net, BneckConfig::default(), shards);
        if let Some(plan) = fault {
            sim.set_fault_plan(plan);
        }
        let sim = std::cell::RefCell::new(sim);
        let report = drive(
            |at, s, src, dst, r| sim.borrow_mut().join(at, s, src, dst, r).is_ok(),
            |at, s| sim.borrow_mut().leave(at, s).is_ok(),
            |at, s, r| sim.borrow_mut().change(at, s, r).is_ok(),
            || sim.borrow_mut().run_to_quiescence(),
        );
        let sim = sim.into_inner();
        let stats = sim.packet_stats();
        (report, sim.allocation(), stats, sim.now().as_nanos())
    }

    #[test]
    fn sharded_matches_serial_at_every_shard_count() {
        let serial = serial_outcome(None);
        for shards in [1usize, 2, 3, 4, 8] {
            let sharded = sharded_outcome(shards, None);
            assert_eq!(serial.0, sharded.0, "report at {shards} shards");
            assert_eq!(serial.1, sharded.1, "allocation at {shards} shards");
            assert_eq!(serial.2, sharded.2, "packet stats at {shards} shards");
            assert_eq!(serial.3, sharded.3, "clock at {shards} shards");
        }
    }

    #[test]
    fn sharded_matches_serial_under_faults() {
        let plan = FaultPlan::new(1234, 0.05, 0.03, 0.1, 2);
        let serial = serial_outcome(Some(plan));
        assert!(serial.0.quiescent);
        for shards in [2usize, 4] {
            let sharded = sharded_outcome(shards, Some(plan));
            assert_eq!(serial.0, sharded.0, "report at {shards} shards");
            assert_eq!(serial.1, sharded.1, "allocation at {shards} shards");
            assert_eq!(serial.2, sharded.2, "packet stats at {shards} shards");
        }
    }

    #[test]
    fn more_shards_than_routers_still_matches() {
        let net = synthetic::dumbbell(
            3,
            Capacity::from_mbps(100.0),
            Capacity::from_mbps(60.0),
            Delay::from_micros(10),
        );
        let hosts: Vec<NodeId> = net.hosts().map(|h| h.id()).collect();
        let mut serial = BneckSimulation::new(&net, BneckConfig::default());
        // Four shards over two routers leaves two shards empty; they idle
        // without stalling the horizon exchange.
        let mut sharded = ShardedBneckSimulation::new(&net, BneckConfig::default(), 4);
        for i in 0..3 {
            let (src, dst) = (hosts[2 * i], hosts[2 * i + 1]);
            let s = SessionId(i as u64);
            serial
                .join(SimTime::ZERO, s, src, dst, RateLimit::unlimited())
                .unwrap();
            sharded
                .join(SimTime::ZERO, s, src, dst, RateLimit::unlimited())
                .unwrap();
        }
        let a = serial.run_to_quiescence();
        let b = sharded.run_to_quiescence();
        assert_eq!(a, b);
        assert_eq!(serial.allocation(), sharded.allocation());
        assert_eq!(
            sharded.shard_events().iter().sum::<u64>(),
            b.events_processed
        );
    }

    #[test]
    fn sharded_rejects_unsupported_configs() {
        let net = parking_lot();
        let recovery = BneckConfig::default().with_recovery(Delay::from_micros(500));
        assert!(std::panic::catch_unwind(|| {
            ShardedBneckSimulation::new(&net, recovery, 2);
        })
        .is_err());
        let recording = BneckConfig::default().with_packet_log();
        assert!(std::panic::catch_unwind(|| {
            ShardedBneckSimulation::new(&net, recording, 2);
        })
        .is_err());
    }

    #[test]
    fn duplicate_and_unknown_sessions_are_rejected() {
        let net = parking_lot();
        let hosts: Vec<NodeId> = net.hosts().map(|h| h.id()).collect();
        let mut sim = ShardedBneckSimulation::new(&net, BneckConfig::default(), 2);
        sim.join(
            SimTime::ZERO,
            SessionId(7),
            hosts[0],
            hosts[1],
            RateLimit::unlimited(),
        )
        .unwrap();
        assert_eq!(
            sim.join(
                SimTime::ZERO,
                SessionId(7),
                hosts[2],
                hosts[3],
                RateLimit::unlimited()
            ),
            Err(JoinError::DuplicateSession(SessionId(7)))
        );
        assert_eq!(
            sim.join(
                SimTime::ZERO,
                SessionId(8),
                hosts[0],
                hosts[2],
                RateLimit::unlimited()
            ),
            Err(JoinError::SourceHostBusy {
                host: hosts[0],
                existing: SessionId(7),
            })
        );
        assert_eq!(
            sim.leave(SimTime::ZERO, SessionId(9)),
            Err(UnknownSession(SessionId(9)))
        );
        assert_eq!(
            sim.change(SimTime::ZERO, SessionId(9), RateLimit::finite(1e6)),
            Err(UnknownSession(SessionId(9)))
        );
        let report = sim.run_to_quiescence();
        assert!(report.quiescent);
        assert_eq!(sim.active_sessions().collect::<Vec<_>>(), [SessionId(7)]);
    }
}
