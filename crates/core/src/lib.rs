//! # bneck-core
//!
//! The distributed and quiescent B-Neck max-min fair protocol, as specified in
//! Figures 2–4 of the paper, together with a simulation harness that runs it
//! over a [`bneck_net::Network`] on the [`bneck_sim`] discrete-event engine.
//!
//! The protocol is structured exactly like the paper:
//!
//! * [`router_link`] — the `RouterLink(e)` task run for every directed link a
//!   session crosses (Figure 2). It keeps the per-session sets `R_e`/`F_e`,
//!   the per-session probe state `μ_e^s` and assigned rate `λ_e^s`, detects
//!   bottleneck conditions and notifies the affected sessions.
//! * [`source`] — the `SourceNode(s, e)` task run at the session's source host
//!   (Figure 3), which owns the first link of the path, starts Probe cycles
//!   and delivers `API.Rate` notifications to the application.
//! * [`destination`] — the `DestinationNode(s)` task run at the destination
//!   host (Figure 4), which closes Probe cycles and detects missing
//!   bottlenecks.
//! * [`packet`] — the seven protocol packets (`Join`, `Probe`, `Response`,
//!   `Update`, `Bottleneck`, `SetBottleneck`, `Leave`).
//! * [`harness`] — [`harness::BneckSimulation`], which wires the tasks to the
//!   discrete-event simulator, forwards packets hop by hop over the network's
//!   links (modelling transmission and propagation delays) and exposes the
//!   `API.Join` / `API.Leave` / `API.Change` primitives plus quiescence
//!   detection and packet accounting.
//! * [`world`] — the shared world plumbing every protocol harness in the
//!   workspace builds on: the [`world::LinkTable`] of per-link channels,
//!   capacities and reverse links, and the [`world::SessionArena`] dense
//!   session-slot arena with slot + hop envelope addressing and a cached
//!   `Arc<SessionSet>` oracle snapshot. `bneck-baselines` instantiates the
//!   same module for its probing harness.
//!
//! The task state machines are pure: every handler consumes an input and
//! emits [`task::Action`]s (packets to send upstream or downstream, or an
//! `API.Rate` notification) into a reusable [`task::ActionBuffer`]. This makes
//! the protocol logic unit-testable without a simulator, keeps the harness a
//! thin routing layer, and keeps steady-state packet processing free of
//! per-packet allocation.
//!
//! ## Quickstart
//!
//! ```
//! use bneck_net::prelude::*;
//! use bneck_maxmin::prelude::*;
//! use bneck_core::prelude::*;
//! use bneck_sim::SimTime;
//!
//! // Two sessions share a 60 Mbps bottleneck.
//! let net = synthetic::dumbbell(2, Capacity::from_mbps(100.0),
//!                               Capacity::from_mbps(60.0), Delay::from_micros(1));
//! let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
//! let mut sim = BneckSimulation::new(&net, BneckConfig::default());
//! sim.join(SimTime::ZERO, SessionId(0), hosts[0], hosts[1], RateLimit::unlimited()).unwrap();
//! sim.join(SimTime::ZERO, SessionId(1), hosts[2], hosts[3], RateLimit::unlimited()).unwrap();
//! let report = sim.run_to_quiescence();
//! assert!(report.quiescent);
//! let rates = sim.allocation();
//! assert!((rates.rate(SessionId(0)).unwrap() - 30e6).abs() < 1.0);
//! assert!((rates.rate(SessionId(1)).unwrap() - 30e6).abs() < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod destination;
pub mod events;
pub mod harness;
pub mod packet;
pub mod partition;
pub mod recovery;
pub mod router_link;
pub mod sharded;
pub mod source;
pub mod stats;
pub mod task;
pub mod world;

pub use config::BneckConfig;
pub use events::{RateCause, RateEvent, RateEvents, Subscriber, SubscriberSet};
pub use harness::{BneckSimulation, JoinError, QuiescenceReport, SessionHandle, UnknownSession};
pub use packet::{Packet, PacketKind, ResponseKind};
pub use partition::WorldPartition;
pub use recovery::{Lane, PendingFrame, RecoveryConfig, RecoveryState, RecoveryStats};
pub use sharded::ShardedBneckSimulation;
pub use stats::PacketStats;
pub use task::{Action, ActionBuffer, RateNotification};
pub use world::{LinkTable, SessionArena, SlotJoin};

/// Commonly used items, suitable for glob import.
pub mod prelude {
    pub use crate::config::BneckConfig;
    pub use crate::events::{RateCause, RateEvent, RateEvents, Subscriber, SubscriberSet};
    pub use crate::harness::{
        BneckSimulation, JoinError, QuiescenceReport, SessionHandle, UnknownSession,
    };
    pub use crate::packet::{Packet, PacketKind, ResponseKind};
    pub use crate::partition::WorldPartition;
    pub use crate::recovery::{RecoveryConfig, RecoveryStats};
    pub use crate::sharded::ShardedBneckSimulation;
    pub use crate::stats::PacketStats;
    pub use crate::task::{Action, ActionBuffer, RateNotification};
    pub use crate::world::{LinkTable, SessionArena, SlotJoin};
}
