//! The push-based observer surface of the harness.
//!
//! The paper's interface to B-Neck delivers rates *asynchronously*: the
//! protocol invokes `API.Rate(s, r)` whenever it (re)computes the rate of
//! session `s`, and — B-Neck being quiescent — those invocations simply stop
//! once the allocation has converged. This module is that surface in code:
//!
//! * [`RateEvent`] — one `API.Rate` invocation, timestamped and tagged with
//!   the [`RateCause`] that triggered it;
//! * [`Subscriber`] — the observer trait a harness fans events out to
//!   (callbacks for rates, per-packet transmissions and quiescence);
//! * [`RateEvents`] — a drainable queue handle for consumers that prefer
//!   pulling batches over registering a callback (obtained from
//!   `BneckSimulation::rate_events`).
//!
//! The harness's optional recorders ([`RateHistoryRecorder`],
//! [`PacketLogRecorder`]) are themselves subscribers: enabling
//! `BneckConfig::record_rate_history` / `record_packet_log` registers one, so
//! the always-on per-packet `Vec` pushes of earlier revisions are gone — a
//! simulation without observers pays one branch per packet, nothing more.

use crate::packet::PacketKind;
use crate::task::RateNotification;
use bneck_maxmin::{Rate, SessionId};
use bneck_sim::SimTime;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Why an `API.Rate` notification fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum RateCause {
    /// First rate delivered to this incarnation of the session after its
    /// `API.Join`.
    Joined,
    /// The session was re-notified because the network re-converged around it
    /// (other sessions joined, left or changed their requests).
    Converged,
    /// First rate delivered after the session's own `API.Change`.
    Changed,
    /// The session left; the carried rate is the last rate its source was
    /// using. Emitted when the harness processes the `API.Leave`.
    Left,
}

/// One `API.Rate(s, r)` invocation, as delivered to [`Subscriber`]s.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct RateEvent {
    /// Simulated time of the notification.
    pub at: SimTime,
    /// The notified session.
    pub session: SessionId,
    /// The rate communicated to the session (bits per second).
    pub rate: Rate,
    /// What triggered the notification.
    pub cause: RateCause,
}

/// An observer of a protocol harness.
///
/// Subscribers are registered on a simulation (see
/// `BneckSimulation::subscribe`) and invoked synchronously while the
/// simulation runs; `Send` keeps a subscribed simulation a `Send` unit for
/// the parallel sweep drivers. All methods except [`Subscriber::on_rate`]
/// default to no-ops.
pub trait Subscriber: Send {
    /// Called for every `API.Rate` notification.
    fn on_rate(&mut self, event: &RateEvent);

    /// Called for every packet transmitted over a link — but only when
    /// [`Subscriber::wants_packets`] returns `true` at registration time.
    fn on_packet(&mut self, _at: SimTime, _kind: PacketKind) {}

    /// Called when a run drains the event queue (the network went quiescent).
    fn on_quiescent(&mut self, _at: SimTime) {}

    /// Opt-in for [`Subscriber::on_packet`]: per-packet fan-out costs a
    /// virtual call on the hottest path, so the harness skips subscribers
    /// that return `false` (the default) entirely.
    fn wants_packets(&self) -> bool {
        false
    }
}

/// Plain closures observe rates: `sim.subscribe(|e: &RateEvent| ...)`.
impl<F: FnMut(&RateEvent) + Send> Subscriber for F {
    fn on_rate(&mut self, event: &RateEvent) {
        self(event)
    }
}

/// A drainable handle onto the stream of [`RateEvent`]s of one simulation.
///
/// Obtained from `BneckSimulation::rate_events` (or any `ProtocolWorld`):
/// the simulation keeps the writing end as a registered subscriber, the
/// handle is the reading end. After quiescence the stream goes silent — a
/// drain returns the events of the convergence and further runs add nothing.
#[derive(Debug, Clone, Default)]
pub struct RateEvents {
    queue: Arc<Mutex<VecDeque<RateEvent>>>,
}

impl RateEvents {
    /// Creates the reading end together with its writing subscriber.
    pub fn channel() -> (RateEvents, Box<dyn Subscriber>) {
        let events = RateEvents::default();
        let writer = QueueWriter {
            queue: Arc::clone(&events.queue),
        };
        (events, Box::new(writer))
    }

    /// Removes and returns all queued events, oldest first.
    pub fn drain(&self) -> Vec<RateEvent> {
        self.queue
            .lock()
            .expect("rate-event queue poisoned")
            .drain(..)
            .collect()
    }

    /// Removes and returns the oldest queued event, if any.
    pub fn next(&self) -> Option<RateEvent> {
        self.queue
            .lock()
            .expect("rate-event queue poisoned")
            .pop_front()
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.queue.lock().expect("rate-event queue poisoned").len()
    }

    /// `true` when no event is queued (after quiescence, draining once and
    /// running further keeps this `true`).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

struct QueueWriter {
    queue: Arc<Mutex<VecDeque<RateEvent>>>,
}

impl Subscriber for QueueWriter {
    fn on_rate(&mut self, event: &RateEvent) {
        self.queue
            .lock()
            .expect("rate-event queue poisoned")
            .push_back(*event);
    }
}

/// The registered observers of one protocol world, with the packet fan-out
/// opt-in resolved once at registration.
///
/// Both harnesses of this workspace (`BneckSimulation` here and the
/// baselines' probing harness) embed one `SubscriberSet`, so the fan-out
/// logic — and its hot-path cost model (one branch per packet when nobody
/// listens) — lives in one place.
#[derive(Default)]
pub struct SubscriberSet {
    subscribers: Vec<Box<dyn Subscriber>>,
    /// `true` when any subscriber wants per-packet callbacks; checked on the
    /// transmit hot path so packet fan-out costs one branch when unused.
    wants_packets: bool,
}

impl SubscriberSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a subscriber.
    pub fn subscribe(&mut self, subscriber: Box<dyn Subscriber>) {
        self.wants_packets |= subscriber.wants_packets();
        self.subscribers.push(subscriber);
    }

    /// `true` when nobody is listening.
    pub fn is_empty(&self) -> bool {
        self.subscribers.is_empty()
    }

    /// Delivers one rate event to every subscriber.
    pub fn emit_rate(&mut self, event: &RateEvent) {
        for subscriber in &mut self.subscribers {
            subscriber.on_rate(event);
        }
    }

    /// Per-packet fan-out to the subscribers that opted in; one branch when
    /// none did.
    #[inline]
    pub fn note_packet(&mut self, at: SimTime, kind: PacketKind) {
        if self.wants_packets {
            for subscriber in &mut self.subscribers {
                if subscriber.wants_packets() {
                    subscriber.on_packet(at, kind);
                }
            }
        }
    }

    /// Tells every subscriber the event queue drained.
    pub fn announce_quiescent(&mut self, at: SimTime) {
        for subscriber in &mut self.subscribers {
            subscriber.on_quiescent(at);
        }
    }
}

impl std::fmt::Debug for SubscriberSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubscriberSet")
            .field("subscribers", &self.subscribers.len())
            .field("wants_packets", &self.wants_packets)
            .finish()
    }
}

/// The shared buffer of an opt-in recorder subscriber.
pub(crate) type Recording<T> = Arc<Mutex<Vec<T>>>;

pub(crate) fn snapshot<T: Clone>(recording: &Recording<T>) -> Vec<T> {
    recording.lock().expect("recorder buffer poisoned").clone()
}

/// The opt-in `API.Rate` history recorder
/// (`BneckConfig::record_rate_history`), built on the subscriber surface.
pub(crate) struct RateHistoryRecorder {
    pub(crate) log: Recording<(SimTime, RateNotification)>,
}

impl Subscriber for RateHistoryRecorder {
    fn on_rate(&mut self, event: &RateEvent) {
        if event.cause == RateCause::Left {
            // The history mirrors actual `API.Rate` deliveries; the synthetic
            // leave marker is a subscriber-surface extension.
            return;
        }
        self.log.lock().expect("recorder buffer poisoned").push((
            event.at,
            RateNotification {
                session: event.session,
                rate: event.rate,
            },
        ));
    }
}

/// The opt-in per-packet log recorder (`BneckConfig::record_packet_log`),
/// built on the subscriber surface.
pub(crate) struct PacketLogRecorder {
    pub(crate) log: Recording<(SimTime, PacketKind)>,
}

impl Subscriber for PacketLogRecorder {
    fn on_rate(&mut self, _event: &RateEvent) {}

    fn on_packet(&mut self, at: SimTime, kind: PacketKind) {
        self.log
            .lock()
            .expect("recorder buffer poisoned")
            .push((at, kind));
    }

    fn wants_packets(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_handle_drains_in_order() {
        let (events, mut writer) = RateEvents::channel();
        assert!(events.is_empty());
        for i in 0..3u64 {
            writer.on_rate(&RateEvent {
                at: SimTime::from_micros(i),
                session: SessionId(i),
                rate: i as f64,
                cause: RateCause::Joined,
            });
        }
        assert_eq!(events.len(), 3);
        let first = events.next().unwrap();
        assert_eq!(first.session, SessionId(0));
        let rest = events.drain();
        assert_eq!(rest.len(), 2);
        assert_eq!(rest[1].session, SessionId(2));
        assert!(events.is_empty());
    }

    #[test]
    fn closures_are_subscribers() {
        let mut seen = Vec::new();
        {
            let mut subscriber = |e: &RateEvent| seen.push(e.session);
            Subscriber::on_rate(
                &mut subscriber,
                &RateEvent {
                    at: SimTime::ZERO,
                    session: SessionId(9),
                    rate: 1.0,
                    cause: RateCause::Converged,
                },
            );
            assert!(!subscriber.wants_packets());
        }
        assert_eq!(seen, vec![SessionId(9)]);
    }
}
