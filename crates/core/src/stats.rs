//! Packet accounting.

use crate::packet::PacketKind;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign};

/// Counts of transmitted packets, broken down by [`PacketKind`].
///
/// Following the paper, "every packet sent across a link is accounted for":
/// the harness records one count per link traversal, so a Probe cycle of a
/// session with a path of `h` links contributes `2h` packets.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct PacketStats {
    counts: [u64; 7],
}

impl PacketStats {
    /// Creates an all-zero counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one transmitted packet of the given kind.
    pub fn record(&mut self, kind: PacketKind) {
        self.counts[kind.index()] += 1;
    }

    /// The number of transmitted packets of the given kind.
    pub fn count(&self, kind: PacketKind) -> u64 {
        self.counts[kind.index()]
    }

    /// The total number of transmitted packets.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Iterates over `(kind, count)` pairs in a stable order.
    pub fn iter(&self) -> impl Iterator<Item = (PacketKind, u64)> + '_ {
        PacketKind::ALL.into_iter().map(|k| (k, self.count(k)))
    }

    /// The difference between this counter and an earlier snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` has any count larger than `self` (it is not an
    /// earlier snapshot of the same counter).
    pub fn since(&self, earlier: &PacketStats) -> PacketStats {
        let mut counts = [0u64; 7];
        for (i, c) in counts.iter_mut().enumerate() {
            *c = self.counts[i]
                .checked_sub(earlier.counts[i])
                .expect("`earlier` must be an earlier snapshot");
        }
        PacketStats { counts }
    }
}

impl Add for PacketStats {
    type Output = PacketStats;
    fn add(self, rhs: PacketStats) -> PacketStats {
        let mut out = self;
        out += rhs;
        out
    }
}

impl AddAssign for PacketStats {
    fn add_assign(&mut self, rhs: PacketStats) {
        for (a, b) in self.counts.iter_mut().zip(rhs.counts.iter()) {
            *a += b;
        }
    }
}

impl fmt::Display for PacketStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "total={}", self.total())?;
        for (kind, count) in self.iter() {
            write!(f, " {kind}={count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_totals() {
        let mut s = PacketStats::new();
        s.record(PacketKind::Join);
        s.record(PacketKind::Join);
        s.record(PacketKind::Response);
        assert_eq!(s.count(PacketKind::Join), 2);
        assert_eq!(s.count(PacketKind::Response), 1);
        assert_eq!(s.count(PacketKind::Leave), 0);
        assert_eq!(s.total(), 3);
        assert_eq!(s.iter().count(), 7);
    }

    #[test]
    fn snapshots_and_sums() {
        let mut s = PacketStats::new();
        s.record(PacketKind::Probe);
        let snapshot = s;
        s.record(PacketKind::Probe);
        s.record(PacketKind::Update);
        let delta = s.since(&snapshot);
        assert_eq!(delta.count(PacketKind::Probe), 1);
        assert_eq!(delta.count(PacketKind::Update), 1);
        let sum = snapshot + delta;
        assert_eq!(sum, s);
    }

    #[test]
    #[should_panic(expected = "earlier snapshot")]
    fn since_rejects_non_snapshots() {
        let mut a = PacketStats::new();
        let mut b = PacketStats::new();
        b.record(PacketKind::Join);
        a.record(PacketKind::Leave);
        let _ = a.since(&b);
    }

    #[test]
    fn display_lists_all_kinds() {
        let mut s = PacketStats::new();
        s.record(PacketKind::SetBottleneck);
        let text = s.to_string();
        assert!(text.contains("total=1"));
        assert!(text.contains("SetBottleneck=1"));
        assert!(text.contains("Join=0"));
    }
}
