//! The simulation harness: runs the B-Neck tasks over a network on the
//! discrete-event engine.
//!
//! The harness owns one [`RouterLink`] task per directed link (created lazily
//! when the first session crosses the link), one [`SourceNode`] and one
//! [`DestinationNode`] per session, and forwards the packets produced by the
//! task handlers hop by hop over the network's links, each modelled as a
//! simulator channel with the link's bandwidth and propagation delay.
//!
//! All world state is keyed by dense indices through the shared plumbing of
//! [`crate::world`]: router-link tasks live in a vector indexed by
//! [`LinkId`] alongside a [`LinkTable`], and per-session tasks and notified
//! rates live in vectors indexed by the *session slot* a shared
//! [`SessionArena`] assigns at join (resolved once per packet through a
//! single id → slot map). Task handlers emit into one reusable
//! [`ActionBuffer`], so steady-state packet processing allocates nothing.
//!
//! Quiescence detection is inherited from the simulator: the network is
//! quiescent exactly when no protocol packet is in flight or pending, which is
//! when [`BneckSimulation::run_to_quiescence`] returns. A fully-built
//! [`BneckSimulation`] also implements the engine-level
//! [`Simulation`](bneck_sim::Simulation) trait, so the experiment drivers can
//! run it — and fan it out across worker threads — through the same unified
//! interface as any other protocol-under-test.

use crate::config::BneckConfig;
use crate::destination::DestinationNode;
use crate::events::{
    snapshot, PacketLogRecorder, RateCause, RateEvent, RateEvents, RateHistoryRecorder, Recording,
    Subscriber, SubscriberSet,
};
use crate::packet::{Packet, PacketKind};
use crate::recovery::{Lane, PendingFrame, RecoveryState, RecoveryStats};
use crate::router_link::RouterLink;
use crate::source::SourceNode;
use crate::stats::PacketStats;
use crate::task::{Action, ActionBuffer, RateNotification};
use crate::world::{LinkTable, SessionArena};
use bneck_maxmin::{Allocation, Rate, RateLimit, SessionId, SessionSet};
use bneck_net::{LinkId, Network, NodeId, Path, Router};
use bneck_sim::{
    Address, ChannelId, Context, Engine, FaultCounters, FaultPlan, RunReport, ScheduleCursor,
    SimTime, Simulation, World,
};
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// The session API primitives, delivered to a session's source task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum ApiCall {
    Join { limit: RateLimit },
    Leave,
    Change { limit: RateLimit },
}

/// Where a simulated message is headed. Sources and destinations are
/// addressed by their dense session slot; links carry, in addition to the
/// dense link identifier, the hop index of the link within the carried
/// packet's session path and that session's slot, so forwarding the packet a
/// further hop needs neither an id → slot lookup nor a path position scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Target {
    Source(u32),
    Link {
        link: LinkId,
        /// Index of `link` within the session path of the envelope's packet.
        hop: u32,
        /// Session slot of the envelope's packet.
        slot: u32,
    },
    Destination(u32),
}

/// A simulated message: an API call or a protocol packet, with its target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Envelope {
    pub(crate) target: Target,
    pub(crate) payload: Payload,
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Payload {
    Api(ApiCall),
    Protocol(Packet),
    /// A protocol packet framed by the recovery layer: sequenced per
    /// `(session, link)` lane, acknowledged and retransmitted (see
    /// [`crate::recovery`]). Only constructed when
    /// [`BneckConfig::recovery`] is set.
    Data {
        /// The directed link the frame travels over (the lane's link half).
        link: LinkId,
        /// Per-lane sequence number.
        seq: u32,
        packet: Packet,
    },
    /// Receiver → sender acknowledgement of a [`Payload::Data`] frame.
    /// Travels over the lane's reverse channel and is itself subject to
    /// channel faults.
    Ack {
        session: SessionId,
        link: LinkId,
        seq: u32,
    },
    /// Retransmission timer of an in-flight frame, scheduled outside the
    /// channels (timers are never dropped or reordered). A no-op if the
    /// frame has been acknowledged by the time it fires.
    Retransmit {
        session: SessionId,
        link: LinkId,
        seq: u32,
    },
}

/// Error returned when `API.Join` cannot create a session.
///
/// This enum is join-specific: `API.Leave` and `API.Change` can only fail
/// with [`UnknownSession`], which is its own type — callers match exactly the
/// failures an operation can produce instead of a shared catch-all.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum JoinError {
    /// No path exists between the requested source and destination hosts.
    NoPath {
        /// The requested source host.
        source: NodeId,
        /// The requested destination host.
        destination: NodeId,
    },
    /// A session with the same identifier is already active.
    DuplicateSession(SessionId),
    /// Another active session already starts at the requested source host.
    ///
    /// The paper's system model assumes every host is the source of at most
    /// one session (Section II: "this limitation is just for the sake of
    /// simplicity"); the `SourceNode` task owns the host's access link, so two
    /// sessions sharing a source host would silently over-commit that link.
    SourceHostBusy {
        /// The contended source host.
        host: NodeId,
        /// The session already using it.
        existing: SessionId,
    },
}

impl fmt::Display for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinError::NoPath {
                source,
                destination,
            } => write!(f, "no path from {source} to {destination}"),
            JoinError::DuplicateSession(s) => write!(f, "session {s} is already active"),
            JoinError::SourceHostBusy { host, existing } => write!(
                f,
                "host {host} is already the source of active session {existing}"
            ),
        }
    }
}

impl std::error::Error for JoinError {}

/// Error returned by `API.Leave` and `API.Change`: the session is not active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct UnknownSession(pub SessionId);

impl fmt::Display for UnknownSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session {} is not active", self.0)
    }
}

impl std::error::Error for UnknownSession {}

/// A live session, returned by `API.Join`.
///
/// The handle pairs the caller's [`SessionId`] with the dense per-simulation
/// slot the harness assigned, so handle-based queries skip the id → slot
/// lookup. Handles are plain copyable tokens — they do not keep the session
/// alive, and a handle of a departed session simply names an inactive one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionHandle {
    session: SessionId,
    slot: u32,
}

impl SessionHandle {
    pub(crate) fn new(session: SessionId, slot: u32) -> Self {
        SessionHandle { session, slot }
    }

    /// The session's identifier.
    pub fn id(&self) -> SessionId {
        self.session
    }

    /// The dense slot the harness assigned (stable for the lifetime of the
    /// simulation; reused if the identifier rejoins after a leave).
    pub fn slot(&self) -> u32 {
        self.slot
    }
}

impl From<SessionHandle> for SessionId {
    fn from(handle: SessionHandle) -> SessionId {
        handle.session
    }
}

/// Summary of a run to quiescence.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct QuiescenceReport {
    /// Whether the run actually reached quiescence (always `true` for
    /// [`BneckSimulation::run_to_quiescence`], may be `false` for horizon
    /// limited runs).
    pub quiescent: bool,
    /// Time of the last processed protocol event.
    pub quiescent_at: SimTime,
    /// Events processed during the run.
    pub events_processed: u64,
    /// Packets transmitted over links during the run.
    pub packets_sent: u64,
}

impl From<RunReport> for QuiescenceReport {
    fn from(report: RunReport) -> Self {
        QuiescenceReport {
            quiescent: report.quiescent,
            quiescent_at: report.quiescent_at,
            events_processed: report.events_processed,
            packets_sent: report.messages_sent,
        }
    }
}

/// The simulation world: all protocol tasks plus the shared routing and
/// session-slot state of [`crate::world`], in dense per-link /
/// per-session-slot vectors.
pub(crate) struct BneckWorld {
    config: BneckConfig,
    /// Channels, capacities and the reverse-link table, indexed by `LinkId`.
    links: LinkTable,
    /// The `RouterLink` task of each directed link, indexed by
    /// `LinkId::index()`; `None` until a session first crosses the link.
    router_links: Vec<Option<RouterLink>>,
    /// Per-session tasks, indexed by session slot (parallel to `arena`).
    /// Entries persist after a leave (stray packets may still be in flight)
    /// and are overwritten when the identifier rejoins.
    sources: Vec<SourceNode>,
    destinations: Vec<DestinationNode>,
    /// Last notified rate per session slot; `NaN` = never notified / cleared.
    notified: Vec<Rate>,
    /// The shared session-slot arena: id ↔ slot, paths, limits, active set
    /// and the cached oracle snapshot.
    arena: SessionArena,
    /// What a slot's *next* `API.Rate` notification means: `Joined` after a
    /// join, `Changed` after a change, `Converged` once the first
    /// notification of the incarnation went out. Indexed by slot.
    causes: Vec<RateCause>,
    /// Reusable buffer the task handlers emit into.
    scratch: ActionBuffer,
    stats: PacketStats,
    /// The registered observers ([`RateEvents`] writers, recorders, user
    /// callbacks).
    subscribers: SubscriberSet,
    /// The recovery layer's sequencing/retransmission state, present only
    /// when [`BneckConfig::recovery`] is set. Boxed so paper-mode worlds pay
    /// one pointer, and the hot paths pay one null check.
    recovery: Option<Box<RecoveryState<Target>>>,
}

impl BneckWorld {
    /// Builds a world over `network`, registering every directed link as a
    /// channel on `engine`. Channels are registered in link order, so channel
    /// identifiers equal link identifiers on every engine the same network is
    /// registered with — the property the sharded engine relies on for
    /// cross-shard event keys.
    pub(crate) fn new(
        network: &Network,
        engine: &mut Engine<Envelope>,
        config: BneckConfig,
    ) -> Self {
        let links = LinkTable::new(network, engine, config.packet_bits);
        let mut router_links = Vec::new();
        router_links.resize_with(network.link_count(), || None);
        BneckWorld {
            config,
            links,
            router_links,
            sources: Vec::new(),
            destinations: Vec::new(),
            notified: Vec::new(),
            arena: SessionArena::new(),
            causes: Vec::new(),
            scratch: ActionBuffer::new(),
            stats: PacketStats::new(),
            subscribers: SubscriberSet::new(),
            recovery: config.recovery.map(|rc| Box::new(RecoveryState::new(rc))),
        }
    }

    /// Activates `session` in the arena and installs its source and
    /// destination tasks, returning the assigned slot. The caller performs
    /// the duplicate-session and source-host-uniqueness checks; slot
    /// assignment itself is deterministic, so replicated worlds that apply
    /// the same registrations in the same order assign the same slots.
    ///
    /// # Panics
    ///
    /// Panics if the session is already active.
    pub(crate) fn register_session(
        &mut self,
        session: SessionId,
        path: Path,
        limit: RateLimit,
    ) -> u32 {
        let first_link = path.first_link();
        let first_capacity = self.links.capacity(first_link);
        let source_task =
            SourceNode::new(session, first_link, first_capacity, self.config.tolerance);
        let joined = self
            .arena
            .join(session, path, limit)
            .expect("the session must not be active");
        let slot = joined.slot;
        if joined.reused {
            let i = slot as usize;
            self.sources[i] = source_task;
            self.destinations[i] = DestinationNode::new(session);
            self.notified[i] = f64::NAN;
            self.causes[i] = RateCause::Joined;
        } else {
            self.sources.push(source_task);
            self.destinations.push(DestinationNode::new(session));
            self.notified.push(f64::NAN);
            self.causes.push(RateCause::Joined);
        }
        slot
    }

    /// Deactivates `session`, clearing its notified rate. Returns the slot it
    /// occupied, or `None` if the session was not active.
    pub(crate) fn deregister_session(&mut self, session: SessionId) -> Option<u32> {
        let slot = self.arena.leave(session)?;
        self.notified[slot as usize] = f64::NAN;
        Some(slot)
    }

    /// Updates `session`'s requested rate limit in the arena. Returns its
    /// slot, or `None` if the session is not active.
    pub(crate) fn change_session(&mut self, session: SessionId, limit: RateLimit) -> Option<u32> {
        self.arena.change(session, limit)
    }

    /// The shared session-slot arena.
    pub(crate) fn arena(&self) -> &SessionArena {
        &self.arena
    }

    /// Cumulative packet counts recorded by this world.
    pub(crate) fn stats(&self) -> &PacketStats {
        &self.stats
    }

    /// The last rate notified to the source task in `slot` (`NaN` when the
    /// slot has never been notified since its last join).
    pub(crate) fn notified_rate(&self, slot: u32) -> Rate {
        self.notified[slot as usize]
    }

    fn dispatch(&mut self, ctx: &mut Context<'_, Envelope>, envelope: Envelope) {
        let mut actions = std::mem::take(&mut self.scratch);
        actions.clear();
        // The session the delivered message belongs to; actions for this
        // session reuse the slot (and hop) carried by the envelope's target,
        // so the common forward-one-hop case resolves no map at all.
        let origin_session = match (envelope.target, envelope.payload) {
            (Target::Source(slot), Payload::Api(call)) => {
                let Some(source) = self.sources.get_mut(slot as usize) else {
                    self.scratch = actions;
                    return;
                };
                let session = source.session();
                match call {
                    ApiCall::Join { limit } => source.api_join(limit, &mut actions),
                    ApiCall::Leave => {
                        // The `Left` marker carries the last rate the source
                        // was using before the departure tore it down.
                        let final_rate = source.current_rate();
                        source.api_leave(&mut actions);
                        self.subscribers.emit_rate(&RateEvent {
                            at: ctx.now(),
                            session,
                            rate: final_rate,
                            cause: RateCause::Left,
                        });
                    }
                    ApiCall::Change { limit } => {
                        // Tag the cause when the change is *processed* (at
                        // simulated time), not when it was scheduled — a
                        // re-convergence notification that fires before the
                        // change takes effect must stay `Converged`.
                        self.causes[slot as usize] = RateCause::Changed;
                        source.api_change(limit, &mut actions);
                    }
                }
                session
            }
            (Target::Source(slot), Payload::Protocol(packet)) => {
                if let Some(source) = self.sources.get_mut(slot as usize) {
                    source.handle(packet, &mut actions);
                }
                packet.session()
            }
            (Target::Link { link: e, .. }, Payload::Protocol(packet)) => {
                let capacity = self.links.capacity(e);
                let entry = &mut self.router_links[e.index()];
                let link = entry
                    .get_or_insert_with(|| RouterLink::new(e, capacity, self.config.tolerance));
                link.handle(packet, &mut actions);
                packet.session()
            }
            (Target::Destination(slot), Payload::Protocol(packet)) => {
                if let Some(destination) = self.destinations.get(slot as usize) {
                    destination.handle(packet, &mut actions);
                }
                packet.session()
            }
            // Recovery frames, acks and timers are handled by the harness
            // itself, off the protocol hot path.
            (_, Payload::Data { .. })
            | (_, Payload::Ack { .. })
            | (_, Payload::Retransmit { .. }) => {
                self.scratch = actions;
                self.handle_recovery(ctx, envelope);
                return;
            }
            // API calls are only ever addressed to sources.
            (_, Payload::Api(_)) => {
                self.scratch = actions;
                return;
            }
        };
        for action in actions.drain() {
            self.perform(ctx, envelope.target, origin_session, action);
        }
        self.scratch = actions;
    }

    /// Turns a task action into a packet transmission (or a rate notification
    /// record), routing it to the next hop of the session's path.
    fn perform(
        &mut self,
        ctx: &mut Context<'_, Envelope>,
        origin: Target,
        origin_session: SessionId,
        action: Action,
    ) {
        match action {
            Action::NotifyRate { session, rate } => {
                let cause = match self.arena.slot_of(session) {
                    Some(slot) => {
                        self.notified[slot as usize] = rate;
                        std::mem::replace(&mut self.causes[slot as usize], RateCause::Converged)
                    }
                    None => RateCause::Converged,
                };
                if !self.subscribers.is_empty() {
                    self.subscribers.emit_rate(&RateEvent {
                        at: ctx.now(),
                        session,
                        rate,
                        cause,
                    });
                }
            }
            Action::SendDownstream(packet) => {
                let session = packet.session();
                let (channel_link, next) = match origin {
                    Target::Source(origin_slot) => {
                        let slot = if session == origin_session {
                            origin_slot
                        } else {
                            match self.arena.slot_of(session) {
                                Some(s) => s,
                                None => return,
                            }
                        };
                        let links = self.arena.path(slot).links();
                        let next = if links.len() > 1 {
                            Target::Link {
                                link: links[1],
                                hop: 1,
                                slot,
                            }
                        } else {
                            Target::Destination(slot)
                        };
                        (links[0], next)
                    }
                    Target::Link { link, hop, slot } => {
                        // Trust the carried coordinates for fresh envelopes;
                        // re-resolve (or drop) stale hops from a previous
                        // incarnation of the session.
                        let Some((slot, hop)) =
                            self.arena
                                .resolve_hop(session, origin_session, slot, hop, link)
                        else {
                            return;
                        };
                        let hop = hop as usize;
                        let links = self.arena.path(slot).links();
                        let next = if hop + 1 < links.len() {
                            Target::Link {
                                link: links[hop + 1],
                                hop: hop as u32 + 1,
                                slot,
                            }
                        } else {
                            Target::Destination(slot)
                        };
                        (links[hop], next)
                    }
                    Target::Destination(_) => return,
                };
                self.transmit(ctx, channel_link, next, packet);
            }
            Action::SendUpstream(packet) => {
                let session = packet.session();
                let (forward_link, next) = match origin {
                    Target::Destination(origin_slot) => {
                        let slot = if session == origin_session {
                            origin_slot
                        } else {
                            match self.arena.slot_of(session) {
                                Some(s) => s,
                                None => return,
                            }
                        };
                        let links = self.arena.path(slot).links();
                        let last = links.len() - 1;
                        let next = if last >= 1 {
                            Target::Link {
                                link: links[last],
                                hop: last as u32,
                                slot,
                            }
                        } else {
                            Target::Source(slot)
                        };
                        (links[last], next)
                    }
                    Target::Link { link, hop, slot } => {
                        // See the downstream arm: re-resolve (or drop) stale
                        // hops from a previous incarnation of the session.
                        let Some((slot, hop)) =
                            self.arena
                                .resolve_hop(session, origin_session, slot, hop, link)
                        else {
                            return;
                        };
                        let hop = hop as usize;
                        if hop == 0 {
                            // The first link is owned by the source task; a
                            // hop of zero can only come from a stale packet
                            // whose link happens to be the new path's access
                            // link. There is no upstream neighbour to route
                            // to — drop it.
                            return;
                        }
                        let links = self.arena.path(slot).links();
                        let next = if hop > 1 {
                            Target::Link {
                                link: links[hop - 1],
                                hop: hop as u32 - 1,
                                slot,
                            }
                        } else {
                            Target::Source(slot)
                        };
                        (links[hop - 1], next)
                    }
                    Target::Source(_) => return,
                };
                // Upstream packets travel over the reverse link of the hop.
                let Some(reverse) = self.links.reverse(forward_link) else {
                    return;
                };
                self.transmit(ctx, reverse, next, packet);
            }
        }
    }

    fn transmit(
        &mut self,
        ctx: &mut Context<'_, Envelope>,
        over: LinkId,
        target: Target,
        packet: Packet,
    ) {
        self.stats.record(packet.kind());
        self.subscribers.note_packet(ctx.now(), packet.kind());
        if self.recovery.is_some() {
            return self.transmit_recovered(ctx, over, target, packet);
        }
        ctx.send(
            self.links.channel(over),
            Address(0),
            Envelope {
                target,
                payload: Payload::Protocol(packet),
            },
        );
    }

    /// The envelope target of acknowledgements. Acks are consumed by the
    /// harness's central recovery state, never routed to a task, so the
    /// target is a placeholder (every task lookup of this slot misses).
    const ACK_TARGET: Target = Target::Source(u32::MAX);

    /// Sends `packet` inside a sequenced recovery frame and arms its
    /// retransmission timer. Only reached when recovery is configured.
    #[cold]
    #[inline(never)]
    fn transmit_recovered(
        &mut self,
        ctx: &mut Context<'_, Envelope>,
        over: LinkId,
        target: Target,
        packet: Packet,
    ) {
        let recovery = self.recovery.as_mut().expect("checked by transmit");
        let lane = Lane::new(packet.session(), over);
        let seq = recovery.assign_seq(lane);
        recovery.unacked.insert(
            (lane, seq),
            PendingFrame {
                over,
                target,
                packet,
            },
        );
        recovery.stats.frames_sent += 1;
        let rto = recovery.config.rto;
        ctx.send(
            self.links.channel(over),
            Address(0),
            Envelope {
                target,
                payload: Payload::Data {
                    link: over,
                    seq,
                    packet,
                },
            },
        );
        ctx.schedule_after(
            rto,
            Address(0),
            Envelope {
                target,
                payload: Payload::Retransmit {
                    session: packet.session(),
                    link: over,
                    seq,
                },
            },
        );
    }

    /// Handles the recovery layer's own messages: data frames (ack, then
    /// deliver in order / buffer / drop duplicates), acknowledgements, and
    /// retransmission timers.
    #[cold]
    #[inline(never)]
    fn handle_recovery(&mut self, ctx: &mut Context<'_, Envelope>, envelope: Envelope) {
        match envelope.payload {
            Payload::Data { link, seq, packet } => {
                let session = packet.session();
                let lane = Lane::new(session, link);
                // Every frame is acked, duplicates included: the duplicate
                // usually means the previous ack was lost.
                self.send_ack(ctx, session, link, seq);
                let recovery = self.recovery.as_mut().expect("recovery frame received");
                let expected = *recovery.expected.entry(lane).or_insert(0);
                if seq < expected {
                    recovery.stats.duplicates_dropped += 1;
                    return;
                }
                if seq > expected {
                    // A gap: hold the frame until its predecessors arrive.
                    let frame = PendingFrame {
                        over: link,
                        target: envelope.target,
                        packet,
                    };
                    if recovery.buffered.insert((lane, seq), frame).is_none() {
                        recovery.stats.reordered_buffered += 1;
                    } else {
                        recovery.stats.duplicates_dropped += 1;
                    }
                    return;
                }
                // In order: deliver, then flush any buffered successors the
                // gap was holding back.
                *recovery
                    .expected
                    .get_mut(&lane)
                    .expect("entry created above") += 1;
                self.deliver_frame(ctx, envelope.target, packet);
                loop {
                    let recovery = self.recovery.as_mut().expect("still configured");
                    let next = *recovery.expected.get(&lane).expect("entry created above");
                    let Some(frame) = recovery.buffered.remove(&(lane, next)) else {
                        break;
                    };
                    *recovery
                        .expected
                        .get_mut(&lane)
                        .expect("entry created above") += 1;
                    self.deliver_frame(ctx, frame.target, frame.packet);
                }
            }
            Payload::Ack { session, link, seq } => {
                let recovery = self.recovery.as_mut().expect("recovery ack received");
                recovery.unacked.remove(&(Lane::new(session, link), seq));
            }
            Payload::Retransmit { session, link, seq } => {
                let recovery = self.recovery.as_mut().expect("recovery timer fired");
                let lane = Lane::new(session, link);
                // Acked in the meantime → the timer is stale; its firing is
                // the RTO tail that delays quiescence.
                let Some(frame) = recovery.unacked.get(&(lane, seq)).copied() else {
                    return;
                };
                recovery.stats.retransmits += 1;
                let rto = recovery.config.rto;
                ctx.send(
                    self.links.channel(frame.over),
                    Address(0),
                    Envelope {
                        target: frame.target,
                        payload: Payload::Data {
                            link,
                            seq,
                            packet: frame.packet,
                        },
                    },
                );
                ctx.schedule_after(
                    rto,
                    Address(0),
                    Envelope {
                        target: frame.target,
                        payload: Payload::Retransmit { session, link, seq },
                    },
                );
            }
            Payload::Api(_) | Payload::Protocol(_) => unreachable!("routed by dispatch"),
        }
    }

    /// Sends the acknowledgement of frame `(session, link, seq)` over the
    /// lane's reverse channel. The ack rides the same faulty substrate as
    /// data; a lost ack is repaired by the sender's retransmission (which the
    /// receiver then re-acks as a duplicate).
    fn send_ack(
        &mut self,
        ctx: &mut Context<'_, Envelope>,
        session: SessionId,
        link: LinkId,
        seq: u32,
    ) {
        let recovery = self.recovery.as_mut().expect("acking a recovery frame");
        recovery.stats.acks_sent += 1;
        ctx.send(
            self.links.reverse_channel(link),
            Address(0),
            Envelope {
                target: Self::ACK_TARGET,
                payload: Payload::Ack { session, link, seq },
            },
        );
    }

    /// Hands a recovered in-order packet to the protocol task it was
    /// addressed to, exactly as an unframed delivery would have.
    fn deliver_frame(&mut self, ctx: &mut Context<'_, Envelope>, target: Target, packet: Packet) {
        self.dispatch(
            ctx,
            Envelope {
                target,
                payload: Payload::Protocol(packet),
            },
        );
    }
}

impl World for BneckWorld {
    type Message = Envelope;

    fn handle(&mut self, ctx: &mut Context<'_, Envelope>, _to: Address, msg: Envelope) {
        self.dispatch(ctx, msg);
    }

    /// Protocol packets are keyed by their destination link, so the engine
    /// drains a same-instant burst through one [`World::handle_batch`] call
    /// with the link task's state hot. API calls and end-host deliveries are
    /// not batched — they are rare and carry per-session state anyway.
    fn batch_key(&self, msg: &Envelope) -> Option<u64> {
        match (msg.target, msg.payload) {
            (Target::Link { link, .. }, Payload::Protocol(_)) => Some(link.index() as u64),
            (
                _,
                Payload::Api(_)
                | Payload::Protocol(_)
                | Payload::Data { .. }
                | Payload::Ack { .. }
                | Payload::Retransmit { .. },
            ) => None,
        }
    }

    /// Touches the state the next delivery will need: the link task record
    /// (plus its id → slot entry and member line) for link-targeted packets,
    /// the per-session task for end-host deliveries. At paper scale these
    /// records live far apart in a multi-hundred-megabyte working set, so
    /// starting their loads one event early overlaps part of the miss
    /// latency with the current handler. (A shallower variant that touched
    /// only the first line of each chain measured *worse* than this on the
    /// 50k preset — the member line is the one that matters.)
    fn warm(&self, msg: &Envelope) {
        match msg.target {
            Target::Link { link: e, hop, slot } => {
                if let Some(Some(task)) = self.router_links.get(e.index()) {
                    if let Payload::Protocol(packet) = msg.payload {
                        task.warm(packet.session());
                    }
                }
                // The forwarding side of the delivery: the session's path
                // record (next-hop lookup) and the reverse-link entry
                // (upstream responses) — independent lines, loaded in
                // parallel with the task chain above.
                if (slot as usize) < self.arena.slot_count() {
                    std::hint::black_box(self.arena.link_at(slot, hop));
                }
                std::hint::black_box(self.links.reverse(e));
            }
            Target::Source(slot) => {
                if let Some(source) = self.sources.get(slot as usize) {
                    std::hint::black_box(source.session());
                }
            }
            Target::Destination(slot) => {
                if let Some(destination) = self.destinations.get(slot as usize) {
                    std::hint::black_box(destination);
                }
            }
        }
    }

    /// Delivers a same-instant run of packets to one link: the link task is
    /// resolved once per packet from an already-hot cache line, and the
    /// *next* packet's member record is touched before the current one is
    /// handled, so its id → slot probe and member line are in flight while
    /// the handler works (a software prefetch by early load).
    fn handle_batch(
        &mut self,
        ctx: &mut Context<'_, Envelope>,
        batch: &mut Vec<(Address, Envelope)>,
    ) {
        for i in 0..batch.len() {
            let envelope = batch[i].1;
            let (Target::Link { link: e, .. }, Payload::Protocol(packet)) =
                (envelope.target, envelope.payload)
            else {
                // `batch_key` only groups link-targeted protocol packets;
                // anything else would be an engine bug, but dispatching it
                // keeps the harness honest.
                self.dispatch(ctx, envelope);
                continue;
            };
            let mut actions = std::mem::take(&mut self.scratch);
            actions.clear();
            let capacity = self.links.capacity(e);
            let entry = &mut self.router_links[e.index()];
            let link =
                entry.get_or_insert_with(|| RouterLink::new(e, capacity, self.config.tolerance));
            if let Some((_, next)) = batch.get(i + 1) {
                if let Payload::Protocol(next_packet) = next.payload {
                    link.warm(next_packet.session());
                }
            }
            link.handle(packet, &mut actions);
            for action in actions.drain() {
                self.perform(ctx, envelope.target, packet.session(), action);
            }
            self.scratch = actions;
        }
        batch.clear();
    }
}

/// A complete B-Neck simulation over a network.
///
/// See the crate-level documentation for an end-to-end example.
pub struct BneckSimulation<'a> {
    engine: Engine<Envelope>,
    world: BneckWorld,
    network: &'a Network,
    router: Router<'a>,
    source_hosts: BTreeMap<NodeId, SessionId>,
    /// Reading end of the opt-in `API.Rate` history recorder.
    rate_history: Option<Recording<(SimTime, RateNotification)>>,
    /// Reading end of the opt-in per-packet log recorder.
    packet_log: Option<Recording<(SimTime, PacketKind)>>,
}

impl<'a> fmt::Debug for BneckSimulation<'a> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BneckSimulation")
            .field("now", &self.engine.now())
            .field("active_sessions", &self.world.arena.active_count())
            .field("pending_events", &self.engine.pending_events())
            .finish()
    }
}

impl<'a> BneckSimulation<'a> {
    /// Creates a simulation over `network` with the given configuration.
    ///
    /// Every directed link of the network is registered as a simulator channel
    /// with the link's bandwidth and propagation delay.
    pub fn new(network: &'a Network, config: BneckConfig) -> Self {
        let mut engine = Engine::new();
        let world = BneckWorld::new(network, &mut engine, config);
        let mut sim = BneckSimulation {
            engine,
            world,
            network,
            router: Router::new(network),
            source_hosts: BTreeMap::new(),
            rate_history: None,
            packet_log: None,
        };
        // The optional recorders are ordinary subscribers over the same
        // observer surface user code registers on.
        if config.record_rate_history {
            let log = Recording::default();
            sim.rate_history = Some(Arc::clone(&log));
            sim.world
                .subscribers
                .subscribe(Box::new(RateHistoryRecorder { log }));
        }
        if config.record_packet_log {
            let log = Recording::default();
            sim.packet_log = Some(Arc::clone(&log));
            sim.world
                .subscribers
                .subscribe(Box::new(PacketLogRecorder { log }));
        }
        sim
    }

    /// Registers an observer of this simulation: it sees every `API.Rate`
    /// notification (as a [`RateEvent`]), quiescence, and — when it opts in —
    /// every transmitted packet. Closures `FnMut(&RateEvent)` are
    /// subscribers.
    pub fn subscribe<S: Subscriber + 'static>(&mut self, subscriber: S) {
        self.world.subscribers.subscribe(Box::new(subscriber));
    }

    /// Registers a boxed observer (the object-safe form used behind
    /// `dyn ProtocolWorld`).
    pub fn subscribe_boxed(&mut self, subscriber: Box<dyn Subscriber>) {
        self.world.subscribers.subscribe(subscriber);
    }

    /// Opens a drainable stream of this simulation's [`RateEvent`]s.
    ///
    /// Each call opens an independent stream (events from registration
    /// onward). Once the network is quiescent the stream goes silent: a drain
    /// returns the convergence's events, and running further adds nothing.
    pub fn rate_events(&mut self) -> RateEvents {
        let (events, writer) = RateEvents::channel();
        self.world.subscribers.subscribe(writer);
        events
    }

    /// `true` if `host` is currently the source of an active session (and thus
    /// cannot start another one, per the paper's one-session-per-source-host
    /// model).
    pub fn is_source_host_busy(&self, host: NodeId) -> bool {
        self.source_hosts.contains_key(&host)
    }

    /// The network the simulation runs over.
    pub fn network(&self) -> &'a Network {
        self.network
    }

    /// `API.Join(s, r)` at time `at`, routing the session along a shortest
    /// path from `source` to `destination`. Returns the session's
    /// [`SessionHandle`].
    ///
    /// # Errors
    ///
    /// Returns [`JoinError::NoPath`] if the hosts are not connected and
    /// [`JoinError::DuplicateSession`] if the identifier is already in use.
    pub fn join(
        &mut self,
        at: SimTime,
        session: SessionId,
        source: NodeId,
        destination: NodeId,
        limit: RateLimit,
    ) -> Result<SessionHandle, JoinError> {
        let path = self
            .router
            .shortest_path(source, destination)
            .ok_or(JoinError::NoPath {
                source,
                destination,
            })?;
        self.join_with_path(at, session, path, limit)
    }

    /// `API.Join(s, r)` at time `at` along an explicit path. Returns the
    /// session's [`SessionHandle`].
    ///
    /// # Errors
    ///
    /// Returns [`JoinError::DuplicateSession`] if the identifier is already in
    /// use by an active session, or [`JoinError::SourceHostBusy`] if another
    /// active session already starts at the path's source host.
    pub fn join_with_path(
        &mut self,
        at: SimTime,
        session: SessionId,
        path: Path,
        limit: RateLimit,
    ) -> Result<SessionHandle, JoinError> {
        if self.world.arena.is_active(session) {
            return Err(JoinError::DuplicateSession(session));
        }
        if let Some(existing) = self.source_hosts.get(&path.source()) {
            return Err(JoinError::SourceHostBusy {
                host: path.source(),
                existing: *existing,
            });
        }
        self.source_hosts.insert(path.source(), session);
        let slot = self.world.register_session(session, path, limit);
        self.engine.inject(
            at,
            Address(0),
            Envelope {
                target: Target::Source(slot),
                payload: Payload::Api(ApiCall::Join { limit }),
            },
        );
        Ok(SessionHandle { session, slot })
    }

    /// `API.Leave(s)` at time `at`. Subscribers receive a
    /// [`RateCause::Left`] event when the departure is processed.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownSession`] if the session is not active.
    pub fn leave(&mut self, at: SimTime, session: SessionId) -> Result<(), UnknownSession> {
        let Some(slot) = self.world.deregister_session(session) else {
            return Err(UnknownSession(session));
        };
        self.source_hosts.retain(|_, s| *s != session);
        self.engine.inject(
            at,
            Address(0),
            Envelope {
                target: Target::Source(slot),
                payload: Payload::Api(ApiCall::Leave),
            },
        );
        Ok(())
    }

    /// `API.Change(s, r)` at time `at`. The next `API.Rate` delivered to the
    /// session carries [`RateCause::Changed`].
    ///
    /// # Errors
    ///
    /// Returns [`UnknownSession`] if the session is not active.
    pub fn change(
        &mut self,
        at: SimTime,
        session: SessionId,
        limit: RateLimit,
    ) -> Result<(), UnknownSession> {
        let Some(slot) = self.world.change_session(session, limit) else {
            return Err(UnknownSession(session));
        };
        self.engine.inject(
            at,
            Address(0),
            Envelope {
                target: Target::Source(slot),
                payload: Payload::Api(ApiCall::Change { limit }),
            },
        );
        Ok(())
    }

    /// Runs the simulation until no protocol event remains (quiescence).
    /// Subscribers receive [`Subscriber::on_quiescent`] when the queue
    /// drains.
    pub fn run_to_quiescence(&mut self) -> QuiescenceReport {
        let report = self.engine.run(&mut self.world);
        self.announce_quiescence(&report);
        report.into()
    }

    /// Runs the simulation until `horizon` (inclusive) or quiescence,
    /// whichever comes first.
    pub fn run_until(&mut self, horizon: SimTime) -> QuiescenceReport {
        let report = self.engine.run_until(&mut self.world, horizon);
        self.announce_quiescence(&report);
        report.into()
    }

    /// Tells the subscribers the event queue drained during a run (only when
    /// the run actually processed something — repeated runs on an already
    /// quiescent network stay silent, like the protocol itself).
    fn announce_quiescence(&mut self, report: &RunReport) {
        if report.quiescent && report.events_processed > 0 {
            self.world
                .subscribers
                .announce_quiescent(report.quiescent_at);
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// `true` when no protocol packet is pending or in flight.
    pub fn is_quiescent(&self) -> bool {
        self.engine.is_quiescent()
    }

    /// The identifiers of the currently active sessions.
    pub fn active_sessions(&self) -> impl Iterator<Item = SessionId> + '_ {
        self.world.arena.active_sessions()
    }

    /// The rates last notified through `API.Rate`, for active sessions.
    ///
    /// After [`BneckSimulation::run_to_quiescence`] in a steady state, this is
    /// the max-min fair allocation (Theorem 1 of the paper).
    pub fn allocation(&self) -> Allocation {
        self.world.arena.collect_rates(|slot| {
            let rate = self.world.notified[slot as usize];
            (!rate.is_nan()).then_some(rate)
        })
    }

    /// The rate currently assigned to a session at its source (B-Neck's
    /// transient rate before convergence), or `None` for unknown sessions.
    pub fn current_rate(&self, session: SessionId) -> Option<Rate> {
        let slot = self.world.arena.slot_of(session)?;
        Some(self.world.sources[slot as usize].current_rate())
    }

    /// The transient rates of all active sessions.
    pub fn current_rates(&self) -> Allocation {
        self.world
            .arena
            .collect_rates(|slot| Some(self.world.sources[slot as usize].current_rate()))
    }

    /// The active sessions as a [`SessionSet`] (paths plus requested limits),
    /// suitable for feeding the centralized oracle.
    ///
    /// The snapshot is built lazily and cached until the next
    /// join/leave/change, so repeated calls between membership changes (e.g.
    /// per-tick oracle cross-checks) are O(1) — callers get a shared handle to
    /// the same set.
    pub fn session_set(&self) -> Arc<SessionSet> {
        self.world.arena.session_set()
    }

    /// Cumulative packet counts by kind.
    pub fn packet_stats(&self) -> &PacketStats {
        &self.world.stats
    }

    /// A snapshot of the timestamped log of transmitted packets (empty unless
    /// [`BneckConfig::record_packet_log`] is enabled; the recorder is a
    /// [`Subscriber`] registered at construction).
    ///
    /// This clones the log; at paper scale prefer
    /// [`BneckSimulation::with_packet_log`], which borrows it in place.
    pub fn packet_log(&self) -> Vec<(SimTime, PacketKind)> {
        self.packet_log.as_ref().map(snapshot).unwrap_or_default()
    }

    /// Runs `f` over the recorded packet log without copying it (an empty
    /// slice when recording is off). The log is locked for the duration of
    /// `f`; aggregate in place, don't re-enter the simulation.
    pub fn with_packet_log<R>(&self, f: impl FnOnce(&[(SimTime, PacketKind)]) -> R) -> R {
        match &self.packet_log {
            Some(log) => f(&log.lock().expect("recorder buffer poisoned")),
            None => f(&[]),
        }
    }

    /// A snapshot of the timestamped `API.Rate` history (empty unless
    /// [`BneckConfig::record_rate_history`] is enabled; the recorder is a
    /// [`Subscriber`] registered at construction).
    ///
    /// This clones the history; prefer
    /// [`BneckSimulation::with_rate_history`] for large runs.
    pub fn rate_history(&self) -> Vec<(SimTime, RateNotification)> {
        self.rate_history.as_ref().map(snapshot).unwrap_or_default()
    }

    /// Runs `f` over the recorded `API.Rate` history without copying it (an
    /// empty slice when recording is off).
    pub fn with_rate_history<R>(&self, f: impl FnOnce(&[(SimTime, RateNotification)]) -> R) -> R {
        match &self.rate_history {
            Some(log) => f(&log.lock().expect("recorder buffer poisoned")),
            None => f(&[]),
        }
    }

    /// `true` when every router-link task satisfies the per-link stability
    /// conditions of Definition 2. Together with [`Self::is_quiescent`], this
    /// is the paper's notion of a stable network.
    pub fn links_stable(&self) -> bool {
        self.world
            .router_links
            .iter()
            .flatten()
            .all(|rl| rl.is_stable())
    }

    /// The `RouterLink` task of a link, if any session ever crossed it.
    ///
    /// Mainly useful for tests and debugging tools that want to inspect the
    /// per-link protocol state (`R_e`, `F_e`, `μ`, `λ`, `B_e`).
    pub fn link_task(&self, link: LinkId) -> Option<&RouterLink> {
        self.world.router_links.get(link.index())?.as_ref()
    }

    /// The `SourceNode` task of a session, if the session ever joined.
    pub fn source_task(&self, session: SessionId) -> Option<&SourceNode> {
        let slot = self.world.arena.slot_of(session)?;
        self.world.sources.get(slot as usize)
    }

    /// The path a session was routed along, if the session ever joined.
    pub fn session_path(&self, session: SessionId) -> Option<&Path> {
        self.world.arena.path_of(session)
    }

    /// Injects channel faults (drops, duplicates, reorder jitter) into every
    /// link of this simulation, per `plan`. Deterministic: the same
    /// `(plan, workload)` always produces the same run. Protocol timers and
    /// API calls are never perturbed — only link traffic is.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.engine.set_fault_plan(plan);
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.engine.fault_plan()
    }

    /// Total faults injected so far, summed over all channels.
    pub fn fault_totals(&self) -> FaultCounters {
        self.engine.fault_totals()
    }

    /// Per-channel injected-fault counters (channels with at least one fault).
    pub fn fault_breakdown(&self) -> Vec<(ChannelId, FaultCounters)> {
        self.engine.fault_breakdown()
    }

    /// The recovery layer's work counters, or `None` in paper mode
    /// ([`BneckConfig::recovery`] unset).
    pub fn recovery_stats(&self) -> Option<RecoveryStats> {
        self.world.recovery.as_ref().map(|r| r.stats)
    }

    /// Sent recovery frames not yet acknowledged (0 in paper mode, and 0
    /// again once a recovered run reaches quiescence).
    pub fn unacked_frames(&self) -> usize {
        self.world.recovery.as_ref().map_or(0, |r| r.unacked.len())
    }

    /// Processes the next event group like [`Simulation::step`], but lets
    /// `cursor` choose which same-instant event is delivered first (see
    /// [`bneck_sim::explore_schedules`]). Returns `false` once the queue is
    /// empty.
    pub fn step_explored(&mut self, cursor: &mut ScheduleCursor) -> bool {
        self.engine.step_explored(&mut self.world, cursor)
    }
}

impl<'a> Simulation for BneckSimulation<'a> {
    fn now(&self) -> SimTime {
        self.engine.now()
    }

    fn is_quiescent(&self) -> bool {
        self.engine.is_quiescent()
    }

    fn pending_events(&self) -> usize {
        self.engine.pending_events()
    }

    fn step(&mut self) -> bool {
        self.engine.step(&mut self.world)
    }

    fn run_to(&mut self, horizon: SimTime) -> RunReport {
        let report = self.engine.run_until(&mut self.world, horizon);
        self.announce_quiescence(&report);
        report
    }

    fn events_processed(&self) -> u64 {
        self.engine.total_events_processed()
    }

    fn messages_sent(&self) -> u64 {
        self.engine.total_messages_sent()
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use bneck_maxmin::prelude::*;
    use bneck_net::prelude::*;

    fn mbps(x: f64) -> Capacity {
        Capacity::from_mbps(x)
    }
    fn us(x: u64) -> Delay {
        Delay::from_micros(x)
    }

    fn oracle(sim: &BneckSimulation<'_>) -> Allocation {
        let sessions = sim.session_set();
        CentralizedBneck::new(sim.network(), &sessions).solve()
    }

    fn assert_matches_oracle(sim: &BneckSimulation<'_>) {
        let sessions = sim.session_set();
        let expected = CentralizedBneck::new(sim.network(), &sessions).solve();
        let got = sim.allocation();
        let tol = Tolerance::new(1e-6, 1.0);
        if let Err(violations) = compare_allocations(&sessions, &got, &expected, tol) {
            panic!(
                "distributed allocation disagrees with the centralized oracle: {:?}\n got: {:?}\n expected: {:?}",
                violations, got, expected
            );
        }
    }

    #[test]
    fn single_session_gets_the_path_minimum() {
        let net = synthetic::line(3, mbps(100.0), mbps(40.0), us(1));
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut sim = BneckSimulation::new(&net, BneckConfig::default());
        sim.join(
            SimTime::ZERO,
            SessionId(0),
            hosts[0],
            hosts[2],
            RateLimit::unlimited(),
        )
        .unwrap();
        let report = sim.run_to_quiescence();
        assert!(report.quiescent);
        assert!(report.packets_sent > 0);
        let rate = sim.allocation().rate(SessionId(0)).unwrap();
        assert!((rate - 40e6).abs() < 1.0);
        assert_matches_oracle(&sim);
        assert!(sim.links_stable());
    }

    #[test]
    fn two_sessions_share_a_bottleneck() {
        let net = synthetic::dumbbell(2, mbps(100.0), mbps(60.0), us(1));
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut sim = BneckSimulation::new(&net, BneckConfig::default());
        for i in 0..2u64 {
            sim.join(
                SimTime::ZERO,
                SessionId(i),
                hosts[2 * i as usize],
                hosts[2 * i as usize + 1],
                RateLimit::unlimited(),
            )
            .unwrap();
        }
        sim.run_to_quiescence();
        assert_matches_oracle(&sim);
        let alloc = sim.allocation();
        assert!((alloc.rate(SessionId(0)).unwrap() - 30e6).abs() < 1.0);
        assert!((alloc.rate(SessionId(1)).unwrap() - 30e6).abs() < 1.0);
    }

    #[test]
    fn rate_limited_session_releases_bandwidth() {
        let net = synthetic::dumbbell(3, mbps(100.0), mbps(90.0), us(1));
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut sim = BneckSimulation::new(&net, BneckConfig::default());
        sim.join(
            SimTime::ZERO,
            SessionId(0),
            hosts[0],
            hosts[1],
            RateLimit::finite(10e6),
        )
        .unwrap();
        for i in 1..3u64 {
            sim.join(
                SimTime::ZERO,
                SessionId(i),
                hosts[2 * i as usize],
                hosts[2 * i as usize + 1],
                RateLimit::unlimited(),
            )
            .unwrap();
        }
        sim.run_to_quiescence();
        assert_matches_oracle(&sim);
        let alloc = sim.allocation();
        assert!((alloc.rate(SessionId(0)).unwrap() - 10e6).abs() < 1.0);
        assert!((alloc.rate(SessionId(1)).unwrap() - 40e6).abs() < 1.0);
    }

    #[test]
    fn staggered_joins_reconverge() {
        let net = synthetic::dumbbell(4, mbps(100.0), mbps(80.0), us(1));
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut sim = BneckSimulation::new(&net, BneckConfig::default());
        for i in 0..4u64 {
            sim.join(
                SimTime::from_millis(i),
                SessionId(i),
                hosts[2 * i as usize],
                hosts[2 * i as usize + 1],
                RateLimit::unlimited(),
            )
            .unwrap();
        }
        sim.run_to_quiescence();
        assert_matches_oracle(&sim);
        let alloc = sim.allocation();
        for i in 0..4u64 {
            assert!((alloc.rate(SessionId(i)).unwrap() - 20e6).abs() < 1.0);
        }
    }

    #[test]
    fn leave_reactivates_and_grows_the_survivors() {
        let net = synthetic::dumbbell(3, mbps(100.0), mbps(60.0), us(1));
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut sim = BneckSimulation::new(&net, BneckConfig::default());
        for i in 0..3u64 {
            sim.join(
                SimTime::ZERO,
                SessionId(i),
                hosts[2 * i as usize],
                hosts[2 * i as usize + 1],
                RateLimit::unlimited(),
            )
            .unwrap();
        }
        sim.run_to_quiescence();
        assert!((sim.allocation().rate(SessionId(0)).unwrap() - 20e6).abs() < 1.0);
        // One session leaves; the other two should re-converge to 30 Mbps.
        let t = sim.now() + bneck_net::Delay::from_millis(1);
        sim.leave(t, SessionId(0)).unwrap();
        let report = sim.run_to_quiescence();
        assert!(report.quiescent);
        assert_matches_oracle(&sim);
        let alloc = sim.allocation();
        assert!(alloc.rate(SessionId(0)).is_none());
        assert!((alloc.rate(SessionId(1)).unwrap() - 30e6).abs() < 1.0);
        assert!((alloc.rate(SessionId(2)).unwrap() - 30e6).abs() < 1.0);
    }

    #[test]
    fn change_reduces_and_then_restores_a_rate() {
        let net = synthetic::dumbbell(2, mbps(100.0), mbps(80.0), us(1));
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut sim = BneckSimulation::new(&net, BneckConfig::default());
        for i in 0..2u64 {
            sim.join(
                SimTime::ZERO,
                SessionId(i),
                hosts[2 * i as usize],
                hosts[2 * i as usize + 1],
                RateLimit::unlimited(),
            )
            .unwrap();
        }
        sim.run_to_quiescence();
        // Session 0 caps itself at 10 Mbps: session 1 should grow to 70 Mbps.
        let t1 = sim.now() + bneck_net::Delay::from_millis(1);
        sim.change(t1, SessionId(0), RateLimit::finite(10e6))
            .unwrap();
        sim.run_to_quiescence();
        assert_matches_oracle(&sim);
        let alloc = sim.allocation();
        assert!((alloc.rate(SessionId(0)).unwrap() - 10e6).abs() < 1.0);
        assert!((alloc.rate(SessionId(1)).unwrap() - 70e6).abs() < 1.0);
        // Session 0 lifts its cap again: back to a 40/40 split.
        let t2 = sim.now() + bneck_net::Delay::from_millis(1);
        sim.change(t2, SessionId(0), RateLimit::unlimited())
            .unwrap();
        sim.run_to_quiescence();
        assert_matches_oracle(&sim);
        let alloc = sim.allocation();
        assert!((alloc.rate(SessionId(0)).unwrap() - 40e6).abs() < 1.0);
        assert!((alloc.rate(SessionId(1)).unwrap() - 40e6).abs() < 1.0);
        let _ = oracle(&sim);
    }

    #[test]
    fn dependent_bottlenecks_parking_lot() {
        // One long session across every segment plus shorter sessions of
        // decreasing length, all from distinct source hosts (the paper's
        // one-session-per-source-host model): the classic dependent-bottleneck
        // chain.
        let net = synthetic::parking_lot(3, mbps(100.0), mbps(60.0), us(1));
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut sim = BneckSimulation::new(&net, BneckConfig::default());
        for i in 0..3u64 {
            sim.join(
                SimTime::ZERO,
                SessionId(i),
                hosts[i as usize],
                hosts[3],
                RateLimit::unlimited(),
            )
            .unwrap();
        }
        sim.run_to_quiescence();
        assert_matches_oracle(&sim);
        // The last segment is shared by all three sessions.
        let alloc = sim.allocation();
        for i in 0..3u64 {
            assert!((alloc.rate(SessionId(i)).unwrap() - 20e6).abs() < 1.0);
        }
    }

    #[test]
    fn join_errors_are_reported() {
        let net = synthetic::dumbbell(2, mbps(100.0), mbps(60.0), us(1));
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut sim = BneckSimulation::new(&net, BneckConfig::default());
        sim.join(
            SimTime::ZERO,
            SessionId(0),
            hosts[0],
            hosts[1],
            RateLimit::unlimited(),
        )
        .unwrap();
        assert_eq!(
            sim.join(
                SimTime::ZERO,
                SessionId(0),
                hosts[2],
                hosts[3],
                RateLimit::unlimited()
            ),
            Err(JoinError::DuplicateSession(SessionId(0)))
        );
        assert_eq!(
            sim.join(
                SimTime::ZERO,
                SessionId(1),
                hosts[0],
                hosts[0],
                RateLimit::unlimited()
            ),
            Err(JoinError::NoPath {
                source: hosts[0],
                destination: hosts[0]
            })
        );
        assert_eq!(
            sim.leave(SimTime::ZERO, SessionId(9)),
            Err(UnknownSession(SessionId(9)))
        );
        assert_eq!(
            sim.change(SimTime::ZERO, SessionId(9), RateLimit::unlimited()),
            Err(UnknownSession(SessionId(9)))
        );
    }

    #[test]
    fn leave_and_change_on_a_departing_session_return_unknown_session() {
        // `leave` deactivates the session immediately; its `Left` marker is
        // queued but unprocessed. In that window a second leave or a change
        // must return the typed `UnknownSession` — the same contract the
        // baseline harness keeps — and the queued departure must still be
        // delivered (the stale-incarnation `resolve_hop` path drops whatever
        // in-flight packets the dead incarnation still owns).
        let net = synthetic::dumbbell(2, mbps(100.0), mbps(60.0), us(1));
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut sim = BneckSimulation::new(&net, BneckConfig::default());
        for i in 0..2u64 {
            sim.join(
                SimTime::ZERO,
                SessionId(i),
                hosts[2 * i as usize],
                hosts[2 * i as usize + 1],
                RateLimit::unlimited(),
            )
            .unwrap();
        }
        sim.run_to_quiescence();
        let t = sim.now();
        sim.leave(t, SessionId(0)).unwrap();
        assert_eq!(
            sim.leave(t, SessionId(0)),
            Err(UnknownSession(SessionId(0)))
        );
        assert_eq!(
            sim.change(t, SessionId(0), RateLimit::finite(1e6)),
            Err(UnknownSession(SessionId(0)))
        );
        let report = sim.run_to_quiescence();
        assert!(report.quiescent);
        assert_eq!(sim.active_sessions().count(), 1);
        assert_matches_oracle(&sim);
    }

    #[test]
    fn packet_log_and_rate_history_are_recorded_when_enabled() {
        let net = synthetic::dumbbell(2, mbps(100.0), mbps(60.0), us(1));
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let config = BneckConfig::default().with_packet_log().with_rate_history();
        let mut sim = BneckSimulation::new(&net, config);
        for i in 0..2u64 {
            sim.join(
                SimTime::ZERO,
                SessionId(i),
                hosts[2 * i as usize],
                hosts[2 * i as usize + 1],
                RateLimit::unlimited(),
            )
            .unwrap();
        }
        sim.run_to_quiescence();
        assert_eq!(sim.packet_log().len() as u64, sim.packet_stats().total());
        assert!(!sim.rate_history().is_empty());
        assert!(sim
            .rate_history()
            .iter()
            .any(|(_, n)| n.session == SessionId(1)));
        // Every packet kind count in the log matches the aggregate stats.
        let mut recount = PacketStats::new();
        for (_, kind) in sim.packet_log() {
            recount.record(kind);
        }
        assert_eq!(&recount, sim.packet_stats());
    }

    #[test]
    fn rate_events_stream_tags_causes_and_goes_silent_at_quiescence() {
        let net = synthetic::dumbbell(2, mbps(100.0), mbps(60.0), us(1));
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut sim = BneckSimulation::new(&net, BneckConfig::default());
        let events = sim.rate_events();
        let handle = sim
            .join(
                SimTime::ZERO,
                SessionId(0),
                hosts[0],
                hosts[1],
                RateLimit::unlimited(),
            )
            .unwrap();
        assert_eq!(handle.id(), SessionId(0));
        assert_eq!(SessionId::from(handle), SessionId(0));
        sim.join(
            SimTime::ZERO,
            SessionId(1),
            hosts[2],
            hosts[3],
            RateLimit::unlimited(),
        )
        .unwrap();
        sim.run_to_quiescence();

        let converged = events.drain();
        assert!(!converged.is_empty());
        // The first event of each session is its post-join notification.
        let first_of_0 = converged
            .iter()
            .find(|e| e.session == SessionId(0))
            .unwrap();
        assert_eq!(first_of_0.cause, RateCause::Joined);
        // Final rates appear in the stream.
        assert!(converged
            .iter()
            .any(|e| e.session == SessionId(0) && (e.rate - 30e6).abs() < 1.0));
        // Quiescent network: the stream is silent.
        sim.run_to_quiescence();
        assert!(events.is_empty(), "no events after quiescence");

        // A change re-notifies with the Changed cause...
        let t = sim.now() + bneck_net::Delay::from_millis(1);
        sim.change(t, SessionId(0), RateLimit::finite(10e6))
            .unwrap();
        sim.run_to_quiescence();
        let after_change = events.drain();
        let own = after_change
            .iter()
            .find(|e| e.session == SessionId(0))
            .unwrap();
        assert_eq!(own.cause, RateCause::Changed);
        assert!((own.rate - 10e6).abs() < 1.0);
        // ...and the neighbour re-converges.
        assert!(after_change
            .iter()
            .any(|e| e.session == SessionId(1) && e.cause == RateCause::Converged));

        // A leave emits a final Left marker carrying the last used rate.
        let t = sim.now() + bneck_net::Delay::from_millis(1);
        sim.leave(t, SessionId(0)).unwrap();
        sim.run_to_quiescence();
        let after_leave = events.drain();
        let left = after_leave
            .iter()
            .find(|e| e.cause == RateCause::Left)
            .unwrap();
        assert_eq!(left.session, SessionId(0));
        assert!((left.rate - 10e6).abs() < 1.0);
    }

    #[test]
    fn change_cause_is_tagged_when_the_change_is_processed_not_scheduled() {
        // Two sessions converge; then a third join (at t+1ms) and a change of
        // session 0 (at t+10ms) are both scheduled *before* running — the
        // order Schedule::apply produces for churn workloads. The
        // join-triggered re-notification of session 0 fires long before the
        // change takes effect and must be tagged Converged; only the
        // notification after the change processes is Changed.
        let net = synthetic::dumbbell(3, mbps(100.0), mbps(90.0), us(1));
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut sim = BneckSimulation::new(&net, BneckConfig::default());
        for i in 0..2u64 {
            sim.join(
                SimTime::ZERO,
                SessionId(i),
                hosts[2 * i as usize],
                hosts[2 * i as usize + 1],
                RateLimit::unlimited(),
            )
            .unwrap();
        }
        sim.run_to_quiescence();
        let events = sim.rate_events();
        let t0 = sim.now();
        sim.join(
            t0 + bneck_net::Delay::from_millis(1),
            SessionId(2),
            hosts[4],
            hosts[5],
            RateLimit::unlimited(),
        )
        .unwrap();
        sim.change(
            t0 + bneck_net::Delay::from_millis(10),
            SessionId(0),
            RateLimit::finite(10e6),
        )
        .unwrap();
        sim.run_to_quiescence();
        let causes: Vec<RateCause> = events
            .drain()
            .into_iter()
            .filter(|e| e.session == SessionId(0))
            .map(|e| e.cause)
            .collect();
        assert_eq!(
            causes.first(),
            Some(&RateCause::Converged),
            "the join-triggered re-notification precedes the change"
        );
        assert!(
            causes.contains(&RateCause::Changed),
            "the post-change notification carries Changed"
        );
        assert_eq!(
            causes.last(),
            Some(&RateCause::Changed),
            "nothing re-notifies session 0 after its own change settles"
        );
    }

    #[test]
    fn closure_subscribers_and_quiescence_callbacks_fire() {
        use std::sync::{Arc, Mutex};
        let net = synthetic::dumbbell(2, mbps(100.0), mbps(60.0), us(1));
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut sim = BneckSimulation::new(&net, BneckConfig::default());
        let seen: Arc<Mutex<Vec<(SessionId, RateCause)>>> = Arc::default();
        let sink = Arc::clone(&seen);
        sim.subscribe(move |e: &RateEvent| {
            sink.lock().unwrap().push((e.session, e.cause));
        });

        struct QuiescenceProbe(Arc<Mutex<Vec<SimTime>>>);
        impl Subscriber for QuiescenceProbe {
            fn on_rate(&mut self, _event: &RateEvent) {}
            fn on_quiescent(&mut self, at: SimTime) {
                self.0.lock().unwrap().push(at);
            }
        }
        let quiet: Arc<Mutex<Vec<SimTime>>> = Arc::default();
        sim.subscribe(QuiescenceProbe(Arc::clone(&quiet)));

        for i in 0..2u64 {
            sim.join(
                SimTime::ZERO,
                SessionId(i),
                hosts[2 * i as usize],
                hosts[2 * i as usize + 1],
                RateLimit::unlimited(),
            )
            .unwrap();
        }
        let report = sim.run_to_quiescence();
        assert!(seen
            .lock()
            .unwrap()
            .iter()
            .any(|(s, c)| *s == SessionId(1) && *c == RateCause::Joined));
        assert_eq!(quiet.lock().unwrap().as_slice(), &[report.quiescent_at]);
        // An idle re-run announces nothing new.
        sim.run_to_quiescence();
        assert_eq!(quiet.lock().unwrap().len(), 1);
    }

    #[test]
    fn quiescence_means_no_further_traffic() {
        let net = synthetic::dumbbell(3, mbps(100.0), mbps(60.0), us(1));
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut sim = BneckSimulation::new(&net, BneckConfig::default());
        for i in 0..3u64 {
            sim.join(
                SimTime::ZERO,
                SessionId(i),
                hosts[2 * i as usize],
                hosts[2 * i as usize + 1],
                RateLimit::unlimited(),
            )
            .unwrap();
        }
        sim.run_to_quiescence();
        let packets_after_convergence = sim.packet_stats().total();
        // Running further without changes generates no traffic at all.
        let report = sim.run_to_quiescence();
        assert_eq!(report.events_processed, 0);
        assert_eq!(sim.packet_stats().total(), packets_after_convergence);
        assert!(sim.is_quiescent());
    }

    #[test]
    fn session_set_snapshot_is_cached_between_membership_changes() {
        let net = synthetic::dumbbell(2, mbps(100.0), mbps(60.0), us(1));
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut sim = BneckSimulation::new(&net, BneckConfig::default());
        for i in 0..2u64 {
            sim.join(
                SimTime::ZERO,
                SessionId(i),
                hosts[2 * i as usize],
                hosts[2 * i as usize + 1],
                RateLimit::unlimited(),
            )
            .unwrap();
        }
        sim.run_to_quiescence();
        let a = sim.session_set();
        let b = sim.session_set();
        assert!(Arc::ptr_eq(&a, &b), "repeated snapshots share one set");
        assert_eq!(a.len(), 2);
        // A membership change invalidates the cache.
        let t = sim.now() + bneck_net::Delay::from_millis(1);
        sim.leave(t, SessionId(0)).unwrap();
        let c = sim.session_set();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn stray_packets_from_a_previous_incarnation_are_dropped() {
        // Session 0 joins along a 5-link path; mid-convergence (packets in
        // flight deep in the path) it leaves and immediately rejoins with the
        // same identifier along a 2-link path. The stale envelopes still
        // carry hop indices of the old path; they must be dropped (or
        // re-resolved), not indexed into the new, shorter path.
        let mut b = NetworkBuilder::new();
        let r0 = b.add_router("r0");
        let r1 = b.add_router("r1");
        let r2 = b.add_router("r2");
        let r3 = b.add_router("r3");
        b.connect(r0, r1, mbps(100.0), us(1));
        b.connect(r1, r2, mbps(100.0), us(1));
        b.connect(r2, r3, mbps(100.0), us(1));
        let h0 = b.add_host("h0", r0, mbps(100.0), us(1));
        let h1 = b.add_host("h1", r3, mbps(50.0), us(1));
        let h2 = b.add_host("h2", r0, mbps(80.0), us(1));
        let net = b.build();
        let mut sim = BneckSimulation::new(&net, BneckConfig::default());
        // Try a range of interruption points so packets are caught in flight
        // at various hops of the long path.
        for horizon_us in 1..12u64 {
            let start = sim.now() + bneck_net::Delay::from_millis(1);
            sim.join(start, SessionId(0), h0, h1, RateLimit::unlimited())
                .unwrap();
            let report = sim.run_until(start + bneck_net::Delay::from_micros(horizon_us));
            let t = sim.now() + bneck_net::Delay::from_nanos(1);
            sim.leave(t, SessionId(0)).unwrap();
            if !report.quiescent {
                // Rejoin immediately along the short path while the old
                // incarnation's packets are still in flight.
                sim.join(t, SessionId(0), h0, h2, RateLimit::unlimited())
                    .unwrap();
            }
            sim.run_to_quiescence();
            assert_matches_oracle(&sim);
            if sim.active_sessions().next().is_some() {
                let t = sim.now() + bneck_net::Delay::from_millis(1);
                sim.leave(t, SessionId(0)).unwrap();
                sim.run_to_quiescence();
            }
        }
    }

    #[test]
    fn session_slot_is_reused_when_an_identifier_rejoins() {
        let net = synthetic::dumbbell(2, mbps(100.0), mbps(60.0), us(1));
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut sim = BneckSimulation::new(&net, BneckConfig::default());
        sim.join(
            SimTime::ZERO,
            SessionId(0),
            hosts[0],
            hosts[1],
            RateLimit::unlimited(),
        )
        .unwrap();
        sim.run_to_quiescence();
        let t = sim.now() + bneck_net::Delay::from_millis(1);
        sim.leave(t, SessionId(0)).unwrap();
        sim.run_to_quiescence();
        // Rejoin with the same identifier along a different path.
        let t = sim.now() + bneck_net::Delay::from_millis(1);
        sim.join(t, SessionId(0), hosts[2], hosts[3], RateLimit::unlimited())
            .unwrap();
        sim.run_to_quiescence();
        assert_matches_oracle(&sim);
        assert_eq!(sim.session_path(SessionId(0)).unwrap().source(), hosts[2]);
        assert!((sim.allocation().rate(SessionId(0)).unwrap() - 60e6).abs() < 1.0);
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;
    use bneck_net::prelude::*;

    #[test]
    fn a_built_simulation_is_a_send_unit_and_runs_through_the_trait() {
        fn assert_send<T: Send>(_: &T) {}
        let net = synthetic::dumbbell(
            2,
            Capacity::from_mbps(100.0),
            Capacity::from_mbps(60.0),
            Delay::from_micros(1),
        );
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut sim = BneckSimulation::new(&net, BneckConfig::default());
        for i in 0..2u64 {
            sim.join(
                SimTime::ZERO,
                SessionId(i),
                hosts[2 * i as usize],
                hosts[2 * i as usize + 1],
                RateLimit::unlimited(),
            )
            .unwrap();
        }
        assert_send(&sim);
        // Stepping through the unified trait is equivalent to running.
        let dynamic: &mut dyn Simulation = &mut sim;
        let mut steps = 0u64;
        while dynamic.step() {
            steps += 1;
        }
        assert!(dynamic.is_quiescent());
        assert_eq!(dynamic.events_processed(), steps);
        assert_eq!(dynamic.pending_events(), 0);
        let rates = sim.allocation();
        assert!((rates.rate(SessionId(0)).unwrap() - 30e6).abs() < 1.0);
        assert!((rates.rate(SessionId(1)).unwrap() - 30e6).abs() < 1.0);
    }
}

#[cfg(test)]
mod recovery_tests {
    use super::*;
    use bneck_maxmin::prelude::*;
    use bneck_net::prelude::*;

    fn assert_matches_oracle(sim: &BneckSimulation<'_>) {
        let sessions = sim.session_set();
        let expected = CentralizedBneck::new(sim.network(), &sessions).solve();
        let got = sim.allocation();
        let tol = Tolerance::new(1e-6, 1.0);
        if let Err(violations) = compare_allocations(&sessions, &got, &expected, tol) {
            panic!(
                "distributed allocation disagrees with the centralized oracle: {:?}\n got: {:?}\n expected: {:?}",
                violations, got, expected
            );
        }
    }

    fn hostile_plan(seed: u64) -> FaultPlan {
        FaultPlan::new(seed, 0.05, 0.02, 0.25, 4)
    }

    fn dumbbell_sim(net: &Network, config: BneckConfig, sessions: u64) -> BneckSimulation<'_> {
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut sim = BneckSimulation::new(net, config);
        for i in 0..sessions {
            sim.join(
                SimTime::ZERO,
                SessionId(i),
                hosts[2 * i as usize],
                hosts[2 * i as usize + 1],
                RateLimit::unlimited(),
            )
            .unwrap();
        }
        sim
    }

    #[test]
    fn recovery_survives_drops_duplicates_and_reorders() {
        let net = synthetic::dumbbell(
            4,
            Capacity::from_mbps(100.0),
            Capacity::from_mbps(60.0),
            Delay::from_micros(1),
        );
        let config = BneckConfig::default().with_recovery(Delay::from_micros(200));
        let mut sim = dumbbell_sim(&net, config, 4);
        sim.set_fault_plan(hostile_plan(7));
        let report = sim.run_to_quiescence();
        assert!(report.quiescent);
        let totals = sim.fault_totals();
        assert!(
            totals.total() > 0,
            "the plan injected no faults: {totals:?}"
        );
        let stats = sim.recovery_stats().unwrap();
        assert!(stats.frames_sent > 0);
        assert!(stats.retransmits > 0, "drops must trigger retransmission");
        assert_eq!(
            sim.unacked_frames(),
            0,
            "quiescence implies every frame acked"
        );
        assert_matches_oracle(&sim);
        assert!(sim.links_stable());
    }

    #[test]
    fn recovery_under_churn_stays_oracle_exact() {
        let net = synthetic::dumbbell(
            3,
            Capacity::from_mbps(100.0),
            Capacity::from_mbps(60.0),
            Delay::from_micros(1),
        );
        let config = BneckConfig::default().with_recovery(Delay::from_micros(200));
        let mut sim = dumbbell_sim(&net, config, 3);
        sim.set_fault_plan(hostile_plan(11));
        sim.run_to_quiescence();
        assert_matches_oracle(&sim);
        sim.leave(sim.now(), SessionId(1)).unwrap();
        sim.run_to_quiescence();
        assert_matches_oracle(&sim);
        sim.change(sim.now(), SessionId(2), RateLimit::finite(5e6))
            .unwrap();
        let report = sim.run_to_quiescence();
        assert!(report.quiescent);
        assert_eq!(sim.unacked_frames(), 0);
        assert_matches_oracle(&sim);
    }

    #[test]
    fn pristine_channels_with_recovery_pay_only_the_framing() {
        let net = synthetic::dumbbell(
            2,
            Capacity::from_mbps(100.0),
            Capacity::from_mbps(60.0),
            Delay::from_micros(1),
        );
        let config = BneckConfig::default().with_recovery(Delay::from_micros(500));
        let mut sim = dumbbell_sim(&net, config, 2);
        let report = sim.run_to_quiescence();
        assert!(report.quiescent);
        let stats = sim.recovery_stats().unwrap();
        assert_eq!(stats.retransmits, 0, "reliable channels never time out");
        assert_eq!(stats.duplicates_dropped, 0);
        assert_eq!(stats.reordered_buffered, 0);
        assert_eq!(stats.acks_sent, stats.frames_sent);
        assert_eq!(sim.unacked_frames(), 0);
        assert_matches_oracle(&sim);
    }

    #[test]
    fn faults_without_recovery_corrupt_the_run_detectably() {
        // Recovery off: heavy loss must not go unnoticed — the run either
        // fails the oracle comparison or visibly under-notifies. This is the
        // honesty property the fault-sweep reports build on.
        let net = synthetic::dumbbell(
            4,
            Capacity::from_mbps(100.0),
            Capacity::from_mbps(60.0),
            Delay::from_micros(1),
        );
        let mut sim = dumbbell_sim(&net, BneckConfig::default(), 4);
        sim.set_fault_plan(FaultPlan::new(3, 0.3, 0.0, 0.0, 1));
        let report = sim.run_to_quiescence();
        // Without timers the queue always drains.
        assert!(report.quiescent);
        assert!(sim.fault_totals().dropped > 0);
        assert!(sim.recovery_stats().is_none());
        let sessions = sim.session_set();
        let expected = CentralizedBneck::new(sim.network(), &sessions).solve();
        let got = sim.allocation();
        let tol = Tolerance::new(1e-6, 1.0);
        assert!(
            compare_allocations(&sessions, &got, &expected, tol).is_err(),
            "30% loss converged to exact rates — pick a different seed for this test"
        );
    }

    #[test]
    fn paper_mode_reports_no_recovery_state() {
        let net = synthetic::dumbbell(
            2,
            Capacity::from_mbps(100.0),
            Capacity::from_mbps(60.0),
            Delay::from_micros(1),
        );
        let mut sim = dumbbell_sim(&net, BneckConfig::default(), 2);
        sim.run_to_quiescence();
        assert!(sim.recovery_stats().is_none());
        assert_eq!(sim.unacked_frames(), 0);
        assert_eq!(sim.fault_totals().total(), 0);
        assert!(sim.fault_plan().is_none());
        assert_matches_oracle(&sim);
    }
}
