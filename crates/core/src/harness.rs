//! The simulation harness: runs the B-Neck tasks over a network on the
//! discrete-event engine.
//!
//! The harness owns one [`RouterLink`] task per directed link (created lazily
//! when the first session crosses the link), one [`SourceNode`] and one
//! [`DestinationNode`] per session, and forwards the packets produced by the
//! task handlers hop by hop over the network's links, each modelled as a
//! simulator channel with the link's bandwidth and propagation delay.
//!
//! Quiescence detection is inherited from the simulator: the network is
//! quiescent exactly when no protocol packet is in flight or pending, which is
//! when [`BneckSimulation::run_to_quiescence`] returns.

use crate::config::BneckConfig;
use crate::destination::DestinationNode;
use crate::packet::{Packet, PacketKind};
use crate::router_link::RouterLink;
use crate::source::SourceNode;
use crate::stats::PacketStats;
use crate::task::{Action, RateNotification};
use bneck_maxmin::{Allocation, Rate, RateLimit, Session, SessionId, SessionSet};
use bneck_net::{LinkId, Network, NodeId, Path, Router};
use bneck_sim::{Address, ChannelId, ChannelSpec, Context, Engine, SimTime, World};
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// The session API primitives, delivered to a session's source task.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ApiCall {
    Join { limit: RateLimit },
    Leave,
    Change { limit: RateLimit },
}

/// Where a simulated message is headed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Target {
    Source(SessionId),
    Link(LinkId),
    Destination(SessionId),
}

/// A simulated message: an API call or a protocol packet, with its target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Envelope {
    target: Target,
    payload: Payload,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Payload {
    Api(ApiCall),
    Protocol(Packet),
}

/// Error returned when a session cannot be created or manipulated.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum JoinError {
    /// No path exists between the requested source and destination hosts.
    NoPath {
        /// The requested source host.
        source: NodeId,
        /// The requested destination host.
        destination: NodeId,
    },
    /// A session with the same identifier is already active.
    DuplicateSession(SessionId),
    /// The session is not active.
    UnknownSession(SessionId),
    /// Another active session already starts at the requested source host.
    ///
    /// The paper's system model assumes every host is the source of at most
    /// one session (Section II: "this limitation is just for the sake of
    /// simplicity"); the `SourceNode` task owns the host's access link, so two
    /// sessions sharing a source host would silently over-commit that link.
    SourceHostBusy {
        /// The contended source host.
        host: NodeId,
        /// The session already using it.
        existing: SessionId,
    },
}

impl fmt::Display for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinError::NoPath {
                source,
                destination,
            } => write!(f, "no path from {source} to {destination}"),
            JoinError::DuplicateSession(s) => write!(f, "session {s} is already active"),
            JoinError::UnknownSession(s) => write!(f, "session {s} is not active"),
            JoinError::SourceHostBusy { host, existing } => write!(
                f,
                "host {host} is already the source of active session {existing}"
            ),
        }
    }
}

impl std::error::Error for JoinError {}

/// Summary of a run to quiescence.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct QuiescenceReport {
    /// Whether the run actually reached quiescence (always `true` for
    /// [`BneckSimulation::run_to_quiescence`], may be `false` for horizon
    /// limited runs).
    pub quiescent: bool,
    /// Time of the last processed protocol event.
    pub quiescent_at: SimTime,
    /// Events processed during the run.
    pub events_processed: u64,
    /// Packets transmitted over links during the run.
    pub packets_sent: u64,
}

/// The simulation world: all protocol tasks plus routing and accounting state.
struct BneckWorld<'a> {
    network: &'a Network,
    config: BneckConfig,
    /// Channel of each directed link, indexed by `LinkId::index()`.
    channels: Vec<ChannelId>,
    router_links: HashMap<LinkId, RouterLink>,
    sources: HashMap<SessionId, SourceNode>,
    destinations: HashMap<SessionId, DestinationNode>,
    paths: HashMap<SessionId, Path>,
    stats: PacketStats,
    packet_log: Vec<(SimTime, PacketKind)>,
    rate_history: Vec<(SimTime, RateNotification)>,
    notified_rates: BTreeMap<SessionId, Rate>,
}

impl<'a> BneckWorld<'a> {
    fn dispatch(&mut self, ctx: &mut Context<'_, Envelope>, envelope: Envelope) {
        let actions = match (envelope.target, envelope.payload) {
            (Target::Source(s), Payload::Api(call)) => {
                let Some(source) = self.sources.get_mut(&s) else {
                    return;
                };
                match call {
                    ApiCall::Join { limit } => source.api_join(limit),
                    ApiCall::Leave => source.api_leave(),
                    ApiCall::Change { limit } => source.api_change(limit),
                }
            }
            (Target::Source(s), Payload::Protocol(packet)) => match self.sources.get_mut(&s) {
                Some(source) => source.handle(packet),
                None => Vec::new(),
            },
            (Target::Link(e), Payload::Protocol(packet)) => {
                let capacity = self.network.link(e).capacity().as_bps();
                let tolerance = self.config.tolerance;
                let link = self
                    .router_links
                    .entry(e)
                    .or_insert_with(|| RouterLink::new(e, capacity, tolerance));
                link.handle(packet)
            }
            (Target::Destination(s), Payload::Protocol(packet)) => {
                match self.destinations.get(&s) {
                    Some(destination) => destination.handle(packet),
                    None => Vec::new(),
                }
            }
            // API calls are only ever addressed to sources.
            (_, Payload::Api(_)) => Vec::new(),
        };
        for action in actions {
            self.perform(ctx, envelope.target, action);
        }
    }

    /// Turns a task action into a packet transmission (or a rate notification
    /// record), routing it to the next hop of the session's path.
    fn perform(&mut self, ctx: &mut Context<'_, Envelope>, origin: Target, action: Action) {
        match action {
            Action::NotifyRate { session, rate } => {
                self.notified_rates.insert(session, rate);
                if self.config.record_rate_history {
                    self.rate_history
                        .push((ctx.now(), RateNotification { session, rate }));
                }
            }
            Action::SendDownstream(packet) => {
                let session = packet.session();
                let Some(path) = self.paths.get(&session) else {
                    return;
                };
                let links = path.links();
                let (channel_link, next) = match origin {
                    Target::Source(_) => {
                        let next = if links.len() > 1 {
                            Target::Link(links[1])
                        } else {
                            Target::Destination(session)
                        };
                        (links[0], next)
                    }
                    Target::Link(e) => {
                        let Some(i) = path.position(e) else {
                            return;
                        };
                        let next = if i + 1 < links.len() {
                            Target::Link(links[i + 1])
                        } else {
                            Target::Destination(session)
                        };
                        (e, next)
                    }
                    Target::Destination(_) => return,
                };
                self.transmit(ctx, channel_link, next, packet);
            }
            Action::SendUpstream(packet) => {
                let session = packet.session();
                let Some(path) = self.paths.get(&session) else {
                    return;
                };
                let links = path.links();
                let (forward_link, next) = match origin {
                    Target::Destination(_) => {
                        let last = links.len() - 1;
                        let next = if last >= 1 {
                            Target::Link(links[last])
                        } else {
                            Target::Source(session)
                        };
                        (links[last], next)
                    }
                    Target::Link(e) => {
                        let Some(i) = path.position(e) else {
                            return;
                        };
                        debug_assert!(i >= 1, "the first link is owned by the source task");
                        let next = if i > 1 {
                            Target::Link(links[i - 1])
                        } else {
                            Target::Source(session)
                        };
                        (links[i - 1], next)
                    }
                    Target::Source(_) => return,
                };
                // Upstream packets travel over the reverse link of the hop.
                let Some(reverse) = self.network.reverse_link(forward_link) else {
                    return;
                };
                self.transmit(ctx, reverse, next, packet);
            }
        }
    }

    fn transmit(
        &mut self,
        ctx: &mut Context<'_, Envelope>,
        over: LinkId,
        target: Target,
        packet: Packet,
    ) {
        self.stats.record(packet.kind());
        if self.config.record_packet_log {
            self.packet_log.push((ctx.now(), packet.kind()));
        }
        ctx.send(
            self.channels[over.index()],
            Address(0),
            Envelope {
                target,
                payload: Payload::Protocol(packet),
            },
        );
    }
}

impl<'a> World for BneckWorld<'a> {
    type Message = Envelope;

    fn handle(&mut self, ctx: &mut Context<'_, Envelope>, _to: Address, msg: Envelope) {
        self.dispatch(ctx, msg);
    }
}

/// A complete B-Neck simulation over a network.
///
/// See the crate-level documentation for an end-to-end example.
pub struct BneckSimulation<'a> {
    engine: Engine<Envelope>,
    world: BneckWorld<'a>,
    router: Router<'a>,
    limits: BTreeMap<SessionId, RateLimit>,
    active: BTreeSet<SessionId>,
    source_hosts: BTreeMap<NodeId, SessionId>,
}

impl<'a> fmt::Debug for BneckSimulation<'a> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BneckSimulation")
            .field("now", &self.engine.now())
            .field("active_sessions", &self.active.len())
            .field("pending_events", &self.engine.pending_events())
            .finish()
    }
}

impl<'a> BneckSimulation<'a> {
    /// Creates a simulation over `network` with the given configuration.
    ///
    /// Every directed link of the network is registered as a simulator channel
    /// with the link's bandwidth and propagation delay.
    pub fn new(network: &'a Network, config: BneckConfig) -> Self {
        let mut engine = Engine::new();
        let mut channels = Vec::with_capacity(network.link_count());
        for link in network.links() {
            let spec = ChannelSpec::new(link.capacity().as_bps(), link.delay(), config.packet_bits);
            channels.push(engine.add_channel(spec));
        }
        BneckSimulation {
            engine,
            world: BneckWorld {
                network,
                config,
                channels,
                router_links: HashMap::new(),
                sources: HashMap::new(),
                destinations: HashMap::new(),
                paths: HashMap::new(),
                stats: PacketStats::new(),
                packet_log: Vec::new(),
                rate_history: Vec::new(),
                notified_rates: BTreeMap::new(),
            },
            router: Router::new(network),
            limits: BTreeMap::new(),
            active: BTreeSet::new(),
            source_hosts: BTreeMap::new(),
        }
    }

    /// `true` if `host` is currently the source of an active session (and thus
    /// cannot start another one, per the paper's one-session-per-source-host
    /// model).
    pub fn is_source_host_busy(&self, host: NodeId) -> bool {
        self.source_hosts.contains_key(&host)
    }

    /// The network the simulation runs over.
    pub fn network(&self) -> &'a Network {
        self.world.network
    }

    /// `API.Join(s, r)` at time `at`, routing the session along a shortest
    /// path from `source` to `destination`.
    ///
    /// # Errors
    ///
    /// Returns [`JoinError::NoPath`] if the hosts are not connected and
    /// [`JoinError::DuplicateSession`] if the identifier is already in use.
    pub fn join(
        &mut self,
        at: SimTime,
        session: SessionId,
        source: NodeId,
        destination: NodeId,
        limit: RateLimit,
    ) -> Result<(), JoinError> {
        let path = self
            .router
            .shortest_path(source, destination)
            .ok_or(JoinError::NoPath {
                source,
                destination,
            })?;
        self.join_with_path(at, session, path, limit)
    }

    /// `API.Join(s, r)` at time `at` along an explicit path.
    ///
    /// # Errors
    ///
    /// Returns [`JoinError::DuplicateSession`] if the identifier is already in
    /// use by an active session, or [`JoinError::SourceHostBusy`] if another
    /// active session already starts at the path's source host.
    pub fn join_with_path(
        &mut self,
        at: SimTime,
        session: SessionId,
        path: Path,
        limit: RateLimit,
    ) -> Result<(), JoinError> {
        if self.active.contains(&session) {
            return Err(JoinError::DuplicateSession(session));
        }
        if let Some(existing) = self.source_hosts.get(&path.source()) {
            return Err(JoinError::SourceHostBusy {
                host: path.source(),
                existing: *existing,
            });
        }
        self.source_hosts.insert(path.source(), session);
        let first_link = path.first_link();
        let first_capacity = self.world.network.link(first_link).capacity().as_bps();
        self.world.sources.insert(
            session,
            SourceNode::new(
                session,
                first_link,
                first_capacity,
                self.world.config.tolerance,
            ),
        );
        self.world
            .destinations
            .insert(session, DestinationNode::new(session));
        self.world.paths.insert(session, path);
        self.limits.insert(session, limit);
        self.active.insert(session);
        self.engine.inject(
            at,
            Address(0),
            Envelope {
                target: Target::Source(session),
                payload: Payload::Api(ApiCall::Join { limit }),
            },
        );
        Ok(())
    }

    /// `API.Leave(s)` at time `at`.
    ///
    /// # Errors
    ///
    /// Returns [`JoinError::UnknownSession`] if the session is not active.
    pub fn leave(&mut self, at: SimTime, session: SessionId) -> Result<(), JoinError> {
        if !self.active.remove(&session) {
            return Err(JoinError::UnknownSession(session));
        }
        self.limits.remove(&session);
        self.world.notified_rates.remove(&session);
        self.source_hosts.retain(|_, s| *s != session);
        self.engine.inject(
            at,
            Address(0),
            Envelope {
                target: Target::Source(session),
                payload: Payload::Api(ApiCall::Leave),
            },
        );
        Ok(())
    }

    /// `API.Change(s, r)` at time `at`.
    ///
    /// # Errors
    ///
    /// Returns [`JoinError::UnknownSession`] if the session is not active.
    pub fn change(
        &mut self,
        at: SimTime,
        session: SessionId,
        limit: RateLimit,
    ) -> Result<(), JoinError> {
        if !self.active.contains(&session) {
            return Err(JoinError::UnknownSession(session));
        }
        self.limits.insert(session, limit);
        self.engine.inject(
            at,
            Address(0),
            Envelope {
                target: Target::Source(session),
                payload: Payload::Api(ApiCall::Change { limit }),
            },
        );
        Ok(())
    }

    /// Runs the simulation until no protocol event remains (quiescence).
    pub fn run_to_quiescence(&mut self) -> QuiescenceReport {
        let report = self.engine.run(&mut self.world);
        QuiescenceReport {
            quiescent: report.quiescent,
            quiescent_at: report.quiescent_at,
            events_processed: report.events_processed,
            packets_sent: report.messages_sent,
        }
    }

    /// Runs the simulation until `horizon` (inclusive) or quiescence,
    /// whichever comes first.
    pub fn run_until(&mut self, horizon: SimTime) -> QuiescenceReport {
        let report = self.engine.run_until(&mut self.world, horizon);
        QuiescenceReport {
            quiescent: report.quiescent,
            quiescent_at: report.quiescent_at,
            events_processed: report.events_processed,
            packets_sent: report.messages_sent,
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// `true` when no protocol packet is pending or in flight.
    pub fn is_quiescent(&self) -> bool {
        self.engine.is_quiescent()
    }

    /// The identifiers of the currently active sessions.
    pub fn active_sessions(&self) -> impl Iterator<Item = SessionId> + '_ {
        self.active.iter().copied()
    }

    /// The rates last notified through `API.Rate`, for active sessions.
    ///
    /// After [`BneckSimulation::run_to_quiescence`] in a steady state, this is
    /// the max-min fair allocation (Theorem 1 of the paper).
    pub fn allocation(&self) -> Allocation {
        self.world
            .notified_rates
            .iter()
            .filter(|(s, _)| self.active.contains(s))
            .map(|(s, r)| (*s, *r))
            .collect()
    }

    /// The rate currently assigned to a session at its source (B-Neck's
    /// transient rate before convergence), or `None` for unknown sessions.
    pub fn current_rate(&self, session: SessionId) -> Option<Rate> {
        self.world.sources.get(&session).map(|s| s.current_rate())
    }

    /// The transient rates of all active sessions.
    pub fn current_rates(&self) -> Allocation {
        self.active
            .iter()
            .filter_map(|s| self.current_rate(*s).map(|r| (*s, r)))
            .collect()
    }

    /// The active sessions as a [`SessionSet`] (paths plus requested limits),
    /// suitable for feeding the centralized oracle.
    pub fn session_set(&self) -> SessionSet {
        self.active
            .iter()
            .filter_map(|s| {
                let path = self.world.paths.get(s)?.clone();
                let limit = self.limits.get(s).copied().unwrap_or_default();
                Some(Session::new(*s, path, limit))
            })
            .collect()
    }

    /// Cumulative packet counts by kind.
    pub fn packet_stats(&self) -> &PacketStats {
        &self.world.stats
    }

    /// The timestamped log of transmitted packets (empty unless
    /// [`BneckConfig::record_packet_log`] is enabled).
    pub fn packet_log(&self) -> &[(SimTime, PacketKind)] {
        &self.world.packet_log
    }

    /// The timestamped `API.Rate` history (empty unless
    /// [`BneckConfig::record_rate_history`] is enabled).
    pub fn rate_history(&self) -> &[(SimTime, RateNotification)] {
        &self.world.rate_history
    }

    /// `true` when every router-link task satisfies the per-link stability
    /// conditions of Definition 2. Together with [`Self::is_quiescent`], this
    /// is the paper's notion of a stable network.
    pub fn links_stable(&self) -> bool {
        self.world.router_links.values().all(|rl| rl.is_stable())
    }

    /// The `RouterLink` task of a link, if any session ever crossed it.
    ///
    /// Mainly useful for tests and debugging tools that want to inspect the
    /// per-link protocol state (`R_e`, `F_e`, `μ`, `λ`, `B_e`).
    pub fn link_task(&self, link: LinkId) -> Option<&RouterLink> {
        self.world.router_links.get(&link)
    }

    /// The `SourceNode` task of a session, if the session ever joined.
    pub fn source_task(&self, session: SessionId) -> Option<&SourceNode> {
        self.world.sources.get(&session)
    }

    /// The path a session was routed along, if the session ever joined.
    pub fn session_path(&self, session: SessionId) -> Option<&Path> {
        self.world.paths.get(&session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bneck_maxmin::prelude::*;
    use bneck_net::prelude::*;

    fn mbps(x: f64) -> Capacity {
        Capacity::from_mbps(x)
    }
    fn us(x: u64) -> Delay {
        Delay::from_micros(x)
    }

    fn oracle(sim: &BneckSimulation<'_>) -> Allocation {
        let sessions = sim.session_set();
        CentralizedBneck::new(sim.network(), &sessions).solve()
    }

    fn assert_matches_oracle(sim: &BneckSimulation<'_>) {
        let sessions = sim.session_set();
        let expected = CentralizedBneck::new(sim.network(), &sessions).solve();
        let got = sim.allocation();
        let tol = Tolerance::new(1e-6, 1.0);
        if let Err(violations) = compare_allocations(&sessions, &got, &expected, tol) {
            panic!(
                "distributed allocation disagrees with the centralized oracle: {:?}\n got: {:?}\n expected: {:?}",
                violations, got, expected
            );
        }
    }

    #[test]
    fn single_session_gets_the_path_minimum() {
        let net = synthetic::line(3, mbps(100.0), mbps(40.0), us(1));
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut sim = BneckSimulation::new(&net, BneckConfig::default());
        sim.join(
            SimTime::ZERO,
            SessionId(0),
            hosts[0],
            hosts[2],
            RateLimit::unlimited(),
        )
        .unwrap();
        let report = sim.run_to_quiescence();
        assert!(report.quiescent);
        assert!(report.packets_sent > 0);
        let rate = sim.allocation().rate(SessionId(0)).unwrap();
        assert!((rate - 40e6).abs() < 1.0);
        assert_matches_oracle(&sim);
        assert!(sim.links_stable());
    }

    #[test]
    fn two_sessions_share_a_bottleneck() {
        let net = synthetic::dumbbell(2, mbps(100.0), mbps(60.0), us(1));
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut sim = BneckSimulation::new(&net, BneckConfig::default());
        for i in 0..2u64 {
            sim.join(
                SimTime::ZERO,
                SessionId(i),
                hosts[2 * i as usize],
                hosts[2 * i as usize + 1],
                RateLimit::unlimited(),
            )
            .unwrap();
        }
        sim.run_to_quiescence();
        assert_matches_oracle(&sim);
        let alloc = sim.allocation();
        assert!((alloc.rate(SessionId(0)).unwrap() - 30e6).abs() < 1.0);
        assert!((alloc.rate(SessionId(1)).unwrap() - 30e6).abs() < 1.0);
    }

    #[test]
    fn rate_limited_session_releases_bandwidth() {
        let net = synthetic::dumbbell(3, mbps(100.0), mbps(90.0), us(1));
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut sim = BneckSimulation::new(&net, BneckConfig::default());
        sim.join(
            SimTime::ZERO,
            SessionId(0),
            hosts[0],
            hosts[1],
            RateLimit::finite(10e6),
        )
        .unwrap();
        for i in 1..3u64 {
            sim.join(
                SimTime::ZERO,
                SessionId(i),
                hosts[2 * i as usize],
                hosts[2 * i as usize + 1],
                RateLimit::unlimited(),
            )
            .unwrap();
        }
        sim.run_to_quiescence();
        assert_matches_oracle(&sim);
        let alloc = sim.allocation();
        assert!((alloc.rate(SessionId(0)).unwrap() - 10e6).abs() < 1.0);
        assert!((alloc.rate(SessionId(1)).unwrap() - 40e6).abs() < 1.0);
    }

    #[test]
    fn staggered_joins_reconverge() {
        let net = synthetic::dumbbell(4, mbps(100.0), mbps(80.0), us(1));
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut sim = BneckSimulation::new(&net, BneckConfig::default());
        for i in 0..4u64 {
            sim.join(
                SimTime::from_millis(i),
                SessionId(i),
                hosts[2 * i as usize],
                hosts[2 * i as usize + 1],
                RateLimit::unlimited(),
            )
            .unwrap();
        }
        sim.run_to_quiescence();
        assert_matches_oracle(&sim);
        let alloc = sim.allocation();
        for i in 0..4u64 {
            assert!((alloc.rate(SessionId(i)).unwrap() - 20e6).abs() < 1.0);
        }
    }

    #[test]
    fn leave_reactivates_and_grows_the_survivors() {
        let net = synthetic::dumbbell(3, mbps(100.0), mbps(60.0), us(1));
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut sim = BneckSimulation::new(&net, BneckConfig::default());
        for i in 0..3u64 {
            sim.join(
                SimTime::ZERO,
                SessionId(i),
                hosts[2 * i as usize],
                hosts[2 * i as usize + 1],
                RateLimit::unlimited(),
            )
            .unwrap();
        }
        sim.run_to_quiescence();
        assert!((sim.allocation().rate(SessionId(0)).unwrap() - 20e6).abs() < 1.0);
        // One session leaves; the other two should re-converge to 30 Mbps.
        let t = sim.now() + bneck_net::Delay::from_millis(1);
        sim.leave(t, SessionId(0)).unwrap();
        let report = sim.run_to_quiescence();
        assert!(report.quiescent);
        assert_matches_oracle(&sim);
        let alloc = sim.allocation();
        assert!(alloc.rate(SessionId(0)).is_none());
        assert!((alloc.rate(SessionId(1)).unwrap() - 30e6).abs() < 1.0);
        assert!((alloc.rate(SessionId(2)).unwrap() - 30e6).abs() < 1.0);
    }

    #[test]
    fn change_reduces_and_then_restores_a_rate() {
        let net = synthetic::dumbbell(2, mbps(100.0), mbps(80.0), us(1));
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut sim = BneckSimulation::new(&net, BneckConfig::default());
        for i in 0..2u64 {
            sim.join(
                SimTime::ZERO,
                SessionId(i),
                hosts[2 * i as usize],
                hosts[2 * i as usize + 1],
                RateLimit::unlimited(),
            )
            .unwrap();
        }
        sim.run_to_quiescence();
        // Session 0 caps itself at 10 Mbps: session 1 should grow to 70 Mbps.
        let t1 = sim.now() + bneck_net::Delay::from_millis(1);
        sim.change(t1, SessionId(0), RateLimit::finite(10e6))
            .unwrap();
        sim.run_to_quiescence();
        assert_matches_oracle(&sim);
        let alloc = sim.allocation();
        assert!((alloc.rate(SessionId(0)).unwrap() - 10e6).abs() < 1.0);
        assert!((alloc.rate(SessionId(1)).unwrap() - 70e6).abs() < 1.0);
        // Session 0 lifts its cap again: back to a 40/40 split.
        let t2 = sim.now() + bneck_net::Delay::from_millis(1);
        sim.change(t2, SessionId(0), RateLimit::unlimited())
            .unwrap();
        sim.run_to_quiescence();
        assert_matches_oracle(&sim);
        let alloc = sim.allocation();
        assert!((alloc.rate(SessionId(0)).unwrap() - 40e6).abs() < 1.0);
        assert!((alloc.rate(SessionId(1)).unwrap() - 40e6).abs() < 1.0);
        let _ = oracle(&sim);
    }

    #[test]
    fn dependent_bottlenecks_parking_lot() {
        // One long session across every segment plus shorter sessions of
        // decreasing length, all from distinct source hosts (the paper's
        // one-session-per-source-host model): the classic dependent-bottleneck
        // chain.
        let net = synthetic::parking_lot(3, mbps(100.0), mbps(60.0), us(1));
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut sim = BneckSimulation::new(&net, BneckConfig::default());
        for i in 0..3u64 {
            sim.join(
                SimTime::ZERO,
                SessionId(i),
                hosts[i as usize],
                hosts[3],
                RateLimit::unlimited(),
            )
            .unwrap();
        }
        sim.run_to_quiescence();
        assert_matches_oracle(&sim);
        // The last segment is shared by all three sessions.
        let alloc = sim.allocation();
        for i in 0..3u64 {
            assert!((alloc.rate(SessionId(i)).unwrap() - 20e6).abs() < 1.0);
        }
    }

    #[test]
    fn join_errors_are_reported() {
        let net = synthetic::dumbbell(2, mbps(100.0), mbps(60.0), us(1));
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut sim = BneckSimulation::new(&net, BneckConfig::default());
        sim.join(
            SimTime::ZERO,
            SessionId(0),
            hosts[0],
            hosts[1],
            RateLimit::unlimited(),
        )
        .unwrap();
        assert_eq!(
            sim.join(
                SimTime::ZERO,
                SessionId(0),
                hosts[2],
                hosts[3],
                RateLimit::unlimited()
            ),
            Err(JoinError::DuplicateSession(SessionId(0)))
        );
        assert_eq!(
            sim.join(
                SimTime::ZERO,
                SessionId(1),
                hosts[0],
                hosts[0],
                RateLimit::unlimited()
            ),
            Err(JoinError::NoPath {
                source: hosts[0],
                destination: hosts[0]
            })
        );
        assert_eq!(
            sim.leave(SimTime::ZERO, SessionId(9)),
            Err(JoinError::UnknownSession(SessionId(9)))
        );
        assert_eq!(
            sim.change(SimTime::ZERO, SessionId(9), RateLimit::unlimited()),
            Err(JoinError::UnknownSession(SessionId(9)))
        );
    }

    #[test]
    fn packet_log_and_rate_history_are_recorded_when_enabled() {
        let net = synthetic::dumbbell(2, mbps(100.0), mbps(60.0), us(1));
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let config = BneckConfig::default().with_packet_log().with_rate_history();
        let mut sim = BneckSimulation::new(&net, config);
        for i in 0..2u64 {
            sim.join(
                SimTime::ZERO,
                SessionId(i),
                hosts[2 * i as usize],
                hosts[2 * i as usize + 1],
                RateLimit::unlimited(),
            )
            .unwrap();
        }
        sim.run_to_quiescence();
        assert_eq!(sim.packet_log().len() as u64, sim.packet_stats().total());
        assert!(!sim.rate_history().is_empty());
        assert!(sim
            .rate_history()
            .iter()
            .any(|(_, n)| n.session == SessionId(1)));
        // Every packet kind count in the log matches the aggregate stats.
        let mut recount = PacketStats::new();
        for (_, kind) in sim.packet_log() {
            recount.record(*kind);
        }
        assert_eq!(&recount, sim.packet_stats());
    }

    #[test]
    fn quiescence_means_no_further_traffic() {
        let net = synthetic::dumbbell(3, mbps(100.0), mbps(60.0), us(1));
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut sim = BneckSimulation::new(&net, BneckConfig::default());
        for i in 0..3u64 {
            sim.join(
                SimTime::ZERO,
                SessionId(i),
                hosts[2 * i as usize],
                hosts[2 * i as usize + 1],
                RateLimit::unlimited(),
            )
            .unwrap();
        }
        sim.run_to_quiescence();
        let packets_after_convergence = sim.packet_stats().total();
        // Running further without changes generates no traffic at all.
        let report = sim.run_to_quiescence();
        assert_eq!(report.events_processed, 0);
        assert_eq!(sim.packet_stats().total(), packets_after_convergence);
        assert!(sim.is_quiescent());
    }
}
