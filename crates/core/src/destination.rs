//! The `DestinationNode(s)` task (Figure 4 of the paper).
//!
//! The destination node closes Probe cycles (turning `Join`/`Probe` packets
//! into `Response` packets sent back upstream) and, when a `SetBottleneck`
//! arrives whose `β` flag shows that no bottleneck was found anywhere on the
//! path, asks the source to start a new Probe cycle with an `Update`.

use crate::packet::{Packet, ResponseKind};
use crate::task::{Action, ActionBuffer};
use bneck_maxmin::SessionId;

/// The per-session destination task of the B-Neck protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DestinationNode {
    session: SessionId,
}

impl DestinationNode {
    /// Creates the destination task for `session`.
    pub fn new(session: SessionId) -> Self {
        DestinationNode { session }
    }

    /// The session this task belongs to.
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// Handles a packet that reached the destination host, emitting the
    /// produced actions into `actions`.
    ///
    /// Packets belonging to other sessions or of kinds a destination never
    /// receives are ignored.
    pub fn handle(&self, packet: Packet, actions: &mut ActionBuffer) {
        if packet.session() != self.session {
            return;
        }
        match packet {
            Packet::Join {
                session,
                rate,
                restricting,
            }
            | Packet::Probe {
                session,
                rate,
                restricting,
            } => actions.push(Action::SendUpstream(Packet::Response {
                session,
                kind: ResponseKind::Response,
                rate,
                restricting,
            })),
            Packet::SetBottleneck {
                session,
                found: false,
            } => {
                actions.push(Action::SendUpstream(Packet::Update { session }));
            }
            // A SetBottleneck that found its restricting link terminates at
            // that link; one that reaches the destination unclaimed with
            // `found: true` cannot happen, and nothing is owed upstream.
            Packet::SetBottleneck { found: true, .. } => {}
            // Upstream-travelling kinds a destination emits but never
            // receives, and Leave which terminates at the last router.
            Packet::Response { .. }
            | Packet::Update { .. }
            | Packet::Bottleneck { .. }
            | Packet::Leave { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bneck_net::LinkId;

    fn handle(d: &DestinationNode, packet: Packet) -> Vec<Action> {
        let mut buf = ActionBuffer::new();
        d.handle(packet, &mut buf);
        buf.into_vec()
    }

    #[test]
    fn join_and_probe_are_answered_with_responses() {
        let d = DestinationNode::new(SessionId(4));
        for packet in [
            Packet::Join {
                session: SessionId(4),
                rate: 5e6,
                restricting: LinkId(2),
            },
            Packet::Probe {
                session: SessionId(4),
                rate: 5e6,
                restricting: LinkId(2),
            },
        ] {
            let actions = handle(&d, packet);
            assert_eq!(
                actions,
                vec![Action::SendUpstream(Packet::Response {
                    session: SessionId(4),
                    kind: ResponseKind::Response,
                    rate: 5e6,
                    restricting: LinkId(2),
                })]
            );
        }
    }

    #[test]
    fn missing_bottleneck_triggers_an_update() {
        let d = DestinationNode::new(SessionId(4));
        let actions = handle(
            &d,
            Packet::SetBottleneck {
                session: SessionId(4),
                found: false,
            },
        );
        assert_eq!(
            actions,
            vec![Action::SendUpstream(Packet::Update {
                session: SessionId(4)
            })]
        );
        assert!(handle(
            &d,
            Packet::SetBottleneck {
                session: SessionId(4),
                found: true
            }
        )
        .is_empty());
    }

    #[test]
    fn unrelated_packets_are_ignored() {
        let d = DestinationNode::new(SessionId(4));
        assert!(handle(
            &d,
            Packet::Join {
                session: SessionId(5),
                rate: 1.0,
                restricting: LinkId(0)
            }
        )
        .is_empty());
        assert!(handle(
            &d,
            Packet::Leave {
                session: SessionId(4)
            }
        )
        .is_empty());
        assert_eq!(d.session(), SessionId(4));
    }
}
