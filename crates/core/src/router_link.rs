//! The `RouterLink(e)` task (Figure 2 of the paper).
//!
//! One `RouterLink` instance manages one directed link `e`. It keeps, for the
//! sessions crossing the link, the set `R_e` of sessions (so far) restricted
//! at `e`, the set `F_e` of sessions restricted elsewhere, and for each
//! session its probe state `μ_e^s` and its assigned rate `λ_e^s`. The link's
//! *bottleneck rate* is `B_e = (C_e − Σ_{s∈F_e} λ_e^s) / |R_e|`.

use crate::packet::{Packet, ResponseKind};
use crate::task::{Action, ProbeState};
use bneck_maxmin::{Rate, SessionId, Tolerance};
use bneck_net::LinkId;
use std::collections::{BTreeMap, BTreeSet};

/// Per-session state kept by a [`RouterLink`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct SessionState {
    mu: ProbeState,
    lambda: Option<Rate>,
}

/// The per-link task of the B-Neck protocol.
///
/// Handlers mirror the `when` blocks of Figure 2 and return the list of
/// [`Action`]s (packets to regenerate upstream or downstream) the link
/// produces in response.
#[derive(Debug, Clone)]
pub struct RouterLink {
    link: LinkId,
    capacity: Rate,
    tol: Tolerance,
    restricted: BTreeSet<SessionId>,
    unrestricted: BTreeSet<SessionId>,
    sessions: BTreeMap<SessionId, SessionState>,
}

impl RouterLink {
    /// Creates the task for link `e` with the given capacity (in bits per
    /// second) and rate-comparison tolerance.
    pub fn new(link: LinkId, capacity: Rate, tol: Tolerance) -> Self {
        RouterLink {
            link,
            capacity,
            tol,
            restricted: BTreeSet::new(),
            unrestricted: BTreeSet::new(),
            sessions: BTreeMap::new(),
        }
    }

    /// The link this task manages.
    pub fn link(&self) -> LinkId {
        self.link
    }

    /// The link's capacity in bits per second (`C_e`).
    pub fn capacity(&self) -> Rate {
        self.capacity
    }

    /// The sessions currently restricted at this link (`R_e`).
    pub fn restricted(&self) -> impl Iterator<Item = SessionId> + '_ {
        self.restricted.iter().copied()
    }

    /// The sessions crossing this link but restricted elsewhere (`F_e`).
    pub fn unrestricted(&self) -> impl Iterator<Item = SessionId> + '_ {
        self.unrestricted.iter().copied()
    }

    /// Number of sessions this link currently knows about.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// The probe state `μ_e^s` of a session, if the session is known.
    pub fn probe_state(&self, session: SessionId) -> Option<ProbeState> {
        self.sessions.get(&session).map(|s| s.mu)
    }

    /// The assigned rate `λ_e^s` of a session, if one has been recorded.
    pub fn assigned_rate(&self, session: SessionId) -> Option<Rate> {
        self.sessions.get(&session).and_then(|s| s.lambda)
    }

    /// The link's current bottleneck rate estimate `B_e`.
    ///
    /// Returns `f64::INFINITY` when no session is restricted at this link (the
    /// link then imposes no restriction).
    pub fn bottleneck_rate(&self) -> Rate {
        if self.restricted.is_empty() {
            return f64::INFINITY;
        }
        let assigned: Rate = self
            .unrestricted
            .iter()
            .filter_map(|s| self.sessions.get(s).and_then(|st| st.lambda))
            .sum();
        (self.capacity - assigned).max(0.0) / self.restricted.len() as f64
    }

    /// `true` when the link satisfies the stability conditions of
    /// Definition 2 of the paper: every known session is `IDLE`, every session
    /// in `R_e` sits exactly at `B_e`, and (when `R_e` is non-empty) every
    /// session in `F_e` sits strictly below `B_e`.
    pub fn is_stable(&self) -> bool {
        let be = self.bottleneck_rate();
        for (id, st) in &self.sessions {
            if !st.mu.is_idle() {
                return false;
            }
            let Some(lambda) = st.lambda else {
                return false;
            };
            if self.restricted.contains(id) {
                if self.tol.ne(lambda, be) {
                    return false;
                }
            } else if !self.restricted.is_empty() && !self.tol.lt(lambda, be) {
                return false;
            }
        }
        true
    }

    /// Handles a received packet, returning the actions the link performs.
    ///
    /// Packets for sessions this link does not know about (which can only
    /// happen transiently around a `Leave`) are dropped, except `Join` and
    /// `Leave` which are always meaningful.
    pub fn handle(&mut self, packet: Packet) -> Vec<Action> {
        match packet {
            Packet::Join {
                session,
                rate,
                restricting,
            } => self.on_join(session, rate, restricting),
            Packet::Probe {
                session,
                rate,
                restricting,
            } => self.on_probe(session, rate, restricting),
            Packet::Response {
                session,
                kind,
                rate,
                restricting,
            } => self.on_response(session, kind, rate, restricting),
            Packet::Update { session } => self.on_update(session),
            Packet::Bottleneck { session } => self.on_bottleneck(session),
            Packet::SetBottleneck { session, found } => self.on_set_bottleneck(session, found),
            Packet::Leave { session } => self.on_leave(session),
        }
    }

    /// `ProcessNewRestricted()` (Figure 2, lines 4–10): pull back into `R_e`
    /// the sessions of `F_e` whose rate reaches the bottleneck rate, then ask
    /// the idle sessions of `R_e` whose rate exceeds `B_e` to re-probe.
    fn process_new_restricted(&mut self, actions: &mut Vec<Action>) {
        loop {
            let be = self.bottleneck_rate();
            let has_candidate = self.unrestricted.iter().any(|s| {
                self.sessions
                    .get(s)
                    .and_then(|st| st.lambda)
                    .map(|l| self.tol.ge(l, be))
                    .unwrap_or(false)
            });
            if !has_candidate {
                break;
            }
            let lambda_max = self
                .unrestricted
                .iter()
                .filter_map(|s| self.sessions.get(s).and_then(|st| st.lambda))
                .fold(f64::NEG_INFINITY, f64::max);
            let movers: Vec<SessionId> = self
                .unrestricted
                .iter()
                .filter(|s| {
                    self.sessions
                        .get(s)
                        .and_then(|st| st.lambda)
                        .map(|l| self.tol.eq(l, lambda_max))
                        .unwrap_or(false)
                })
                .copied()
                .collect();
            for s in movers {
                self.unrestricted.remove(&s);
                self.restricted.insert(s);
            }
        }
        let be = self.bottleneck_rate();
        let to_update: Vec<SessionId> = self
            .restricted
            .iter()
            .filter(|s| {
                let st = &self.sessions[s];
                st.mu.is_idle() && st.lambda.map(|l| self.tol.gt(l, be)).unwrap_or(false)
            })
            .copied()
            .collect();
        for s in to_update {
            self.sessions.get_mut(&s).expect("session exists").mu = ProbeState::WaitingProbe;
            actions.push(Action::SendUpstream(Packet::Update { session: s }));
        }
    }

    /// Figure 2, lines 12–16.
    fn on_join(&mut self, session: SessionId, rate: Rate, restricting: LinkId) -> Vec<Action> {
        let mut actions = Vec::new();
        self.unrestricted.remove(&session);
        self.restricted.insert(session);
        let entry = self.sessions.entry(session).or_default();
        entry.mu = ProbeState::WaitingResponse;
        self.process_new_restricted(&mut actions);
        let be = self.bottleneck_rate();
        let (rate, restricting) = if self.tol.gt(rate, be) {
            (be, self.link)
        } else {
            (rate, restricting)
        };
        actions.push(Action::SendDownstream(Packet::Join {
            session,
            rate,
            restricting,
        }));
        actions
    }

    /// Figure 2, lines 30–36.
    fn on_probe(&mut self, session: SessionId, rate: Rate, restricting: LinkId) -> Vec<Action> {
        let mut actions = Vec::new();
        // A Probe for a session the link has never seen behaves like a Join
        // (this can only happen if state was lost, e.g. around a Leave race).
        self.sessions.entry(session).or_default();
        self.unrestricted.remove(&session);
        self.restricted.insert(session);
        self.sessions.get_mut(&session).expect("just inserted").mu = ProbeState::WaitingResponse;
        self.process_new_restricted(&mut actions);
        let be = self.bottleneck_rate();
        let (rate, restricting) = if self.tol.gt(rate, be) {
            (be, self.link)
        } else {
            (rate, restricting)
        };
        actions.push(Action::SendDownstream(Packet::Probe {
            session,
            rate,
            restricting,
        }));
        actions
    }

    /// Figure 2, lines 18–28.
    fn on_response(
        &mut self,
        session: SessionId,
        mut kind: ResponseKind,
        rate: Rate,
        mut restricting: LinkId,
    ) -> Vec<Action> {
        if !self.sessions.contains_key(&session) {
            return Vec::new();
        }
        let mut actions = Vec::new();
        if kind == ResponseKind::Update {
            self.sessions.get_mut(&session).expect("checked").mu = ProbeState::WaitingProbe;
        } else {
            let be = self.bottleneck_rate();
            let accepted = (restricting == self.link && self.tol.eq(rate, be))
                || (restricting != self.link && self.tol.le(rate, be));
            {
                let st = self.sessions.get_mut(&session).expect("checked");
                if accepted {
                    st.mu = ProbeState::Idle;
                    st.lambda = Some(rate);
                } else {
                    // Either this link was reported as the restriction but its
                    // bottleneck rate has moved, or the rate now exceeds B_e.
                    kind = ResponseKind::Update;
                    st.mu = ProbeState::WaitingProbe;
                }
            }
            // Bottleneck detection: every restricted session is idle at B_e.
            let be = self.bottleneck_rate();
            let all_settled = !self.restricted.is_empty()
                && self.restricted.iter().all(|r| {
                    let st = &self.sessions[r];
                    st.mu.is_idle() && st.lambda.map(|l| self.tol.eq(l, be)).unwrap_or(false)
                });
            if all_settled {
                kind = ResponseKind::Bottleneck;
                restricting = self.link;
                for r in self.restricted.iter().copied().collect::<Vec<_>>() {
                    if r != session {
                        actions.push(Action::SendUpstream(Packet::Bottleneck { session: r }));
                    }
                }
            }
        }
        actions.push(Action::SendUpstream(Packet::Response {
            session,
            kind,
            rate,
            restricting,
        }));
        actions
    }

    /// Figure 2, lines 38–40.
    fn on_update(&mut self, session: SessionId) -> Vec<Action> {
        let Some(st) = self.sessions.get_mut(&session) else {
            return Vec::new();
        };
        if st.mu.is_idle() {
            st.mu = ProbeState::WaitingProbe;
            vec![Action::SendUpstream(Packet::Update { session })]
        } else {
            Vec::new()
        }
    }

    /// Figure 2, lines 42–43.
    fn on_bottleneck(&mut self, session: SessionId) -> Vec<Action> {
        let Some(st) = self.sessions.get(&session) else {
            return Vec::new();
        };
        if st.mu.is_idle() && self.restricted.contains(&session) {
            vec![Action::SendUpstream(Packet::Bottleneck { session })]
        } else {
            Vec::new()
        }
    }

    /// Figure 2, lines 45–55.
    fn on_set_bottleneck(&mut self, session: SessionId, found: bool) -> Vec<Action> {
        if !self.sessions.contains_key(&session) {
            return Vec::new();
        }
        let mut actions = Vec::new();
        let be = self.bottleneck_rate();
        let all_settled = self.restricted.iter().all(|r| {
            let st = &self.sessions[r];
            st.mu.is_idle() && st.lambda.map(|l| self.tol.eq(l, be)).unwrap_or(false)
        });
        let st = self.sessions[&session];
        if all_settled {
            // This link is (or imposes no objection to being) a bottleneck for
            // its restricted sessions: confirm the bottleneck downstream.
            actions.push(Action::SendDownstream(Packet::SetBottleneck {
                session,
                found: true,
            }));
        } else if st.mu.is_idle() && st.lambda.map(|l| self.tol.lt(l, be)).unwrap_or(false) {
            // The session is restricted elsewhere: move it to F_e and wake the
            // sessions that may now increase their rate.
            let to_update: Vec<SessionId> = self
                .restricted
                .iter()
                .filter(|r| **r != session)
                .filter(|r| {
                    let st = &self.sessions[r];
                    st.mu.is_idle() && st.lambda.map(|l| self.tol.eq(l, be)).unwrap_or(false)
                })
                .copied()
                .collect();
            for r in to_update {
                self.sessions.get_mut(&r).expect("session exists").mu = ProbeState::WaitingProbe;
                actions.push(Action::SendUpstream(Packet::Update { session: r }));
            }
            self.restricted.remove(&session);
            self.unrestricted.insert(session);
            actions.push(Action::SendDownstream(Packet::SetBottleneck {
                session,
                found,
            }));
        } else if st.mu.is_idle() && st.lambda.map(|l| self.tol.eq(l, be)).unwrap_or(false) {
            actions.push(Action::SendDownstream(Packet::SetBottleneck {
                session,
                found,
            }));
        }
        // Otherwise the packet is absorbed: a Probe cycle for this session is
        // in flight and will settle the rate again.
        actions
    }

    /// Figure 2, lines 57–62.
    fn on_leave(&mut self, session: SessionId) -> Vec<Action> {
        let mut actions = Vec::new();
        let be = self.bottleneck_rate();
        let to_update: Vec<SessionId> = self
            .restricted
            .iter()
            .filter(|r| **r != session)
            .filter(|r| {
                let st = &self.sessions[r];
                st.mu.is_idle() && st.lambda.map(|l| self.tol.eq(l, be)).unwrap_or(false)
            })
            .copied()
            .collect();
        self.restricted.remove(&session);
        self.unrestricted.remove(&session);
        self.sessions.remove(&session);
        for r in to_update {
            self.sessions.get_mut(&r).expect("session exists").mu = ProbeState::WaitingProbe;
            actions.push(Action::SendUpstream(Packet::Update { session: r }));
        }
        actions.push(Action::SendDownstream(Packet::Leave { session }));
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAP: Rate = 100e6;

    fn link() -> RouterLink {
        RouterLink::new(LinkId(7), CAP, Tolerance::default())
    }

    fn join(s: u64, rate: Rate) -> Packet {
        Packet::Join {
            session: SessionId(s),
            rate,
            restricting: LinkId(0),
        }
    }

    fn response(s: u64, kind: ResponseKind, rate: Rate, restricting: LinkId) -> Packet {
        Packet::Response {
            session: SessionId(s),
            kind,
            rate,
            restricting,
        }
    }

    #[test]
    fn join_lowers_the_advertised_rate_to_be() {
        let mut rl = link();
        let actions = rl.handle(join(1, 500e6));
        assert_eq!(actions.len(), 1);
        match actions[0] {
            Action::SendDownstream(Packet::Join {
                session,
                rate,
                restricting,
            }) => {
                assert_eq!(session, SessionId(1));
                assert_eq!(rate, CAP); // one session: B_e = C_e
                assert_eq!(restricting, LinkId(7));
            }
            ref other => panic!("unexpected action {other:?}"),
        }
        assert_eq!(
            rl.probe_state(SessionId(1)),
            Some(ProbeState::WaitingResponse)
        );
        assert_eq!(rl.restricted().count(), 1);
    }

    #[test]
    fn join_keeps_a_smaller_upstream_restriction() {
        let mut rl = link();
        let actions = rl.handle(join(1, 10e6));
        match actions[0] {
            Action::SendDownstream(Packet::Join {
                rate, restricting, ..
            }) => {
                assert_eq!(rate, 10e6);
                assert_eq!(restricting, LinkId(0));
            }
            ref other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn second_join_splits_the_bottleneck_rate() {
        let mut rl = link();
        rl.handle(join(1, 500e6));
        let actions = rl.handle(join(2, 500e6));
        match actions.last().unwrap() {
            Action::SendDownstream(Packet::Join { rate, .. }) => {
                assert!((rate - 50e6).abs() < 1e-3);
            }
            other => panic!("unexpected action {other:?}"),
        }
        assert!((rl.bottleneck_rate() - 50e6).abs() < 1e-3);
    }

    #[test]
    fn response_matching_be_becomes_idle_and_detects_bottleneck() {
        let mut rl = link();
        rl.handle(join(1, 500e6));
        let actions = rl.handle(response(1, ResponseKind::Response, CAP, LinkId(7)));
        // Single session at B_e: the link declares itself a bottleneck.
        assert_eq!(actions.len(), 1);
        match actions[0] {
            Action::SendUpstream(Packet::Response {
                kind, restricting, ..
            }) => {
                assert_eq!(kind, ResponseKind::Bottleneck);
                assert_eq!(restricting, LinkId(7));
            }
            ref other => panic!("unexpected action {other:?}"),
        }
        assert_eq!(rl.probe_state(SessionId(1)), Some(ProbeState::Idle));
        assert_eq!(rl.assigned_rate(SessionId(1)), Some(CAP));
        assert!(rl.is_stable());
    }

    #[test]
    fn response_with_stale_restriction_requests_update() {
        let mut rl = link();
        rl.handle(join(1, 500e6));
        rl.handle(join(2, 500e6));
        // Session 1's response claims this link restricted it at 100 Mbps, but
        // with two sessions B_e is now 50 Mbps: the link asks for a new probe.
        let actions = rl.handle(response(1, ResponseKind::Response, CAP, LinkId(7)));
        match actions.last().unwrap() {
            Action::SendUpstream(Packet::Response { kind, .. }) => {
                assert_eq!(*kind, ResponseKind::Update);
            }
            other => panic!("unexpected action {other:?}"),
        }
        assert_eq!(rl.probe_state(SessionId(1)), Some(ProbeState::WaitingProbe));
    }

    #[test]
    fn response_restricted_elsewhere_below_be_is_accepted() {
        let mut rl = link();
        rl.handle(join(1, 500e6));
        rl.handle(join(2, 500e6));
        let actions = rl.handle(response(1, ResponseKind::Response, 20e6, LinkId(3)));
        match actions.last().unwrap() {
            Action::SendUpstream(Packet::Response { kind, rate, .. }) => {
                assert_eq!(*kind, ResponseKind::Response);
                assert_eq!(*rate, 20e6);
            }
            other => panic!("unexpected action {other:?}"),
        }
        assert_eq!(rl.assigned_rate(SessionId(1)), Some(20e6));
        assert_eq!(rl.probe_state(SessionId(1)), Some(ProbeState::Idle));
    }

    #[test]
    fn bottleneck_detection_notifies_other_restricted_sessions() {
        let mut rl = link();
        rl.handle(join(1, 500e6));
        rl.handle(join(2, 500e6));
        // Both sessions settle at the 50 Mbps bottleneck rate.
        rl.handle(response(1, ResponseKind::Response, 50e6, LinkId(7)));
        let actions = rl.handle(response(2, ResponseKind::Response, 50e6, LinkId(7)));
        let bottleneck_notifications: Vec<_> = actions
            .iter()
            .filter(|a| matches!(a, Action::SendUpstream(Packet::Bottleneck { .. })))
            .collect();
        assert_eq!(bottleneck_notifications.len(), 1);
        match actions.last().unwrap() {
            Action::SendUpstream(Packet::Response { kind, .. }) => {
                assert_eq!(*kind, ResponseKind::Bottleneck);
            }
            other => panic!("unexpected action {other:?}"),
        }
        assert!(rl.is_stable());
    }

    #[test]
    fn update_only_propagates_for_idle_sessions() {
        let mut rl = link();
        rl.handle(join(1, 500e6));
        // Session still waiting for its response: update is absorbed.
        assert!(rl
            .handle(Packet::Update {
                session: SessionId(1)
            })
            .is_empty());
        rl.handle(response(1, ResponseKind::Response, CAP, LinkId(7)));
        let actions = rl.handle(Packet::Update {
            session: SessionId(1),
        });
        assert_eq!(
            actions,
            vec![Action::SendUpstream(Packet::Update {
                session: SessionId(1)
            })]
        );
        assert_eq!(rl.probe_state(SessionId(1)), Some(ProbeState::WaitingProbe));
        // A second update while waiting for the probe is absorbed.
        assert!(rl
            .handle(Packet::Update {
                session: SessionId(1)
            })
            .is_empty());
    }

    #[test]
    fn probe_moves_session_back_from_unrestricted() {
        let mut rl = link();
        rl.handle(join(1, 500e6));
        rl.handle(join(2, 500e6));
        rl.handle(response(1, ResponseKind::Response, 20e6, LinkId(3)));
        rl.handle(response(2, ResponseKind::Response, 50e6, LinkId(7)));
        // Pretend session 1 was moved to F_e by a SetBottleneck.
        rl.handle(Packet::SetBottleneck {
            session: SessionId(1),
            found: true,
        });
        assert_eq!(rl.unrestricted().collect::<Vec<_>>(), vec![SessionId(1)]);
        // A new probe for session 1 pulls it back into R_e.
        let actions = rl.handle(Packet::Probe {
            session: SessionId(1),
            rate: 500e6,
            restricting: LinkId(0),
        });
        assert!(rl.restricted().any(|s| s == SessionId(1)));
        assert!(matches!(
            actions.last().unwrap(),
            Action::SendDownstream(Packet::Probe { .. })
        ));
    }

    #[test]
    fn set_bottleneck_moves_unrestricted_session_and_wakes_the_rest() {
        let mut rl = link();
        rl.handle(join(1, 500e6));
        rl.handle(join(2, 500e6));
        // Session 1 is restricted elsewhere at 20 Mbps; session 2 settles at
        // this link's rate.
        rl.handle(response(1, ResponseKind::Response, 20e6, LinkId(3)));
        rl.handle(response(2, ResponseKind::Response, 50e6, LinkId(7)));
        let actions = rl.handle(Packet::SetBottleneck {
            session: SessionId(1),
            found: true,
        });
        // Session 1 moves to F_e; session 2 (idle at the old B_e) is asked to
        // re-probe because its share can now grow to 80 Mbps.
        assert_eq!(rl.unrestricted().collect::<Vec<_>>(), vec![SessionId(1)]);
        assert!(actions.contains(&Action::SendUpstream(Packet::Update {
            session: SessionId(2)
        })));
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::SendDownstream(Packet::SetBottleneck { .. }))));
        assert!((rl.bottleneck_rate() - 80e6).abs() < 1e-3);
    }

    #[test]
    fn set_bottleneck_confirms_when_link_is_a_bottleneck() {
        let mut rl = link();
        rl.handle(join(1, 500e6));
        rl.handle(response(1, ResponseKind::Response, CAP, LinkId(7)));
        let actions = rl.handle(Packet::SetBottleneck {
            session: SessionId(1),
            found: false,
        });
        assert_eq!(
            actions,
            vec![Action::SendDownstream(Packet::SetBottleneck {
                session: SessionId(1),
                found: true
            })]
        );
    }

    #[test]
    fn leave_releases_bandwidth_and_wakes_survivors() {
        let mut rl = link();
        rl.handle(join(1, 500e6));
        rl.handle(join(2, 500e6));
        rl.handle(response(1, ResponseKind::Response, 50e6, LinkId(7)));
        rl.handle(response(2, ResponseKind::Response, 50e6, LinkId(7)));
        let actions = rl.handle(Packet::Leave {
            session: SessionId(1),
        });
        assert!(actions.contains(&Action::SendUpstream(Packet::Update {
            session: SessionId(2)
        })));
        assert!(actions.contains(&Action::SendDownstream(Packet::Leave {
            session: SessionId(1)
        })));
        assert_eq!(rl.session_count(), 1);
        assert!((rl.bottleneck_rate() - CAP).abs() < 1e-3);
    }

    #[test]
    fn packets_for_unknown_sessions_are_dropped() {
        let mut rl = link();
        assert!(rl
            .handle(Packet::Update {
                session: SessionId(9)
            })
            .is_empty());
        assert!(rl
            .handle(Packet::Bottleneck {
                session: SessionId(9)
            })
            .is_empty());
        assert!(rl
            .handle(Packet::SetBottleneck {
                session: SessionId(9),
                found: true
            })
            .is_empty());
        assert!(rl
            .handle(response(9, ResponseKind::Response, 1.0, LinkId(0)))
            .is_empty());
        // Leave still forwards so downstream links can clean up.
        let actions = rl.handle(Packet::Leave {
            session: SessionId(9),
        });
        assert_eq!(actions.len(), 1);
    }

    #[test]
    fn process_new_restricted_reclaims_sessions_that_reach_be() {
        let mut rl = link();
        // Three sessions: session 1 is restricted elsewhere at 25 Mbps,
        // sessions 2 and 3 settle at this link's bottleneck rate.
        rl.handle(join(1, 500e6));
        rl.handle(join(2, 500e6));
        rl.handle(join(3, 500e6));
        rl.handle(response(1, ResponseKind::Response, 25e6, LinkId(3)));
        rl.handle(response(2, ResponseKind::Response, CAP / 3.0, LinkId(7)));
        rl.handle(response(3, ResponseKind::Response, CAP / 3.0, LinkId(7)));
        // Session 1's SetBottleneck parks it in F_e and wakes 2 and 3, whose
        // share grows to 37.5 Mbps; let their probe cycles complete.
        rl.handle(Packet::SetBottleneck {
            session: SessionId(1),
            found: true,
        });
        assert!(rl.unrestricted().any(|s| s == SessionId(1)));
        for s in [2u64, 3u64] {
            rl.handle(Packet::Probe {
                session: SessionId(s),
                rate: 500e6,
                restricting: LinkId(0),
            });
            rl.handle(response(s, ResponseKind::Response, 37.5e6, LinkId(7)));
        }
        assert!((rl.bottleneck_rate() - 37.5e6).abs() < 1e-3);
        // A fourth join makes B_e drop to 25 Mbps, level with session 1's
        // parked rate, so ProcessNewRestricted pulls it back into R_e and asks
        // the sessions idle above the new B_e to re-probe.
        let actions = rl.handle(join(4, 500e6));
        assert!(rl.restricted().any(|s| s == SessionId(1)));
        assert!((rl.bottleneck_rate() - 25e6).abs() < 1e-3);
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::SendUpstream(Packet::Update { .. }))));
    }

    #[test]
    fn bottleneck_packet_forwarded_only_for_idle_restricted_sessions() {
        let mut rl = link();
        rl.handle(join(1, 500e6));
        rl.handle(response(1, ResponseKind::Response, CAP, LinkId(7)));
        let forwarded = rl.handle(Packet::Bottleneck {
            session: SessionId(1),
        });
        assert_eq!(forwarded.len(), 1);
        // While a probe is pending the packet is absorbed.
        rl.handle(Packet::Update {
            session: SessionId(1),
        });
        assert!(rl
            .handle(Packet::Bottleneck {
                session: SessionId(1)
            })
            .is_empty());
    }
}
