//! The `RouterLink(e)` task (Figure 2 of the paper).
//!
//! One `RouterLink` instance manages one directed link `e`. It keeps, for the
//! sessions crossing the link, the set `R_e` of sessions (so far) restricted
//! at `e`, the set `F_e` of sessions restricted elsewhere, and for each
//! session its probe state `μ_e^s` and its assigned rate `λ_e^s`. The link's
//! *bottleneck rate* is `B_e = (C_e − Σ_{s∈F_e} λ_e^s) / |R_e|`.
//!
//! The per-session state lives in a dense slot table: parallel arrays of
//! identifiers, probe states, assigned rates and an `R_e`-membership bit,
//! addressed through a single id → slot map. Set scans become linear walks
//! over flat arrays, `|R_e|` and `Σ_{s∈F_e} λ_e^s` are maintained
//! incrementally so `B_e` is O(1), and handlers emit into a caller-provided
//! [`ActionBuffer`] instead of allocating a fresh `Vec<Action>` per packet.

use crate::packet::{Packet, ResponseKind};
use crate::task::{Action, ActionBuffer, ProbeState};
use bneck_maxmin::{IdSlotMap, Rate, SessionId, Tolerance};
use bneck_net::LinkId;

/// Per-session state kept by a [`RouterLink`]: identifier, assigned rate
/// `λ_e^s` (`NaN` while unknown), probe state `μ_e^s` and the `R_e`/`F_e`
/// membership bit, packed into one small record.
///
/// `repr(C)` pins the layout to 24 bytes with every per-packet field (`id`,
/// `lambda`, `mu`, `in_r`) inside the same cache line as the record itself —
/// the set scans walk `members` linearly, so each line the prefetcher pulls
/// carries two-and-a-bit complete records and no cold padding.
#[derive(Debug, Clone, Copy)]
#[repr(C)]
struct Member {
    id: SessionId,
    lambda: Rate,
    mu: ProbeState,
    in_r: bool,
}

/// The per-link task of the B-Neck protocol.
///
/// Handlers mirror the `when` blocks of Figure 2 and emit the [`Action`]s
/// (packets to regenerate upstream or downstream) the link produces in
/// response into the buffer passed to [`RouterLink::handle`].
#[derive(Debug, Clone)]
pub struct RouterLink {
    link: LinkId,
    capacity: Rate,
    tol: Tolerance,
    /// One record per crossing session; a single cache line covers a
    /// member's whole state, which matters once hundreds of thousands of
    /// sessions spread the working set far beyond the caches. Slot order is
    /// unspecified: removals swap the last slot in.
    members: Vec<Member>,
    /// Session id → slot in `members`, as an open-addressing table inlined
    /// into the task (16-byte entries, no second heap indirection): resolving
    /// a packet touches the link's own entry line and then the member record,
    /// one or two predictable cache lines in total.
    index: IdSlotMap,
    /// `|R_e|`, maintained incrementally.
    restricted_len: usize,
    /// Number of `R_e` members whose probe state is not `Idle`, maintained
    /// incrementally. The bottleneck-detection scans ("is every restricted
    /// session idle at `B_e`?") are gated on this being zero, so the common
    /// mid-convergence case rejects in O(1) instead of walking the slots.
    restricted_not_idle: usize,
    /// `Σ_{s∈F_e} λ_e^s` over the slots with a recorded rate, maintained
    /// incrementally (reset to exactly zero whenever the count drains, so
    /// float drift cannot accumulate across membership churn).
    f_assigned: Rate,
    /// Number of `F_e` slots currently contributing to `f_assigned`.
    f_assigned_len: usize,
    /// Upper bound on the largest `λ` of an `F_e` member (`-∞` when `F_e`
    /// has no rated member). Raised eagerly, tightened to the exact maximum
    /// whenever the reclaim scan of `ProcessNewRestricted` runs anyway, so
    /// the "can any F_e member reach `B_e`?" test is O(1) between scans.
    f_best: Rate,
    /// Upper bound on the largest `λ` of an *idle* `R_e` member, with the
    /// same raise-eagerly / tighten-on-scan policy; gates the wake scans.
    idle_best: Rate,
    /// Generation of the `B_e` inputs: bumped whenever `|R_e|` or
    /// `Σ_{F_e} λ` changes (i.e. whenever `B_e` itself may move).
    be_epoch: u64,
    /// Number of `R_e` members idle with `λ` tol-equal to `B_e`, valid while
    /// `at_be_epoch == be_epoch`; maintained incrementally by the probe-state
    /// and rate writers, rebuilt by one scan after `B_e` moves. Keeps the
    /// bottleneck-detection test ("all of `R_e` settled at `B_e`?") O(1) per
    /// packet on mega-shared links, where per-packet scans would be
    /// quadratic over a convergence wave.
    at_be_count: usize,
    at_be_epoch: u64,
}

impl RouterLink {
    /// Creates the task for link `e` with the given capacity (in bits per
    /// second) and rate-comparison tolerance.
    pub fn new(link: LinkId, capacity: Rate, tol: Tolerance) -> Self {
        RouterLink {
            link,
            capacity,
            tol,
            // xlint: allow(HOT001, reason = "task construction, once per link at topology build time")
            members: Vec::new(),
            index: IdSlotMap::new(),
            restricted_len: 0,
            restricted_not_idle: 0,
            f_assigned: 0.0,
            f_assigned_len: 0,
            f_best: f64::NEG_INFINITY,
            idle_best: f64::NEG_INFINITY,
            be_epoch: 0,
            at_be_count: 0,
            at_be_epoch: u64::MAX,
        }
    }

    /// The link this task manages.
    pub fn link(&self) -> LinkId {
        self.link
    }

    /// The link's capacity in bits per second (`C_e`).
    pub fn capacity(&self) -> Rate {
        self.capacity
    }

    /// The sessions currently restricted at this link (`R_e`), in unspecified
    /// order.
    pub fn restricted(&self) -> impl Iterator<Item = SessionId> + '_ {
        self.members.iter().filter(|m| m.in_r).map(|m| m.id)
    }

    /// The sessions crossing this link but restricted elsewhere (`F_e`), in
    /// unspecified order.
    pub fn unrestricted(&self) -> impl Iterator<Item = SessionId> + '_ {
        self.members.iter().filter(|m| !m.in_r).map(|m| m.id)
    }

    /// Number of sessions this link currently knows about.
    pub fn session_count(&self) -> usize {
        self.members.len()
    }

    /// The probe state `μ_e^s` of a session, if the session is known.
    pub fn probe_state(&self, session: SessionId) -> Option<ProbeState> {
        self.slot(session).map(|i| self.members[i].mu)
    }

    /// The assigned rate `λ_e^s` of a session, if one has been recorded.
    pub fn assigned_rate(&self, session: SessionId) -> Option<Rate> {
        let i = self.slot(session)?;
        if self.members[i].lambda.is_nan() {
            None
        } else {
            Some(self.members[i].lambda)
        }
    }

    /// The link's current bottleneck rate estimate `B_e`.
    ///
    /// Returns `f64::INFINITY` when no session is restricted at this link (the
    /// link then imposes no restriction).
    pub fn bottleneck_rate(&self) -> Rate {
        if self.restricted_len == 0 {
            return f64::INFINITY;
        }
        (self.capacity - self.f_assigned).max(0.0) / self.restricted_len as f64
    }

    /// `true` when the link satisfies the stability conditions of
    /// Definition 2 of the paper: every known session is `IDLE`, every session
    /// in `R_e` sits exactly at `B_e`, and (when `R_e` is non-empty) every
    /// session in `F_e` sits strictly below `B_e`.
    pub fn is_stable(&self) -> bool {
        let be = self.bottleneck_rate();
        for m in &self.members {
            if !m.mu.is_idle() || m.lambda.is_nan() {
                return false;
            }
            if m.in_r {
                if self.tol.ne(m.lambda, be) {
                    return false;
                }
            } else if self.restricted_len > 0 && !self.tol.lt(m.lambda, be) {
                return false;
            }
        }
        true
    }

    /// Below this many members, id → slot resolution scans the member records
    /// directly: the scan walks the same one or two cache lines the handler
    /// is about to touch anyway, where a table probe would chase a separate
    /// line first. Access and stub links — the long, cache-cold tail of a
    /// paper-scale topology — carry a handful of sessions each, so this is
    /// the common case; the table still indexes every member and takes over
    /// on the heavily shared backbone links.
    const SCAN_MEMBERS: usize = 8;

    fn slot(&self, session: SessionId) -> Option<usize> {
        if self.members.len() <= Self::SCAN_MEMBERS {
            return self.members.iter().position(|m| m.id == session);
        }
        self.index.get(session).map(|i| i as usize)
    }

    /// Touches the id → slot entry and member record of `session` without
    /// acting on them: a software prefetch by early load. The engine's batch
    /// loop calls this for packet *i + 1* before handling packet *i*, so the
    /// next packet's two dependent cache lines are already in flight while
    /// the current handler runs. Unknown sessions cost one probe and warm
    /// the table all the same.
    pub fn warm(&self, session: SessionId) {
        if self.members.len() <= Self::SCAN_MEMBERS {
            // Small link: the lookup is a scan of the member records, so
            // loading the first record warms the line(s) the scan will walk.
            if let Some(m) = self.members.first() {
                std::hint::black_box(m.in_r);
            }
            return;
        }
        if let Some(i) = self.index.get(session) {
            if let Some(m) = self.members.get(i as usize) {
                std::hint::black_box(m.in_r);
            }
        }
    }

    /// Ensures a slot for `session`, creating it in `F_e` with no probe state
    /// and no rate, and returns its index.
    fn ensure_slot(&mut self, session: SessionId) -> usize {
        if let Some(i) = self.slot(session) {
            return i;
        }
        let i = self.members.len();
        self.members.push(Member {
            id: session,
            lambda: f64::NAN,
            mu: ProbeState::Idle,
            in_r: false,
        });
        self.index.insert(session, i as u32);
        i
    }

    /// Writes the slot's probe state, keeping the non-idle count, the
    /// idle-rate bound and the settled counter in sync.
    fn set_mu(&mut self, i: usize, state: ProbeState) {
        let m = self.members[i];
        if m.in_r {
            let tracked = self.at_be_epoch == self.be_epoch && !m.lambda.is_nan();
            match (m.mu.is_idle(), state.is_idle()) {
                (true, false) => {
                    self.restricted_not_idle += 1;
                    if tracked && self.tol.eq(m.lambda, self.bottleneck_rate()) {
                        self.at_be_count -= 1;
                    }
                }
                (false, true) => {
                    self.restricted_not_idle -= 1;
                    if !m.lambda.is_nan() {
                        self.idle_best = self.idle_best.max(m.lambda);
                    }
                    if tracked && self.tol.eq(m.lambda, self.bottleneck_rate()) {
                        self.at_be_count += 1;
                    }
                }
                _ => {}
            }
        }
        self.members[i].mu = state;
    }

    /// Moves the slot into `R_e`, keeping `|R_e|` and `Σ_{F_e} λ` in sync.
    fn move_to_r(&mut self, i: usize) {
        let m = self.members[i];
        if m.in_r {
            return;
        }
        self.be_epoch += 1;
        self.members[i].in_r = true;
        self.restricted_len += 1;
        if !m.mu.is_idle() {
            self.restricted_not_idle += 1;
        } else if !m.lambda.is_nan() {
            self.idle_best = self.idle_best.max(m.lambda);
        }
        if !m.lambda.is_nan() {
            self.f_assigned_len -= 1;
            if self.f_assigned_len == 0 {
                self.f_assigned = 0.0;
            } else {
                self.f_assigned -= m.lambda;
            }
        }
    }

    /// Moves the slot into `F_e`, keeping `|R_e|` and `Σ_{F_e} λ` in sync.
    fn move_to_f(&mut self, i: usize) {
        let m = self.members[i];
        if !m.in_r {
            return;
        }
        self.be_epoch += 1;
        self.members[i].in_r = false;
        self.restricted_len -= 1;
        if !m.mu.is_idle() {
            self.restricted_not_idle -= 1;
        }
        if !m.lambda.is_nan() {
            self.f_assigned_len += 1;
            self.f_assigned += m.lambda;
            self.f_best = self.f_best.max(m.lambda);
        }
    }

    /// Records the slot's assigned rate, keeping `Σ_{F_e} λ` in sync.
    fn set_lambda(&mut self, i: usize, rate: Rate) {
        let m = self.members[i];
        if !m.in_r {
            // The F_e sum — and thus B_e — changes.
            self.be_epoch += 1;
            if !m.lambda.is_nan() {
                self.f_assigned -= m.lambda;
            } else {
                self.f_assigned_len += 1;
            }
            self.members[i].lambda = rate;
            self.f_assigned += rate;
            self.f_best = self.f_best.max(rate);
            return;
        }
        // B_e is unchanged for an R_e member; track the settled counter.
        if m.mu.is_idle() {
            if self.at_be_epoch == self.be_epoch {
                let be = self.bottleneck_rate();
                if !m.lambda.is_nan() && self.tol.eq(m.lambda, be) {
                    self.at_be_count -= 1;
                }
                if self.tol.eq(rate, be) {
                    self.at_be_count += 1;
                }
            }
            self.idle_best = self.idle_best.max(rate);
        }
        self.members[i].lambda = rate;
    }

    /// Drops the slot entirely (swap-remove; the last slot moves into `i`).
    fn remove_slot(&mut self, i: usize) {
        self.be_epoch += 1;
        let m = self.members[i];
        if m.in_r {
            self.restricted_len -= 1;
            if !m.mu.is_idle() {
                self.restricted_not_idle -= 1;
            }
        } else if !m.lambda.is_nan() {
            self.f_assigned_len -= 1;
            if self.f_assigned_len == 0 {
                self.f_assigned = 0.0;
                self.f_best = f64::NEG_INFINITY;
            } else {
                self.f_assigned -= m.lambda;
            }
        }
        self.index.remove(m.id);
        self.members.swap_remove(i);
        if i < self.members.len() {
            self.index.insert(self.members[i].id, i as u32);
        }
    }

    /// `true` when every `R_e` member is idle with `λ` exactly at `B_e` —
    /// the common core of the bottleneck-detection conditions of Figure 2.
    /// O(1) per call: the non-idle count rejects unsettled links outright,
    /// and the at-`B_e` counter is rebuilt by one scan only after `B_e`
    /// itself moved.
    fn settled(&mut self) -> bool {
        if self.restricted_not_idle > 0 {
            return false;
        }
        if self.at_be_epoch != self.be_epoch {
            let be = self.bottleneck_rate();
            self.at_be_count = self
                .members
                .iter()
                .filter(|m| {
                    m.in_r && m.mu.is_idle() && !m.lambda.is_nan() && self.tol.eq(m.lambda, be)
                })
                .count();
            self.at_be_epoch = self.be_epoch;
        }
        self.at_be_count == self.restricted_len
    }

    /// Handles a received packet, emitting the actions the link performs into
    /// `actions`.
    ///
    /// Packets for sessions this link does not know about (which can only
    /// happen transiently around a `Leave`) are dropped, except `Join` and
    /// `Leave` which are always meaningful.
    pub fn handle(&mut self, packet: Packet, actions: &mut ActionBuffer) {
        match packet {
            Packet::Join {
                session,
                rate,
                restricting,
            } => self.on_join(session, rate, restricting, actions),
            Packet::Probe {
                session,
                rate,
                restricting,
            } => self.on_probe(session, rate, restricting, actions),
            Packet::Response {
                session,
                kind,
                rate,
                restricting,
            } => self.on_response(session, kind, rate, restricting, actions),
            Packet::Update { session } => self.on_update(session, actions),
            Packet::Bottleneck { session } => self.on_bottleneck(session, actions),
            Packet::SetBottleneck { session, found } => {
                self.on_set_bottleneck(session, found, actions)
            }
            Packet::Leave { session } => self.on_leave(session, actions),
        }
    }

    /// `ProcessNewRestricted()` (Figure 2, lines 4–10): pull back into `R_e`
    /// the sessions of `F_e` whose rate reaches the bottleneck rate, then ask
    /// the idle sessions of `R_e` whose rate exceeds `B_e` to re-probe.
    fn process_new_restricted(&mut self, actions: &mut ActionBuffer) {
        // Only F_e members with a recorded rate can be reclaimed, and only
        // when the largest such rate reaches B_e; the `f_best` upper bound
        // rejects both in O(1). A stale-high bound costs one scan, which
        // tightens it back to the exact maximum.
        while self.f_assigned_len > 0 && self.tol.ge(self.f_best, self.bottleneck_rate()) {
            let be = self.bottleneck_rate();
            let mut lambda_max = f64::NEG_INFINITY;
            let mut has_candidate = false;
            for m in &self.members {
                if m.in_r || m.lambda.is_nan() {
                    continue;
                }
                lambda_max = lambda_max.max(m.lambda);
                has_candidate |= self.tol.ge(m.lambda, be);
            }
            if !has_candidate {
                self.f_best = lambda_max;
                break;
            }
            for i in 0..self.members.len() {
                let m = self.members[i];
                if !m.in_r && !m.lambda.is_nan() && self.tol.eq(m.lambda, lambda_max) {
                    self.move_to_r(i);
                }
            }
        }
        // Waking needs an idle restricted member whose rate exceeds B_e; the
        // `idle_best` upper bound rejects in O(1), and a scan that wakes
        // nothing tightens it.
        let be = self.bottleneck_rate();
        if self.restricted_len == self.restricted_not_idle || !self.tol.gt(self.idle_best, be) {
            return;
        }
        let mut remaining_best = f64::NEG_INFINITY;
        for i in 0..self.members.len() {
            let m = self.members[i];
            if !m.in_r || !m.mu.is_idle() || m.lambda.is_nan() {
                continue;
            }
            if self.tol.gt(m.lambda, be) {
                self.set_mu(i, ProbeState::WaitingProbe);
                actions.push(Action::SendUpstream(Packet::Update { session: m.id }));
            } else {
                remaining_best = remaining_best.max(m.lambda);
            }
        }
        self.idle_best = remaining_best;
    }

    /// Figure 2, lines 12–16.
    fn on_join(
        &mut self,
        session: SessionId,
        rate: Rate,
        restricting: LinkId,
        actions: &mut ActionBuffer,
    ) {
        let i = self.ensure_slot(session);
        self.move_to_r(i);
        self.set_mu(i, ProbeState::WaitingResponse);
        self.process_new_restricted(actions);
        let be = self.bottleneck_rate();
        let (rate, restricting) = if self.tol.gt(rate, be) {
            (be, self.link)
        } else {
            (rate, restricting)
        };
        actions.push(Action::SendDownstream(Packet::Join {
            session,
            rate,
            restricting,
        }));
    }

    /// Figure 2, lines 30–36.
    fn on_probe(
        &mut self,
        session: SessionId,
        rate: Rate,
        restricting: LinkId,
        actions: &mut ActionBuffer,
    ) {
        // A Probe for a session the link has never seen behaves like a Join
        // (this can only happen if state was lost, e.g. around a Leave race).
        let i = self.ensure_slot(session);
        self.move_to_r(i);
        self.set_mu(i, ProbeState::WaitingResponse);
        self.process_new_restricted(actions);
        let be = self.bottleneck_rate();
        let (rate, restricting) = if self.tol.gt(rate, be) {
            (be, self.link)
        } else {
            (rate, restricting)
        };
        actions.push(Action::SendDownstream(Packet::Probe {
            session,
            rate,
            restricting,
        }));
    }

    /// Figure 2, lines 18–28.
    fn on_response(
        &mut self,
        session: SessionId,
        mut kind: ResponseKind,
        rate: Rate,
        mut restricting: LinkId,
        actions: &mut ActionBuffer,
    ) {
        let Some(i) = self.slot(session) else {
            return;
        };
        if kind == ResponseKind::Update {
            self.set_mu(i, ProbeState::WaitingProbe);
        } else {
            let be = self.bottleneck_rate();
            let accepted = (restricting == self.link && self.tol.eq(rate, be))
                || (restricting != self.link && self.tol.le(rate, be));
            if accepted {
                self.set_mu(i, ProbeState::Idle);
                self.set_lambda(i, rate);
            } else {
                // Either this link was reported as the restriction but its
                // bottleneck rate has moved, or the rate now exceeds B_e.
                kind = ResponseKind::Update;
                self.set_mu(i, ProbeState::WaitingProbe);
            }
            // Bottleneck detection: every restricted session is idle at B_e
            // (cached verdict; the non-idle count inside rejects the common
            // mid-convergence case in O(1)).
            let all_settled = self.restricted_len > 0 && self.settled();
            if all_settled {
                kind = ResponseKind::Bottleneck;
                restricting = self.link;
                for j in 0..self.members.len() {
                    let m = self.members[j];
                    if m.in_r && m.id != session {
                        actions.push(Action::SendUpstream(Packet::Bottleneck { session: m.id }));
                    }
                }
            }
        }
        actions.push(Action::SendUpstream(Packet::Response {
            session,
            kind,
            rate,
            restricting,
        }));
    }

    /// Figure 2, lines 38–40.
    fn on_update(&mut self, session: SessionId, actions: &mut ActionBuffer) {
        let Some(i) = self.slot(session) else {
            return;
        };
        if self.members[i].mu.is_idle() {
            self.set_mu(i, ProbeState::WaitingProbe);
            actions.push(Action::SendUpstream(Packet::Update { session }));
        }
    }

    /// Figure 2, lines 42–43.
    fn on_bottleneck(&mut self, session: SessionId, actions: &mut ActionBuffer) {
        let Some(i) = self.slot(session) else {
            return;
        };
        let m = self.members[i];
        if m.mu.is_idle() && m.in_r {
            actions.push(Action::SendUpstream(Packet::Bottleneck { session }));
        }
    }

    /// Figure 2, lines 45–55.
    fn on_set_bottleneck(&mut self, session: SessionId, found: bool, actions: &mut ActionBuffer) {
        let Some(i) = self.slot(session) else {
            return;
        };
        let be = self.bottleneck_rate();
        let all_settled = self.settled();
        let idle = self.members[i].mu.is_idle();
        let lambda_i = self.members[i].lambda;
        if all_settled {
            // This link is (or imposes no objection to being) a bottleneck for
            // its restricted sessions: confirm the bottleneck downstream.
            actions.push(Action::SendDownstream(Packet::SetBottleneck {
                session,
                found: true,
            }));
        } else if idle && !lambda_i.is_nan() && self.tol.lt(lambda_i, be) {
            // The session is restricted elsewhere: move it to F_e and wake the
            // sessions that may now increase their rate.
            self.wake_idle_at(be, Some(session), actions);
            self.move_to_f(i);
            actions.push(Action::SendDownstream(Packet::SetBottleneck {
                session,
                found,
            }));
        } else if idle && !lambda_i.is_nan() && self.tol.eq(lambda_i, be) {
            actions.push(Action::SendDownstream(Packet::SetBottleneck {
                session,
                found,
            }));
        }
        // Otherwise the packet is absorbed: a Probe cycle for this session is
        // in flight and will settle the rate again.
    }

    /// Figure 2, lines 57–62.
    fn on_leave(&mut self, session: SessionId, actions: &mut ActionBuffer) {
        let be = self.bottleneck_rate();
        self.wake_idle_at(be, Some(session), actions);
        if let Some(i) = self.slot(session) {
            self.remove_slot(i);
        }
        actions.push(Action::SendDownstream(Packet::Leave { session }));
    }

    /// Wakes (sets `WaitingProbe` and emits an `Update` for) every idle `R_e`
    /// member whose rate sits exactly at `be`, except `skip`. Gated by the
    /// `idle_best` bound: when no idle member can reach `be`, the scan is
    /// skipped in O(1); a scan that runs tightens the bound back to the exact
    /// maximum of the idle members it leaves behind.
    fn wake_idle_at(&mut self, be: Rate, skip: Option<SessionId>, actions: &mut ActionBuffer) {
        if self.restricted_len == self.restricted_not_idle || !self.tol.ge(self.idle_best, be) {
            return;
        }
        let mut remaining_best = f64::NEG_INFINITY;
        for j in 0..self.members.len() {
            let m = self.members[j];
            if !m.in_r || !m.mu.is_idle() || m.lambda.is_nan() {
                continue;
            }
            if Some(m.id) != skip && self.tol.eq(m.lambda, be) {
                self.set_mu(j, ProbeState::WaitingProbe);
                actions.push(Action::SendUpstream(Packet::Update { session: m.id }));
            } else {
                remaining_best = remaining_best.max(m.lambda);
            }
        }
        self.idle_best = remaining_best;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAP: Rate = 100e6;

    fn link() -> RouterLink {
        RouterLink::new(LinkId(7), CAP, Tolerance::default())
    }

    /// Test shim: runs one packet through the handler and collects the
    /// emitted actions.
    fn handle(rl: &mut RouterLink, packet: Packet) -> Vec<Action> {
        let mut buf = ActionBuffer::new();
        rl.handle(packet, &mut buf);
        buf.into_vec()
    }

    fn join(s: u64, rate: Rate) -> Packet {
        Packet::Join {
            session: SessionId(s),
            rate,
            restricting: LinkId(0),
        }
    }

    fn response(s: u64, kind: ResponseKind, rate: Rate, restricting: LinkId) -> Packet {
        Packet::Response {
            session: SessionId(s),
            kind,
            rate,
            restricting,
        }
    }

    #[test]
    fn join_lowers_the_advertised_rate_to_be() {
        let mut rl = link();
        let actions = handle(&mut rl, join(1, 500e6));
        assert_eq!(actions.len(), 1);
        match actions[0] {
            Action::SendDownstream(Packet::Join {
                session,
                rate,
                restricting,
            }) => {
                assert_eq!(session, SessionId(1));
                assert_eq!(rate, CAP); // one session: B_e = C_e
                assert_eq!(restricting, LinkId(7));
            }
            ref other => panic!("unexpected action {other:?}"),
        }
        assert_eq!(
            rl.probe_state(SessionId(1)),
            Some(ProbeState::WaitingResponse)
        );
        assert_eq!(rl.restricted().count(), 1);
    }

    #[test]
    fn join_keeps_a_smaller_upstream_restriction() {
        let mut rl = link();
        let actions = handle(&mut rl, join(1, 10e6));
        match actions[0] {
            Action::SendDownstream(Packet::Join {
                rate, restricting, ..
            }) => {
                assert_eq!(rate, 10e6);
                assert_eq!(restricting, LinkId(0));
            }
            ref other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn second_join_splits_the_bottleneck_rate() {
        let mut rl = link();
        handle(&mut rl, join(1, 500e6));
        let actions = handle(&mut rl, join(2, 500e6));
        match actions.last().unwrap() {
            Action::SendDownstream(Packet::Join { rate, .. }) => {
                assert!((rate - 50e6).abs() < 1e-3);
            }
            other => panic!("unexpected action {other:?}"),
        }
        assert!((rl.bottleneck_rate() - 50e6).abs() < 1e-3);
    }

    #[test]
    fn response_matching_be_becomes_idle_and_detects_bottleneck() {
        let mut rl = link();
        handle(&mut rl, join(1, 500e6));
        let actions = handle(&mut rl, response(1, ResponseKind::Response, CAP, LinkId(7)));
        // Single session at B_e: the link declares itself a bottleneck.
        assert_eq!(actions.len(), 1);
        match actions[0] {
            Action::SendUpstream(Packet::Response {
                kind, restricting, ..
            }) => {
                assert_eq!(kind, ResponseKind::Bottleneck);
                assert_eq!(restricting, LinkId(7));
            }
            ref other => panic!("unexpected action {other:?}"),
        }
        assert_eq!(rl.probe_state(SessionId(1)), Some(ProbeState::Idle));
        assert_eq!(rl.assigned_rate(SessionId(1)), Some(CAP));
        assert!(rl.is_stable());
    }

    #[test]
    fn response_with_stale_restriction_requests_update() {
        let mut rl = link();
        handle(&mut rl, join(1, 500e6));
        handle(&mut rl, join(2, 500e6));
        // Session 1's response claims this link restricted it at 100 Mbps, but
        // with two sessions B_e is now 50 Mbps: the link asks for a new probe.
        let actions = handle(&mut rl, response(1, ResponseKind::Response, CAP, LinkId(7)));
        match actions.last().unwrap() {
            Action::SendUpstream(Packet::Response { kind, .. }) => {
                assert_eq!(*kind, ResponseKind::Update);
            }
            other => panic!("unexpected action {other:?}"),
        }
        assert_eq!(rl.probe_state(SessionId(1)), Some(ProbeState::WaitingProbe));
    }

    #[test]
    fn response_restricted_elsewhere_below_be_is_accepted() {
        let mut rl = link();
        handle(&mut rl, join(1, 500e6));
        handle(&mut rl, join(2, 500e6));
        let actions = handle(
            &mut rl,
            response(1, ResponseKind::Response, 20e6, LinkId(3)),
        );
        match actions.last().unwrap() {
            Action::SendUpstream(Packet::Response { kind, rate, .. }) => {
                assert_eq!(*kind, ResponseKind::Response);
                assert_eq!(*rate, 20e6);
            }
            other => panic!("unexpected action {other:?}"),
        }
        assert_eq!(rl.assigned_rate(SessionId(1)), Some(20e6));
        assert_eq!(rl.probe_state(SessionId(1)), Some(ProbeState::Idle));
    }

    #[test]
    fn bottleneck_detection_notifies_other_restricted_sessions() {
        let mut rl = link();
        handle(&mut rl, join(1, 500e6));
        handle(&mut rl, join(2, 500e6));
        // Both sessions settle at the 50 Mbps bottleneck rate.
        handle(
            &mut rl,
            response(1, ResponseKind::Response, 50e6, LinkId(7)),
        );
        let actions = handle(
            &mut rl,
            response(2, ResponseKind::Response, 50e6, LinkId(7)),
        );
        let bottleneck_notifications: Vec<_> = actions
            .iter()
            .filter(|a| matches!(a, Action::SendUpstream(Packet::Bottleneck { .. })))
            .collect();
        assert_eq!(bottleneck_notifications.len(), 1);
        match actions.last().unwrap() {
            Action::SendUpstream(Packet::Response { kind, .. }) => {
                assert_eq!(*kind, ResponseKind::Bottleneck);
            }
            other => panic!("unexpected action {other:?}"),
        }
        assert!(rl.is_stable());
    }

    #[test]
    fn update_only_propagates_for_idle_sessions() {
        let mut rl = link();
        handle(&mut rl, join(1, 500e6));
        // Session still waiting for its response: update is absorbed.
        assert!(handle(
            &mut rl,
            Packet::Update {
                session: SessionId(1)
            }
        )
        .is_empty());
        handle(&mut rl, response(1, ResponseKind::Response, CAP, LinkId(7)));
        let actions = handle(
            &mut rl,
            Packet::Update {
                session: SessionId(1),
            },
        );
        assert_eq!(
            actions,
            vec![Action::SendUpstream(Packet::Update {
                session: SessionId(1)
            })]
        );
        assert_eq!(rl.probe_state(SessionId(1)), Some(ProbeState::WaitingProbe));
        // A second update while waiting for the probe is absorbed.
        assert!(handle(
            &mut rl,
            Packet::Update {
                session: SessionId(1)
            }
        )
        .is_empty());
    }

    #[test]
    fn probe_moves_session_back_from_unrestricted() {
        let mut rl = link();
        handle(&mut rl, join(1, 500e6));
        handle(&mut rl, join(2, 500e6));
        handle(
            &mut rl,
            response(1, ResponseKind::Response, 20e6, LinkId(3)),
        );
        handle(
            &mut rl,
            response(2, ResponseKind::Response, 50e6, LinkId(7)),
        );
        // Pretend session 1 was moved to F_e by a SetBottleneck.
        handle(
            &mut rl,
            Packet::SetBottleneck {
                session: SessionId(1),
                found: true,
            },
        );
        assert_eq!(rl.unrestricted().collect::<Vec<_>>(), vec![SessionId(1)]);
        // A new probe for session 1 pulls it back into R_e.
        let actions = handle(
            &mut rl,
            Packet::Probe {
                session: SessionId(1),
                rate: 500e6,
                restricting: LinkId(0),
            },
        );
        assert!(rl.restricted().any(|s| s == SessionId(1)));
        assert!(matches!(
            actions.last().unwrap(),
            Action::SendDownstream(Packet::Probe { .. })
        ));
    }

    #[test]
    fn set_bottleneck_moves_unrestricted_session_and_wakes_the_rest() {
        let mut rl = link();
        handle(&mut rl, join(1, 500e6));
        handle(&mut rl, join(2, 500e6));
        // Session 1 is restricted elsewhere at 20 Mbps; session 2 settles at
        // this link's rate.
        handle(
            &mut rl,
            response(1, ResponseKind::Response, 20e6, LinkId(3)),
        );
        handle(
            &mut rl,
            response(2, ResponseKind::Response, 50e6, LinkId(7)),
        );
        let actions = handle(
            &mut rl,
            Packet::SetBottleneck {
                session: SessionId(1),
                found: true,
            },
        );
        // Session 1 moves to F_e; session 2 (idle at the old B_e) is asked to
        // re-probe because its share can now grow to 80 Mbps.
        assert_eq!(rl.unrestricted().collect::<Vec<_>>(), vec![SessionId(1)]);
        assert!(actions.contains(&Action::SendUpstream(Packet::Update {
            session: SessionId(2)
        })));
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::SendDownstream(Packet::SetBottleneck { .. }))));
        assert!((rl.bottleneck_rate() - 80e6).abs() < 1e-3);
    }

    #[test]
    fn set_bottleneck_confirms_when_link_is_a_bottleneck() {
        let mut rl = link();
        handle(&mut rl, join(1, 500e6));
        handle(&mut rl, response(1, ResponseKind::Response, CAP, LinkId(7)));
        let actions = handle(
            &mut rl,
            Packet::SetBottleneck {
                session: SessionId(1),
                found: false,
            },
        );
        assert_eq!(
            actions,
            vec![Action::SendDownstream(Packet::SetBottleneck {
                session: SessionId(1),
                found: true
            })]
        );
    }

    #[test]
    fn leave_releases_bandwidth_and_wakes_survivors() {
        let mut rl = link();
        handle(&mut rl, join(1, 500e6));
        handle(&mut rl, join(2, 500e6));
        handle(
            &mut rl,
            response(1, ResponseKind::Response, 50e6, LinkId(7)),
        );
        handle(
            &mut rl,
            response(2, ResponseKind::Response, 50e6, LinkId(7)),
        );
        let actions = handle(
            &mut rl,
            Packet::Leave {
                session: SessionId(1),
            },
        );
        assert!(actions.contains(&Action::SendUpstream(Packet::Update {
            session: SessionId(2)
        })));
        assert!(actions.contains(&Action::SendDownstream(Packet::Leave {
            session: SessionId(1)
        })));
        assert_eq!(rl.session_count(), 1);
        assert!((rl.bottleneck_rate() - CAP).abs() < 1e-3);
    }

    #[test]
    fn packets_for_unknown_sessions_are_dropped() {
        let mut rl = link();
        assert!(handle(
            &mut rl,
            Packet::Update {
                session: SessionId(9)
            }
        )
        .is_empty());
        assert!(handle(
            &mut rl,
            Packet::Bottleneck {
                session: SessionId(9)
            }
        )
        .is_empty());
        assert!(handle(
            &mut rl,
            Packet::SetBottleneck {
                session: SessionId(9),
                found: true
            }
        )
        .is_empty());
        assert!(handle(&mut rl, response(9, ResponseKind::Response, 1.0, LinkId(0))).is_empty());
        // Leave still forwards so downstream links can clean up.
        let actions = handle(
            &mut rl,
            Packet::Leave {
                session: SessionId(9),
            },
        );
        assert_eq!(actions.len(), 1);
    }

    #[test]
    fn process_new_restricted_reclaims_sessions_that_reach_be() {
        let mut rl = link();
        // Three sessions: session 1 is restricted elsewhere at 25 Mbps,
        // sessions 2 and 3 settle at this link's bottleneck rate.
        handle(&mut rl, join(1, 500e6));
        handle(&mut rl, join(2, 500e6));
        handle(&mut rl, join(3, 500e6));
        handle(
            &mut rl,
            response(1, ResponseKind::Response, 25e6, LinkId(3)),
        );
        handle(
            &mut rl,
            response(2, ResponseKind::Response, CAP / 3.0, LinkId(7)),
        );
        handle(
            &mut rl,
            response(3, ResponseKind::Response, CAP / 3.0, LinkId(7)),
        );
        // Session 1's SetBottleneck parks it in F_e and wakes 2 and 3, whose
        // share grows to 37.5 Mbps; let their probe cycles complete.
        handle(
            &mut rl,
            Packet::SetBottleneck {
                session: SessionId(1),
                found: true,
            },
        );
        assert!(rl.unrestricted().any(|s| s == SessionId(1)));
        for s in [2u64, 3u64] {
            handle(
                &mut rl,
                Packet::Probe {
                    session: SessionId(s),
                    rate: 500e6,
                    restricting: LinkId(0),
                },
            );
            handle(
                &mut rl,
                response(s, ResponseKind::Response, 37.5e6, LinkId(7)),
            );
        }
        assert!((rl.bottleneck_rate() - 37.5e6).abs() < 1e-3);
        // A fourth join makes B_e drop to 25 Mbps, level with session 1's
        // parked rate, so ProcessNewRestricted pulls it back into R_e and asks
        // the sessions idle above the new B_e to re-probe.
        let actions = handle(&mut rl, join(4, 500e6));
        assert!(rl.restricted().any(|s| s == SessionId(1)));
        assert!((rl.bottleneck_rate() - 25e6).abs() < 1e-3);
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::SendUpstream(Packet::Update { .. }))));
    }

    #[test]
    fn bottleneck_packet_forwarded_only_for_idle_restricted_sessions() {
        let mut rl = link();
        handle(&mut rl, join(1, 500e6));
        handle(&mut rl, response(1, ResponseKind::Response, CAP, LinkId(7)));
        let forwarded = handle(
            &mut rl,
            Packet::Bottleneck {
                session: SessionId(1),
            },
        );
        assert_eq!(forwarded.len(), 1);
        // While a probe is pending the packet is absorbed.
        handle(
            &mut rl,
            Packet::Update {
                session: SessionId(1),
            },
        );
        assert!(handle(
            &mut rl,
            Packet::Bottleneck {
                session: SessionId(1)
            }
        )
        .is_empty());
    }

    #[test]
    fn incremental_aggregates_survive_membership_churn() {
        // Drive a slot through R_e → F_e → leave while another session churns,
        // and cross-check B_e against a from-scratch recomputation.
        let recompute_be = |rl: &RouterLink| -> Rate {
            let r = rl.restricted().count();
            if r == 0 {
                return f64::INFINITY;
            }
            let assigned: Rate = rl.unrestricted().filter_map(|s| rl.assigned_rate(s)).sum();
            (rl.capacity() - assigned).max(0.0) / r as f64
        };
        let mut rl = link();
        for s in 1..=4u64 {
            handle(&mut rl, join(s, 500e6));
        }
        handle(
            &mut rl,
            response(1, ResponseKind::Response, 10e6, LinkId(3)),
        );
        handle(
            &mut rl,
            Packet::SetBottleneck {
                session: SessionId(1),
                found: true,
            },
        );
        assert!((rl.bottleneck_rate() - recompute_be(&rl)).abs() < 1e-6);
        handle(
            &mut rl,
            response(2, ResponseKind::Response, 30e6, LinkId(7)),
        );
        handle(
            &mut rl,
            Packet::Leave {
                session: SessionId(1),
            },
        );
        assert!((rl.bottleneck_rate() - recompute_be(&rl)).abs() < 1e-6);
        handle(
            &mut rl,
            Packet::Leave {
                session: SessionId(3),
            },
        );
        assert!((rl.bottleneck_rate() - recompute_be(&rl)).abs() < 1e-6);
        assert_eq!(rl.session_count(), 2);
    }
}
