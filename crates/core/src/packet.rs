//! The B-Neck protocol packets (Section III-B of the paper).

use bneck_maxmin::{Rate, SessionId};
use bneck_net::LinkId;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::fmt;

/// The `τ` field of a [`Packet::Response`]: the next action the source node
/// must perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum ResponseKind {
    /// A plain answer to a Probe cycle carrying the granted rate.
    Response,
    /// The rate could not be settled; the source must start a new Probe cycle.
    Update,
    /// The carried rate is the session's max-min fair rate (a link on the path
    /// identified itself as the session's bottleneck).
    Bottleneck,
}

/// A B-Neck protocol packet.
///
/// `Join`, `Probe`, `SetBottleneck` and `Leave` travel *downstream* (along the
/// session's path); `Response`, `Update` and `Bottleneck` travel *upstream*
/// (along the reverse path).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum Packet {
    /// Announces a new session and acts as the first Probe of its Probe cycle.
    /// `rate` is the estimated bottleneck rate `λ` gathered so far and
    /// `restricting` the link `η` with the smallest bottleneck rate found.
    Join {
        /// The joining session.
        session: SessionId,
        /// Estimated bottleneck rate gathered along the path so far.
        rate: Rate,
        /// Link that imposed the strongest restriction so far.
        restricting: LinkId,
    },
    /// Like `Join`, but sent whenever the session's rate must be recomputed.
    Probe {
        /// The probing session.
        session: SessionId,
        /// Estimated bottleneck rate gathered along the path so far.
        rate: Rate,
        /// Link that imposed the strongest restriction so far.
        restricting: LinkId,
    },
    /// Closes a Probe cycle, carrying the granted rate back to the source.
    Response {
        /// The session the response belongs to.
        session: SessionId,
        /// What the source must do next (`τ`).
        kind: ResponseKind,
        /// The rate `λ` that can be assigned to the session.
        rate: Rate,
        /// The link `η` that imposed the strongest restriction.
        restricting: LinkId,
    },
    /// Tells the source that a new Probe cycle must be performed.
    Update {
        /// The session that must re-probe.
        session: SessionId,
    },
    /// Tells the source that its current rate is its max-min fair rate.
    Bottleneck {
        /// The session whose rate is now stable.
        session: SessionId,
    },
    /// Sent downstream by the source once its rate is assumed stable, so the
    /// links that do not restrict the session move it from `R_e` to `F_e`.
    /// `found` is the `β` flag: `true` once some link on the path (or the
    /// session's own demand) has been identified as a bottleneck.
    SetBottleneck {
        /// The session whose rate is assumed stable.
        session: SessionId,
        /// Whether a bottleneck has been found so far on the path.
        found: bool,
    },
    /// Announces the session's departure so links can drop its state.
    Leave {
        /// The departing session.
        session: SessionId,
    },
}

impl Packet {
    /// The session this packet belongs to.
    pub fn session(&self) -> SessionId {
        match *self {
            Packet::Join { session, .. }
            | Packet::Probe { session, .. }
            | Packet::Response { session, .. }
            | Packet::Update { session }
            | Packet::Bottleneck { session }
            | Packet::SetBottleneck { session, .. }
            | Packet::Leave { session } => session,
        }
    }

    /// The packet's kind, used for accounting.
    pub fn kind(&self) -> PacketKind {
        match self {
            Packet::Join { .. } => PacketKind::Join,
            Packet::Probe { .. } => PacketKind::Probe,
            Packet::Response { .. } => PacketKind::Response,
            Packet::Update { .. } => PacketKind::Update,
            Packet::Bottleneck { .. } => PacketKind::Bottleneck,
            Packet::SetBottleneck { .. } => PacketKind::SetBottleneck,
            Packet::Leave { .. } => PacketKind::Leave,
        }
    }

    /// `true` if the packet travels downstream (along the session's path).
    pub fn is_downstream(&self) -> bool {
        matches!(
            self,
            Packet::Join { .. }
                | Packet::Probe { .. }
                | Packet::SetBottleneck { .. }
                | Packet::Leave { .. }
        )
    }

    /// `true` if the packet travels upstream (along the reverse path).
    pub fn is_upstream(&self) -> bool {
        !self.is_downstream()
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Packet::Join {
                session,
                rate,
                restricting,
            } => write!(f, "Join({session}, {rate:.0}, {restricting})"),
            Packet::Probe {
                session,
                rate,
                restricting,
            } => write!(f, "Probe({session}, {rate:.0}, {restricting})"),
            Packet::Response {
                session,
                kind,
                rate,
                restricting,
            } => write!(f, "Response({session}, {kind:?}, {rate:.0}, {restricting})"),
            Packet::Update { session } => write!(f, "Update({session})"),
            Packet::Bottleneck { session } => write!(f, "Bottleneck({session})"),
            Packet::SetBottleneck { session, found } => {
                write!(f, "SetBottleneck({session}, {found})")
            }
            Packet::Leave { session } => write!(f, "Leave({session})"),
        }
    }
}

/// The seven packet kinds, used as keys for packet accounting (Figure 6 of the
/// paper breaks down control traffic by these kinds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum PacketKind {
    /// A `Join` packet.
    Join,
    /// A `Probe` packet.
    Probe,
    /// A `Response` packet.
    Response,
    /// An `Update` packet.
    Update,
    /// A `Bottleneck` packet.
    Bottleneck,
    /// A `SetBottleneck` packet.
    SetBottleneck,
    /// A `Leave` packet.
    Leave,
}

impl PacketKind {
    /// All packet kinds, in a stable order.
    pub const ALL: [PacketKind; 7] = [
        PacketKind::Join,
        PacketKind::Probe,
        PacketKind::Response,
        PacketKind::Update,
        PacketKind::Bottleneck,
        PacketKind::SetBottleneck,
        PacketKind::Leave,
    ];

    /// A stable dense index, usable with arrays of length 7.
    pub fn index(self) -> usize {
        match self {
            PacketKind::Join => 0,
            PacketKind::Probe => 1,
            PacketKind::Response => 2,
            PacketKind::Update => 3,
            PacketKind::Bottleneck => 4,
            PacketKind::SetBottleneck => 5,
            PacketKind::Leave => 6,
        }
    }

    /// The packet kind's name as it appears in the paper.
    pub fn name(self) -> &'static str {
        match self {
            PacketKind::Join => "Join",
            PacketKind::Probe => "Probe",
            PacketKind::Response => "Response",
            PacketKind::Update => "Update",
            PacketKind::Bottleneck => "Bottleneck",
            PacketKind::SetBottleneck => "SetBottleneck",
            PacketKind::Leave => "Leave",
        }
    }
}

impl fmt::Display for PacketKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_packets() -> Vec<Packet> {
        vec![
            Packet::Join {
                session: SessionId(1),
                rate: 1e6,
                restricting: LinkId(0),
            },
            Packet::Probe {
                session: SessionId(1),
                rate: 1e6,
                restricting: LinkId(0),
            },
            Packet::Response {
                session: SessionId(1),
                kind: ResponseKind::Bottleneck,
                rate: 1e6,
                restricting: LinkId(2),
            },
            Packet::Update {
                session: SessionId(1),
            },
            Packet::Bottleneck {
                session: SessionId(1),
            },
            Packet::SetBottleneck {
                session: SessionId(1),
                found: true,
            },
            Packet::Leave {
                session: SessionId(1),
            },
        ]
    }

    #[test]
    fn kinds_and_sessions_are_consistent() {
        for (packet, kind) in sample_packets().iter().zip(PacketKind::ALL) {
            assert_eq!(packet.kind(), kind);
            assert_eq!(packet.session(), SessionId(1));
        }
    }

    #[test]
    fn direction_classification() {
        for packet in sample_packets() {
            match packet.kind() {
                PacketKind::Join
                | PacketKind::Probe
                | PacketKind::SetBottleneck
                | PacketKind::Leave => {
                    assert!(packet.is_downstream());
                    assert!(!packet.is_upstream());
                }
                _ => {
                    assert!(packet.is_upstream());
                    assert!(!packet.is_downstream());
                }
            }
        }
    }

    #[test]
    fn kind_indices_are_dense_and_unique() {
        let mut seen = [false; 7];
        for kind in PacketKind::ALL {
            assert!(!seen[kind.index()]);
            seen[kind.index()] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn display_is_informative() {
        for packet in sample_packets() {
            let text = packet.to_string();
            assert!(text.contains("s1"), "{text} should mention the session");
        }
        assert_eq!(PacketKind::SetBottleneck.to_string(), "SetBottleneck");
    }
}
