//! The reliability shim: per-lane sequence numbers, acknowledgements and
//! timeout-based retransmission over unreliable channels.
//!
//! The paper's protocol assumes reliable FIFO delivery between tasks; under a
//! fault-injecting channel plan (see [`bneck_sim::FaultPlan`]) that assumption
//! breaks, and B-Neck can get stuck (a lost `Response` strands a probe cycle)
//! or converge to wrong rates (a duplicated `Update` double-counts). The
//! recovery layer restores exactly the delivery guarantees the proofs need —
//! loss-free, duplicate-free, in-order per lane — with the classic minimal
//! machinery:
//!
//! * every transmitted protocol packet travels inside a sequenced frame on a
//!   *lane* identified by `(session, directed link)` — the unit over which
//!   the paper's FIFO assumption holds (session identifiers are never reused
//!   for concurrently active sessions, so a lane cannot be confused across
//!   incarnations);
//! * the receiver acks every frame (acks travel over the reverse channel and
//!   are themselves subject to faults), delivers in-order frames immediately,
//!   buffers out-of-order ones, and drops duplicates (re-acking them, since
//!   the previous ack may have been the casualty);
//! * the sender keeps unacked frames and retransmits on a configurable
//!   timeout until acked. Retransmission timers are simulator events, so a
//!   recovered run reaches quiescence only after the last timer expires — the
//!   measurable "price of reliability" recorded in `BENCH_NOTES.md`.
//!
//! The whole layer is config-gated behind
//! [`BneckConfig::with_recovery`](crate::BneckConfig::with_recovery): in
//! paper mode (`recovery: None`) no frame, ack or timer is ever constructed
//! and the hot send/dispatch paths keep their pristine shape.

use crate::packet::Packet;
use bneck_maxmin::SessionId;
use bneck_net::{Delay, LinkId};
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Tunables of the recovery layer.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct RecoveryConfig {
    /// The retransmission timeout. Must comfortably exceed one data + ack
    /// round trip of the slowest lane, or spurious retransmissions (harmless
    /// but wasteful) pile up.
    pub rto: Delay,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            rto: Delay::from_micros(500),
        }
    }
}

impl RecoveryConfig {
    /// A config with the given retransmission timeout.
    ///
    /// # Panics
    ///
    /// Panics if `rto` is zero (a zero timeout would retransmit in the same
    /// instant the frame is sent).
    pub fn with_rto(rto: Delay) -> Self {
        assert!(
            rto > Delay::ZERO,
            "the retransmission timeout must be positive"
        );
        RecoveryConfig { rto }
    }
}

/// One reliability lane: the stream of frames one session's packets form
/// over one directed link. Sequence numbers are per-lane.
///
/// Public because the lane/sequence machinery is shared with the `bneck-node`
/// multi-node runtime, which runs the same recovery layer over real
/// transports instead of simulator channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Lane {
    /// The session whose packets form the lane.
    pub session: SessionId,
    /// Dense index of the directed link the lane runs over.
    pub link: u32,
}

impl Lane {
    /// The lane of `session`'s packets over directed link `link`.
    pub fn new(session: SessionId, link: LinkId) -> Self {
        Lane {
            session,
            link: link.index() as u32,
        }
    }
}

/// A sent-but-unacked frame, kept for retransmission.
#[derive(Debug, Clone, Copy)]
pub struct PendingFrame<T> {
    /// The directed link the frame travels over.
    pub over: LinkId,
    /// The receiving task.
    pub target: T,
    /// The framed protocol packet.
    pub packet: Packet,
}

/// Counters of the recovery layer's work, for reports and overhead
/// measurements.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct RecoveryStats {
    /// Sequenced data frames sent (first transmissions only).
    pub frames_sent: u64,
    /// Frames retransmitted after a timeout.
    pub retransmits: u64,
    /// Acknowledgements sent.
    pub acks_sent: u64,
    /// Duplicate frames discarded at the receiver (and re-acked).
    pub duplicates_dropped: u64,
    /// Out-of-order frames buffered until their gap filled.
    pub reordered_buffered: u64,
}

/// The sender/receiver state of the recovery layer. Generic over the host's
/// target type (the harness's private `Target`, the node runtime's wire
/// target) so the module depends on neither.
#[derive(Debug)]
pub struct RecoveryState<T> {
    /// The layer's tunables.
    pub config: RecoveryConfig,
    /// Next sequence number to assign, per sending lane.
    pub next_seq: BTreeMap<Lane, u32>,
    /// Next sequence number expected, per receiving lane.
    pub expected: BTreeMap<Lane, u32>,
    /// Sent frames not yet acknowledged.
    pub unacked: BTreeMap<(Lane, u32), PendingFrame<T>>,
    /// Frames that arrived ahead of a gap, waiting for in-order delivery.
    pub buffered: BTreeMap<(Lane, u32), PendingFrame<T>>,
    /// Work counters, for reports and overhead measurements.
    pub stats: RecoveryStats,
}

impl<T> RecoveryState<T> {
    /// An empty state with the given tunables.
    pub fn new(config: RecoveryConfig) -> Self {
        RecoveryState {
            config,
            next_seq: BTreeMap::new(),
            expected: BTreeMap::new(),
            unacked: BTreeMap::new(),
            buffered: BTreeMap::new(),
            stats: RecoveryStats::default(),
        }
    }

    /// Assigns the next sequence number of a sending lane.
    pub fn assign_seq(&mut self, lane: Lane) -> u32 {
        let seq = self.next_seq.entry(lane).or_insert(0);
        let assigned = *seq;
        *seq += 1;
        assigned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_order_and_compare() {
        let a = Lane::new(SessionId(1), LinkId(0));
        let b = Lane::new(SessionId(1), LinkId(1));
        let c = Lane::new(SessionId(2), LinkId(0));
        assert!(a < b && b < c);
        assert_eq!(a, Lane::new(SessionId(1), LinkId(0)));
    }

    #[test]
    fn sequence_numbers_are_per_lane() {
        let mut state: RecoveryState<()> = RecoveryState::new(RecoveryConfig::default());
        let a = Lane::new(SessionId(1), LinkId(0));
        let b = Lane::new(SessionId(1), LinkId(1));
        assert_eq!(state.assign_seq(a), 0);
        assert_eq!(state.assign_seq(a), 1);
        assert_eq!(state.assign_seq(b), 0);
        assert_eq!(state.assign_seq(a), 2);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_rto_is_rejected() {
        let _ = RecoveryConfig::with_rto(Delay::ZERO);
    }
}
