//! Configuration of a B-Neck simulation.

use crate::recovery::RecoveryConfig;
use bneck_maxmin::Tolerance;
use bneck_net::Delay;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Tunable parameters of a [`crate::harness::BneckSimulation`].
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct BneckConfig {
    /// Size of a control packet in bits, used to compute per-link transmission
    /// times (the paper models both transmission and propagation times).
    pub packet_bits: u64,
    /// Tolerance used for every rate comparison performed by the protocol.
    pub tolerance: Tolerance,
    /// When `true`, every packet transmission is logged with its timestamp so
    /// experiments can build per-interval traffic breakdowns (Figures 6 and 8
    /// of the paper). Costs memory proportional to the total packet count.
    pub record_packet_log: bool,
    /// When `true`, every `API.Rate` notification is recorded with its
    /// timestamp (used to study convergence behaviour over time).
    pub record_rate_history: bool,
    /// When set, protocol packets travel inside sequenced, acknowledged and
    /// retransmitted frames (see [`crate::recovery`]), making the protocol
    /// correct over lossy, duplicating or reordering channels. `None` (the
    /// default) is paper mode: channels are assumed reliable and the hot path
    /// carries no recovery machinery.
    #[cfg_attr(feature = "serde", serde(default))]
    pub recovery: Option<RecoveryConfig>,
}

impl Default for BneckConfig {
    fn default() -> Self {
        BneckConfig {
            packet_bits: 256,
            tolerance: Tolerance::default(),
            record_packet_log: false,
            record_rate_history: false,
            recovery: None,
        }
    }
}

impl BneckConfig {
    /// Enables the per-packet log.
    pub fn with_packet_log(mut self) -> Self {
        self.record_packet_log = true;
        self
    }

    /// Enables the `API.Rate` history.
    pub fn with_rate_history(mut self) -> Self {
        self.record_rate_history = true;
        self
    }

    /// Sets the control packet size in bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero.
    pub fn with_packet_bits(mut self, bits: u64) -> Self {
        assert!(bits > 0, "control packets must have a positive size");
        self.packet_bits = bits;
        self
    }

    /// Sets the rate-comparison tolerance.
    pub fn with_tolerance(mut self, tolerance: Tolerance) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Enables the recovery layer with the given retransmission timeout.
    ///
    /// # Panics
    ///
    /// Panics if `rto` is zero.
    pub fn with_recovery(mut self, rto: Delay) -> Self {
        self.recovery = Some(RecoveryConfig::with_rto(rto));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_values() {
        let c = BneckConfig::default();
        assert_eq!(c.packet_bits, 256);
        assert!(!c.record_packet_log);
        assert!(!c.record_rate_history);
        assert!(c.recovery.is_none());
    }

    #[test]
    fn recovery_builder_sets_the_rto() {
        let c = BneckConfig::default().with_recovery(Delay::from_micros(250));
        assert_eq!(c.recovery.unwrap().rto, Delay::from_micros(250));
    }

    #[test]
    fn builder_methods_compose() {
        let c = BneckConfig::default()
            .with_packet_log()
            .with_rate_history()
            .with_packet_bits(512)
            .with_tolerance(Tolerance::new(1e-6, 1.0));
        assert!(c.record_packet_log);
        assert!(c.record_rate_history);
        assert_eq!(c.packet_bits, 512);
        assert_eq!(c.tolerance, Tolerance::new(1e-6, 1.0));
    }

    #[test]
    #[should_panic(expected = "positive size")]
    fn zero_packet_size_rejected() {
        let _ = BneckConfig::default().with_packet_bits(0);
    }
}
