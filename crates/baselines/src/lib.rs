//! # bneck-baselines
//!
//! Re-implementations of the three non-quiescent protocols the paper compares
//! B-Neck against in Experiment 3:
//!
//! * [`bfyz`] — **BFYZ** (Bartal, Farach-Colton, Yooseph, Zhang), representing
//!   the family of explicit-rate max-min algorithms that keep *per-session
//!   state* at every router. Implemented as consistent-marking explicit-rate
//!   probing: each link records every session's current rate and advertises a
//!   water-filled share.
//! * [`cg`] — **CG** (Cobb & Gouda), representing stabilizing algorithms that
//!   keep only *constant state* per router: each link estimates the number of
//!   sessions crossing it and advertises an equal share of its capacity.
//! * [`rcp`] — **RCP** (Dukkipati et al.), representing modern explicit
//!   congestion controllers: each link maintains a single advertised rate
//!   updated with a proportional control law, without per-session state.
//!
//! All three run on the same periodic-probing harness ([`common`]): sources
//! keep sending probe packets forever (they cannot detect convergence), links
//! stamp their advertised rate, destinations echo responses, and sources adopt
//! the granted rate — which is exactly why, unlike B-Neck, these protocols
//! keep injecting control traffic after the rates have converged (Figure 8 of
//! the paper).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfyz;
pub mod cg;
pub mod common;
pub mod rcp;

pub use bfyz::Bfyz;
pub use cg::CobbGouda;
pub use common::{
    BaselineConfig, BaselineProtocol, BaselineSimulation, BaselineStats, LinkController,
};
pub use rcp::Rcp;

use bneck_net::Network;
use bneck_workload::{ProtocolRegistry, ProtocolWorld};

/// The display names of the three baselines, in the order the paper's
/// Experiment 3 reports them.
pub const BASELINE_NAMES: [&str; 3] = ["BFYZ", "CG", "RCP"];

/// Registers the three baselines (with default parameters and
/// [`BaselineConfig::default`]) in a [`ProtocolRegistry`], so registry-driven
/// experiment drivers can build them by name next to B-Neck.
pub fn register_baselines(registry: &mut ProtocolRegistry) {
    registry.register("BFYZ", |network| {
        Box::new(BaselineSimulation::new(
            network,
            Bfyz::default(),
            BaselineConfig::default(),
        ))
    });
    registry.register("CG", |network| {
        Box::new(BaselineSimulation::new(
            network,
            CobbGouda::default(),
            BaselineConfig::default(),
        ))
    });
    registry.register("RCP", |network| {
        Box::new(BaselineSimulation::new(
            network,
            Rcp::default(),
            BaselineConfig::default(),
        ))
    });
}

/// Builds a baseline simulation by its display name (`BFYZ`, `CG` or `RCP`)
/// behind the unified [`ProtocolWorld`] trait, or `None` for unknown names.
///
/// This is the dispatch boundary of the experiment drivers: the runner in
/// `bneck-bench` holds `&mut dyn ProtocolWorld`, so adding a protocol here
/// (or an entirely new harness implementing the trait) requires no change to
/// the runner itself.
pub fn baseline_by_name<'a>(
    name: &str,
    network: &'a Network,
    config: BaselineConfig,
) -> Option<Box<dyn ProtocolWorld + 'a>> {
    match name {
        "BFYZ" => Some(Box::new(BaselineSimulation::new(
            network,
            Bfyz::default(),
            config,
        ))),
        "CG" => Some(Box::new(BaselineSimulation::new(
            network,
            CobbGouda::default(),
            config,
        ))),
        "RCP" => Some(Box::new(BaselineSimulation::new(
            network,
            Rcp::default(),
            config,
        ))),
        _ => None,
    }
}

/// Commonly used items, suitable for glob import.
pub mod prelude {
    pub use crate::bfyz::Bfyz;
    pub use crate::cg::CobbGouda;
    pub use crate::common::{
        BaselineConfig, BaselineProtocol, BaselineSimulation, BaselineStats, LinkController,
    };
    pub use crate::rcp::Rcp;
}
