//! RCP: the explicit congestion-controller baseline.
//!
//! RCP ("Processor sharing flows in the internet", Dukkipati et al.) keeps a
//! single advertised rate `R` per link, periodically updated with a
//! proportional control law driven by the measured aggregate input rate `y`:
//!
//! ```text
//! R ← R · (1 + α · (C − y) / C)
//! ```
//!
//! Every source uses the minimum `R` along its path. The controller needs no
//! per-session state and reaches processor-sharing (max-min on a single
//! bottleneck) rates in steady state, but it has to keep receiving traffic to
//! measure `y`, so it is inherently non-quiescent, and with heterogeneous
//! paths it only approximates the global max-min allocation — matching the
//! paper's observation that it fails to converge exactly for larger session
//! counts.

use crate::common::{BaselineProtocol, LinkController};
use bneck_maxmin::{Rate, SessionId};
use bneck_net::Delay;
use bneck_sim::SimTime;

/// The RCP baseline protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rcp {
    /// Interval at which every source re-probes its path.
    pub probe_interval: Delay,
    /// Control-law update period of every link.
    pub update_interval: Delay,
    /// Proportional gain `α` of the control law.
    pub alpha: f64,
    /// Initial advertised rate, as a fraction of the link capacity.
    pub initial_fraction: f64,
}

impl Default for Rcp {
    fn default() -> Self {
        Rcp {
            probe_interval: Delay::from_millis(1),
            update_interval: Delay::from_millis(1),
            alpha: 0.4,
            initial_fraction: 0.5,
        }
    }
}

impl BaselineProtocol for Rcp {
    type Controller = RcpController;

    fn name(&self) -> &'static str {
        "RCP"
    }

    fn controller(&self, capacity: Rate) -> RcpController {
        RcpController {
            capacity,
            alpha: self.alpha,
            update_interval: self.update_interval,
            rate: capacity * self.initial_fraction,
            last_update: SimTime::ZERO,
            offered_in_window: 0.0,
        }
    }

    fn probe_interval(&self) -> Delay {
        self.probe_interval
    }

    /// RCP's single-rate control law reaches processor sharing on one
    /// bottleneck but only approximates global max-min with heterogeneous
    /// paths (as the paper observes), so only a loose bound is documented
    /// and asserted.
    fn mean_error_tolerance_pct(&self) -> f64 {
        60.0
    }
}

/// Per-link state of RCP: one advertised rate plus the traffic measurement of
/// the current window — no per-session state.
#[derive(Debug, Clone, Copy)]
pub struct RcpController {
    capacity: Rate,
    alpha: f64,
    update_interval: Delay,
    rate: Rate,
    last_update: SimTime,
    offered_in_window: Rate,
}

impl RcpController {
    /// The rate the link currently advertises to every session.
    pub fn advertised_rate(&self) -> Rate {
        self.rate
    }
}

impl LinkController for RcpController {
    fn on_probe(&mut self, _session: SessionId, demand: Rate, current: Rate, now: SimTime) -> Rate {
        // Aggregate offered load: each session contributes its current rate
        // once per probe interval (sessions that have not adopted a rate yet
        // contribute a fraction of their demand, as their first packets would).
        self.offered_in_window += if current > 0.0 { current } else { demand * 0.1 };
        if now.saturating_since(self.last_update) >= self.update_interval {
            let y = self.offered_in_window;
            let feedback = self.alpha * (self.capacity - y) / self.capacity;
            self.rate = (self.rate * (1.0 + feedback)).clamp(self.capacity * 1e-3, self.capacity);
            self.offered_in_window = 0.0;
            self.last_update = now;
        }
        self.rate
    }

    fn on_leave(&mut self, _session: SessionId) {
        // No per-session state to clean up; the measured load drops by itself.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_converges_towards_the_fair_share_of_one_bottleneck() {
        let mut c = Rcp::default().controller(100e6);
        // Two sessions probing every millisecond; their current rates follow
        // what the controller advertised in the previous round (as the real
        // sources would).
        let mut current = [0.0f64; 2];
        for ms in 1..200u64 {
            for (i, rate) in current.iter_mut().enumerate() {
                let adv = c.on_probe(
                    SessionId(i as u64),
                    100e6,
                    *rate,
                    SimTime::from_millis(ms) + Delay::from_micros(i as u64),
                );
                *rate = adv;
            }
        }
        let share = c.advertised_rate();
        assert!(
            (share - 50e6).abs() < 10e6,
            "advertised rate {share} should approach the 50 Mbps fair share"
        );
    }

    #[test]
    fn underload_raises_the_advertised_rate() {
        let mut c = Rcp::default().controller(100e6);
        let initial = c.advertised_rate();
        for ms in 1..20u64 {
            c.on_probe(SessionId(0), 100e6, 1e6, SimTime::from_millis(ms));
        }
        assert!(c.advertised_rate() > initial);
    }

    #[test]
    fn overload_lowers_the_advertised_rate() {
        let mut c = Rcp::default().controller(100e6);
        let initial = c.advertised_rate();
        for ms in 1..20u64 {
            for s in 0..4u64 {
                c.on_probe(SessionId(s), 100e6, 80e6, SimTime::from_millis(ms));
            }
        }
        assert!(c.advertised_rate() < initial);
        c.on_leave(SessionId(0));
    }

    #[test]
    fn advertised_rate_stays_within_bounds() {
        let mut c = Rcp::default().controller(100e6);
        for ms in 1..500u64 {
            for s in 0..16u64 {
                c.on_probe(SessionId(s), 100e6, 100e6, SimTime::from_millis(ms));
            }
        }
        assert!(c.advertised_rate() >= 100e3);
        assert!(c.advertised_rate() <= 100e6);
    }

    #[test]
    fn protocol_metadata() {
        let p = Rcp::default();
        assert_eq!(p.name(), "RCP");
        assert_eq!(p.probe_interval(), Delay::from_millis(1));
    }
}
