//! CG: the constant-state stabilizing baseline.
//!
//! Cobb and Gouda's "Stabilization of max-min fair networks without per-flow
//! state" computes max-min fair rates while storing only a constant amount of
//! information at each router. This re-implementation keeps, per link, just
//! two numbers: a smoothed estimate of how many sessions cross the link
//! (obtained by counting probe arrivals per measurement window) and the equal
//! share of the capacity derived from it.
//!
//! The constant-state estimate reacts slowly and only approximately tracks
//! the true session count, which is why (as in the paper's Experiment 3) this
//! baseline fails to converge to the exact max-min rates in a reasonable time
//! once more than a few hundred sessions are involved.

use crate::common::{BaselineProtocol, LinkController};
use bneck_maxmin::{Rate, SessionId};
use bneck_net::Delay;
use bneck_sim::SimTime;

/// The CG (Cobb–Gouda) baseline protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CobbGouda {
    /// Interval at which every source re-probes its path.
    pub probe_interval: Delay,
    /// Length of the per-link measurement window used to estimate the number
    /// of crossing sessions. Should be a small multiple of the probe
    /// interval.
    pub measurement_window: Delay,
    /// Exponential smoothing factor applied to the session-count estimate
    /// (0 = frozen, 1 = no smoothing).
    pub smoothing: f64,
}

impl Default for CobbGouda {
    fn default() -> Self {
        CobbGouda {
            probe_interval: Delay::from_millis(1),
            measurement_window: Delay::from_millis(2),
            smoothing: 0.5,
        }
    }
}

impl BaselineProtocol for CobbGouda {
    type Controller = CgController;

    fn name(&self) -> &'static str {
        "CG"
    }

    fn controller(&self, capacity: Rate) -> CgController {
        CgController {
            capacity,
            window: self.measurement_window,
            smoothing: self.smoothing,
            window_start: SimTime::ZERO,
            probes_in_window: 0,
            session_estimate: 1.0,
        }
    }

    fn probe_interval(&self) -> Delay {
        self.probe_interval
    }

    /// CG's constant-state equal-share estimate only approximates the
    /// max-min rates (the paper reports it failing to converge exactly); on
    /// multi-bottleneck instances its mean error can be large, so only a
    /// loose bound is documented and asserted.
    fn mean_error_tolerance_pct(&self) -> f64 {
        60.0
    }
}

/// Per-link state of CG: constant size, regardless of how many sessions cross
/// the link.
#[derive(Debug, Clone, Copy)]
pub struct CgController {
    capacity: Rate,
    window: Delay,
    smoothing: f64,
    window_start: SimTime,
    probes_in_window: u64,
    session_estimate: f64,
}

impl CgController {
    /// The link's current estimate of the number of crossing sessions.
    pub fn session_estimate(&self) -> f64 {
        self.session_estimate
    }

    /// The rate the link currently advertises: an equal share of its capacity
    /// based on the session-count estimate.
    pub fn advertised_rate(&self) -> Rate {
        self.capacity / self.session_estimate.max(1.0)
    }
}

impl LinkController for CgController {
    fn on_probe(
        &mut self,
        _session: SessionId,
        _demand: Rate,
        _current: Rate,
        now: SimTime,
    ) -> Rate {
        if now.saturating_since(self.window_start) >= self.window {
            // With the default parameters every active session probes twice
            // per measurement window, so half the raw count estimates the
            // session count.
            let measured = self.probes_in_window as f64 * 0.5;
            self.session_estimate =
                (1.0 - self.smoothing) * self.session_estimate + self.smoothing * measured.max(1.0);
            self.probes_in_window = 0;
            self.window_start = now;
        }
        self.probes_in_window += 1;
        self.advertised_rate()
    }

    fn on_leave(&mut self, _session: SessionId) {
        // Constant state: nothing per-session to erase. The estimate decays as
        // fewer probes arrive in subsequent windows.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_tracks_the_number_of_probing_sessions() {
        let mut c = CobbGouda::default().controller(100e6);
        // Three sessions probing every millisecond for 20 ms.
        for ms in 0..20u64 {
            for s in 0..3u64 {
                c.on_probe(
                    SessionId(s),
                    1e9,
                    0.0,
                    SimTime::from_millis(ms) + Delay::from_micros(s),
                );
            }
        }
        assert!(
            c.session_estimate() > 2.0,
            "estimate {} should approach the 3 probing sessions",
            c.session_estimate()
        );
        // The advertised rate is roughly an equal share.
        assert!(c.advertised_rate() < 60e6);
        assert!(c.advertised_rate() > 20e6);
    }

    #[test]
    fn estimate_decays_after_sessions_stop_probing() {
        let mut c = CobbGouda::default().controller(100e6);
        for ms in 0..10u64 {
            for s in 0..4u64 {
                c.on_probe(SessionId(s), 1e9, 0.0, SimTime::from_millis(ms));
            }
        }
        let busy = c.session_estimate();
        // Only one session keeps probing afterwards.
        for ms in 10..40u64 {
            c.on_probe(SessionId(0), 1e9, 0.0, SimTime::from_millis(ms));
        }
        assert!(c.session_estimate() < busy);
        c.on_leave(SessionId(0));
        assert!(c.advertised_rate() <= 100e6);
    }

    #[test]
    fn idle_link_advertises_its_capacity() {
        let c = CobbGouda::default().controller(100e6);
        assert_eq!(c.advertised_rate(), 100e6);
        assert_eq!(c.session_estimate(), 1.0);
    }

    #[test]
    fn protocol_metadata() {
        let p = CobbGouda::default();
        assert_eq!(p.name(), "CG");
        assert_eq!(p.probe_interval(), Delay::from_millis(1));
    }
}
