//! BFYZ: the per-session-state explicit-rate baseline.
//!
//! Bartal, Farach-Colton, Yooseph and Zhang's algorithm ("Fast, fair and
//! frugal bandwidth allocation in ATM networks") belongs to the family of
//! explicit-rate max-min protocols that keep per-session state at every
//! router. This re-implementation captures that family's operating principle
//! (consistent marking, as introduced by Charny et al.): every link records
//! the current rate of every session crossing it, computes a water-filled
//! advertised share, and stamps probe packets with it; sources adopt the
//! minimum stamp along their path and keep probing.
//!
//! Because the recorded rates lag behind the sources' reactions, the
//! advertised share transiently *overestimates* the max-min rate (for
//! example right after departures free capacity), which is the behaviour the
//! paper contrasts with B-Neck's conservative transient rates in Figure 7.

use crate::common::{BaselineProtocol, LinkController};
use bneck_maxmin::{Rate, SessionId};
use bneck_net::Delay;
use bneck_sim::SimTime;
use std::collections::BTreeMap;

/// The BFYZ baseline protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bfyz {
    /// Interval at which every source re-probes its path.
    pub probe_interval: Delay,
}

impl Default for Bfyz {
    fn default() -> Self {
        Bfyz {
            probe_interval: Delay::from_millis(1),
        }
    }
}

impl BaselineProtocol for Bfyz {
    type Controller = BfyzController;

    fn name(&self) -> &'static str {
        "BFYZ"
    }

    fn controller(&self, capacity: Rate) -> BfyzController {
        BfyzController {
            capacity,
            recorded: BTreeMap::new(),
        }
    }

    fn probe_interval(&self) -> Delay {
        self.probe_interval
    }

    /// BFYZ tracks per-session rates and water-fills, so after many probe
    /// intervals its mean error against the exact max-min rates stays within
    /// ~15% (the bound `baselines_end_to_end` and the cross-protocol
    /// conformance suite assert).
    fn mean_error_tolerance_pct(&self) -> f64 {
        15.0
    }
}

/// Per-link state of BFYZ: the recorded rate of every session crossing the
/// link (this is the per-session state the paper points out such algorithms
/// require).
#[derive(Debug, Clone)]
pub struct BfyzController {
    capacity: Rate,
    recorded: BTreeMap<SessionId, Rate>,
}

impl BfyzController {
    /// The advertised (water-filled) share: sessions whose recorded rate is
    /// below the share are treated as restricted elsewhere and keep their
    /// recording; the remaining capacity is split among the others.
    pub fn advertised_rate(&self) -> Rate {
        let mut rates: Vec<Rate> = self.recorded.values().copied().collect();
        if rates.is_empty() {
            return self.capacity;
        }
        rates.sort_by(|a, b| a.partial_cmp(b).expect("rates are never NaN"));
        let mut remaining = self.capacity;
        let mut n = rates.len();
        for rate in rates {
            let share = remaining / n as f64;
            if rate < share {
                remaining -= rate;
                n -= 1;
            } else {
                break;
            }
        }
        if n == 0 {
            self.capacity
        } else {
            remaining / n as f64
        }
    }

    /// Number of sessions with recorded state at this link.
    pub fn session_count(&self) -> usize {
        self.recorded.len()
    }
}

impl LinkController for BfyzController {
    fn on_probe(&mut self, session: SessionId, demand: Rate, current: Rate, _now: SimTime) -> Rate {
        // Record what the source currently transmits at (bounded by what it
        // wants); a fresh session that has not adopted any rate yet is
        // recorded at its demand, which is what produces the transient
        // overshoot typical of this family.
        let recorded = if current > 0.0 { current } else { demand };
        self.recorded.insert(session, recorded.min(demand));
        self.advertised_rate()
    }

    fn on_leave(&mut self, session: SessionId) {
        self.recorded.remove(&session);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> BfyzController {
        Bfyz::default().controller(100e6)
    }

    #[test]
    fn single_session_gets_the_full_capacity() {
        let mut c = controller();
        let adv = c.on_probe(SessionId(0), 1e9, 0.0, SimTime::ZERO);
        assert_eq!(adv, 100e6);
        assert_eq!(c.session_count(), 1);
    }

    #[test]
    fn equal_sessions_split_evenly() {
        let mut c = controller();
        c.on_probe(SessionId(0), 1e9, 0.0, SimTime::ZERO);
        c.on_probe(SessionId(1), 1e9, 0.0, SimTime::ZERO);
        let adv = c.on_probe(SessionId(2), 1e9, 0.0, SimTime::ZERO);
        assert!((adv - 100e6 / 3.0).abs() < 1.0);
    }

    #[test]
    fn sessions_restricted_elsewhere_release_their_share() {
        let mut c = controller();
        // Session 0 only uses 10 Mbps (restricted on another link).
        c.on_probe(SessionId(0), 1e9, 10e6, SimTime::ZERO);
        let adv = c.on_probe(SessionId(1), 1e9, 0.0, SimTime::ZERO);
        assert!((adv - 90e6).abs() < 1.0);
    }

    #[test]
    fn departures_free_capacity() {
        let mut c = controller();
        c.on_probe(SessionId(0), 1e9, 0.0, SimTime::ZERO);
        c.on_probe(SessionId(1), 1e9, 0.0, SimTime::ZERO);
        c.on_leave(SessionId(1));
        assert_eq!(c.session_count(), 1);
        assert_eq!(c.advertised_rate(), 100e6);
    }

    #[test]
    fn advertised_rate_of_an_idle_link_is_the_capacity() {
        let c = controller();
        assert_eq!(c.advertised_rate(), 100e6);
    }

    #[test]
    fn protocol_metadata() {
        let p = Bfyz::default();
        assert_eq!(p.name(), "BFYZ");
        assert_eq!(p.probe_interval(), Delay::from_millis(1));
    }
}
