//! The shared periodic-probing harness the three baselines run on.
//!
//! The structure mirrors how these protocols are deployed in practice (and in
//! the paper's simulations): every source keeps sending probe packets along
//! its path at a fixed interval; every link stamps the packet with the rate it
//! is willing to grant (according to the protocol's per-link controller); the
//! destination echoes a response; the source adopts the granted rate and
//! schedules the next probe. None of these protocols can detect convergence,
//! so the probing never stops — the defining contrast with B-Neck.
//!
//! The harness is built on the same shared world plumbing as the B-Neck
//! harness (`bneck_core::world`): a [`LinkTable`] of per-link channels,
//! capacities and reverse channels, and a [`SessionArena`] assigning dense
//! session slots with slot + hop envelope addressing and a cached
//! `Arc<SessionSet>` oracle snapshot. Only the per-slot *protocol* state
//! (probing flag, demand, adopted rate) and the per-link controllers are
//! specific to this harness. A fully-built [`BaselineSimulation`] implements
//! [`Simulation`] and [`ProtocolWorld`], so the experiment drivers run it
//! through the same unified interface as B-Neck itself.

use bneck_core::events::SubscriberSet;
use bneck_core::world::{LinkTable, SessionArena};
use bneck_core::{PacketKind, RateCause, RateEvent, RateEvents, Subscriber, UnknownSession};
use bneck_maxmin::{Allocation, Rate, RateLimit, SessionId, SessionSet};
use bneck_net::{Network, NodeId, Path, Router};
use bneck_sim::{Address, Context, Engine, RunReport, SimTime, Simulation, World};
use bneck_workload::{ProtocolWorld, ScheduleTarget, SessionRequest};
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// The per-link rate controller of a baseline protocol.
pub trait LinkController {
    /// Called when a probe of `session` crosses the link. `demand` is the
    /// session's maximum requested rate and `current` the rate the source is
    /// currently using. Returns the rate this link is willing to grant the
    /// session.
    fn on_probe(&mut self, session: SessionId, demand: Rate, current: Rate, now: SimTime) -> Rate;

    /// Called when the session's departure notification crosses the link.
    fn on_leave(&mut self, session: SessionId);
}

/// A baseline protocol: a factory of per-link controllers plus its probing
/// period.
///
/// `Send` bounds (on the protocol and its controllers) make a fully-built
/// [`BaselineSimulation`] a `Send` unit, which is what lets the parallel
/// sweep drivers in `bneck-bench` fan protocol runs across worker threads.
pub trait BaselineProtocol: Send {
    /// The per-link controller type.
    type Controller: LinkController + Send;

    /// Human-readable protocol name (used in reports).
    fn name(&self) -> &'static str;

    /// Creates the controller for a link of the given capacity (bits per
    /// second).
    fn controller(&self, capacity: Rate) -> Self::Controller;

    /// The interval at which every source re-probes its path.
    fn probe_interval(&self) -> bneck_net::Delay;

    /// The documented convergence tolerance of the protocol: the maximum
    /// mean *absolute* per-session relative error (in percent, against the
    /// centralized max-min fair rates) the protocol is expected to settle
    /// within once it has probed for many intervals. The cross-protocol
    /// conformance suite asserts this bound on randomized instances.
    fn mean_error_tolerance_pct(&self) -> f64;
}

/// Configuration of a [`BaselineSimulation`].
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct BaselineConfig {
    /// Size of a control packet in bits (transmission-time model).
    pub packet_bits: u64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig { packet_bits: 256 }
    }
}

/// Packet counters of a baseline run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct BaselineStats {
    /// Probe packets transmitted (one count per link traversal).
    pub probes: u64,
    /// Response packets transmitted.
    pub responses: u64,
    /// Leave packets transmitted.
    pub leaves: u64,
}

impl BaselineStats {
    /// Total packets transmitted.
    pub fn total(&self) -> u64 {
        self.probes + self.responses + self.leaves
    }

    /// The difference between this counter and an earlier snapshot.
    pub fn since(&self, earlier: &BaselineStats) -> BaselineStats {
        BaselineStats {
            probes: self.probes - earlier.probes,
            responses: self.responses - earlier.responses,
            leaves: self.leaves - earlier.leaves,
        }
    }
}

impl fmt::Display for BaselineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total={} probes={} responses={} leaves={}",
            self.total(),
            self.probes,
            self.responses,
            self.leaves
        )
    }
}

/// Messages exchanged by the baseline harness. Sessions are addressed by
/// their dense slot in the shared session arena, assigned at join.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Message {
    /// API call: start the session.
    Start { slot: u32 },
    /// API call: stop the session.
    Stop { slot: u32 },
    /// Probe travelling downstream; `hop` is the index of the link whose
    /// controller processes it next.
    Probe { slot: u32, granted: Rate, hop: u32 },
    /// Response travelling upstream; `hops_left` reverse hops remain.
    Response {
        slot: u32,
        granted: Rate,
        hops_left: u32,
    },
    /// Departure notification travelling downstream.
    Leave { slot: u32, hop: u32 },
    /// Source timer: time to send the next periodic probe.
    Timer { slot: u32 },
}

/// The simulator world: controllers plus the shared link/session plumbing of
/// `bneck_core::world`, with the protocol-specific per-slot state in parallel
/// vectors.
struct BaselineWorld<P: BaselineProtocol> {
    protocol: P,
    /// Controller of each directed link, indexed by `LinkId::index()`;
    /// created lazily when the first probe crosses the link.
    controllers: Vec<Option<P::Controller>>,
    /// Channels, capacities and the reverse-channel table, indexed by
    /// `LinkId`.
    links: LinkTable,
    /// The shared session-slot arena: id ↔ slot, paths, limits, active set
    /// and the cached oracle snapshot.
    arena: SessionArena,
    /// `true` while the slot's probing loop is running. Flipped by the
    /// `Start`/`Stop` events at simulated time, so a leave-then-rejoin of the
    /// same identifier hands the probing loop over to the new incarnation
    /// without reviving stale in-flight packets.
    probing: Vec<bool>,
    /// `true` from the `leave()` call until its `Stop` event has been
    /// processed. A rejoin of the same identifier is rejected while this is
    /// set: the departure notification still has to walk the *departing*
    /// incarnation's path (which a rejoin would overwrite in the arena), so
    /// the old-path controllers are guaranteed their `on_leave`.
    stopping: Vec<bool>,
    /// The slot's maximum requested rate, clamped to its access link.
    demand: Vec<Rate>,
    /// The rate the slot's source currently uses (last granted rate).
    current: Vec<Rate>,
    /// What the slot's next rate adoption means to subscribers (`Joined`
    /// after a join, `Changed` after a change, `Converged` afterwards).
    causes: Vec<RateCause>,
    stats: BaselineStats,
    probe_interval: bneck_net::Delay,
    /// The registered observers (`RateEvents` writers, user callbacks), on
    /// the same shared [`SubscriberSet`] fan-out as the B-Neck harness. The
    /// baseline packet vocabulary maps onto the closest B-Neck
    /// [`PacketKind`]s for the per-packet callbacks.
    subscribers: SubscriberSet,
}

impl<P: BaselineProtocol> BaselineWorld<P> {
    fn send_probe(&mut self, ctx: &mut Context<'_, Message>, slot: u32) {
        if !self.probing[slot as usize] {
            return;
        }
        ctx.deliver_now(
            Address(0),
            Message::Probe {
                slot,
                granted: self.demand[slot as usize],
                hop: 0,
            },
        );
    }

    fn dispatch(&mut self, ctx: &mut Context<'_, Message>, msg: Message) {
        match msg {
            Message::Start { slot } => {
                self.probing[slot as usize] = true;
                self.send_probe(ctx, slot);
            }
            Message::Timer { slot } => {
                self.send_probe(ctx, slot);
            }
            Message::Stop { slot } => {
                self.probing[slot as usize] = false;
                self.stopping[slot as usize] = false;
                // Tell the subscribers the session is gone, carrying the last
                // rate it was using.
                self.subscribers.emit_rate(&RateEvent {
                    at: ctx.now(),
                    session: self.arena.id_at(slot),
                    rate: self.current[slot as usize],
                    cause: RateCause::Left,
                });
                ctx.deliver_now(Address(0), Message::Leave { slot, hop: 0 });
            }
            Message::Probe { slot, granted, hop } => {
                if !self.probing[slot as usize] {
                    return;
                }
                // A stale probe from a previous incarnation of the slot
                // (leave + rejoin with the same identifier while packets were
                // in flight) may carry a hop beyond the current, shorter
                // path: drop it — the new incarnation started its own probe.
                let Some(link) = self.arena.link_at(slot, hop) else {
                    return;
                };
                let session = self.arena.id_at(slot);
                let demand = self.demand[slot as usize];
                let current = self.current[slot as usize];
                let hops = self.arena.hop_count(slot);
                let capacity = self.links.capacity(link);
                let controller = self.controllers[link.index()]
                    .get_or_insert_with(|| self.protocol.controller(capacity));
                let advertised = controller.on_probe(session, demand, current, ctx.now());
                let granted = granted.min(advertised).min(demand);
                self.stats.probes += 1;
                self.subscribers.note_packet(ctx.now(), PacketKind::Probe);
                let next = if (hop as usize) + 1 < hops {
                    Message::Probe {
                        slot,
                        granted,
                        hop: hop + 1,
                    }
                } else {
                    Message::Response {
                        slot,
                        granted,
                        hops_left: hops as u32,
                    }
                };
                ctx.send(self.links.channel(link), Address(0), next);
            }
            Message::Response {
                slot,
                granted,
                hops_left,
            } => {
                if hops_left == 0 {
                    // Reached the source: adopt the granted rate and schedule
                    // the next periodic probe. The probing never stops.
                    let interval = self.probe_interval;
                    if self.probing[slot as usize] {
                        let previous = self.current[slot as usize];
                        self.current[slot as usize] = granted;
                        // Notify subscribers on the first adoption of an
                        // incarnation and whenever the granted rate moves
                        // (periodic re-grants of an unchanged rate stay
                        // silent, like an `API.Rate` that only fires on
                        // change).
                        let cause = std::mem::replace(
                            &mut self.causes[slot as usize],
                            RateCause::Converged,
                        );
                        if (granted != previous || cause != RateCause::Converged)
                            && !self.subscribers.is_empty()
                        {
                            self.subscribers.emit_rate(&RateEvent {
                                at: ctx.now(),
                                session: self.arena.id_at(slot),
                                rate: granted,
                                cause,
                            });
                        }
                        ctx.schedule_after(interval, Address(0), Message::Timer { slot });
                    }
                    return;
                }
                // As with probes, drop responses whose hop count belongs to a
                // previous, longer incarnation of the slot's path.
                let Some(forward) = self.arena.link_at(slot, hops_left - 1) else {
                    return;
                };
                self.stats.responses += 1;
                self.subscribers
                    .note_packet(ctx.now(), PacketKind::Response);
                ctx.send(
                    self.links.reverse_channel(forward),
                    Address(0),
                    Message::Response {
                        slot,
                        granted,
                        hops_left: hops_left - 1,
                    },
                );
            }
            Message::Leave { slot, hop } => {
                let Some(link) = self.arena.link_at(slot, hop) else {
                    return;
                };
                let session = self.arena.id_at(slot);
                if let Some(controller) = &mut self.controllers[link.index()] {
                    controller.on_leave(session);
                }
                self.stats.leaves += 1;
                self.subscribers.note_packet(ctx.now(), PacketKind::Leave);
                ctx.send(
                    self.links.channel(link),
                    Address(0),
                    Message::Leave { slot, hop: hop + 1 },
                );
            }
        }
    }
}

impl<P: BaselineProtocol> World for BaselineWorld<P> {
    type Message = Message;
    fn handle(&mut self, ctx: &mut Context<'_, Message>, _to: Address, msg: Message) {
        self.dispatch(ctx, msg);
    }
}

/// A baseline protocol simulation over a network.
///
/// # Example
///
/// ```
/// use bneck_net::prelude::*;
/// use bneck_maxmin::prelude::*;
/// use bneck_baselines::prelude::*;
/// use bneck_sim::SimTime;
///
/// let net = synthetic::dumbbell(2, Capacity::from_mbps(100.0),
///                               Capacity::from_mbps(60.0), Delay::from_micros(1));
/// let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
/// let mut sim = BaselineSimulation::new(&net, Bfyz::default(), BaselineConfig::default());
/// sim.join(SimTime::ZERO, SessionId(0), hosts[0], hosts[1], RateLimit::unlimited());
/// sim.join(SimTime::ZERO, SessionId(1), hosts[2], hosts[3], RateLimit::unlimited());
/// sim.run_until(SimTime::from_millis(50));
/// let rates = sim.current_rates();
/// assert!((rates.rate(SessionId(0)).unwrap() - 30e6).abs() < 1e6);
/// // Unlike B-Neck, the protocol is still generating traffic.
/// assert!(!sim.is_quiescent());
/// ```
pub struct BaselineSimulation<'a, P: BaselineProtocol> {
    engine: Engine<Message>,
    network: &'a Network,
    name: &'static str,
    config: BaselineConfig,
    world: BaselineWorld<P>,
    router: Router<'a>,
}

impl<'a, P: BaselineProtocol> BaselineSimulation<'a, P> {
    /// Creates a simulation of `protocol` over `network`.
    pub fn new(network: &'a Network, protocol: P, config: BaselineConfig) -> Self {
        let mut engine = Engine::new();
        let links = LinkTable::new(network, &mut engine, config.packet_bits);
        let name = protocol.name();
        let probe_interval = protocol.probe_interval();
        let mut controllers = Vec::new();
        controllers.resize_with(network.link_count(), || None);
        let world = BaselineWorld {
            protocol,
            controllers,
            links,
            arena: SessionArena::new(),
            probing: Vec::new(),
            stopping: Vec::new(),
            demand: Vec::new(),
            current: Vec::new(),
            causes: Vec::new(),
            stats: BaselineStats::default(),
            probe_interval,
            subscribers: SubscriberSet::new(),
        };
        BaselineSimulation {
            engine,
            network,
            name,
            config,
            world,
            router: Router::new(network),
        }
    }

    /// The protocol's display name.
    pub fn protocol_name(&self) -> &'static str {
        self.name
    }

    /// The network the simulation runs over.
    pub fn network(&self) -> &'a Network {
        self.network
    }

    /// Starts a session at time `at` between two hosts. Returns `false` if no
    /// path exists or the identifier is already in use by an active session.
    pub fn join(
        &mut self,
        at: SimTime,
        session: SessionId,
        source: NodeId,
        destination: NodeId,
        limit: RateLimit,
    ) -> bool {
        if self.world.arena.is_active(session) {
            return false;
        }
        let Some(path) = self.router.shortest_path(source, destination) else {
            return false;
        };
        self.join_with_path(at, session, path, limit)
    }

    /// Starts a session at time `at` along an explicit path (e.g. the one a
    /// workload planner already routed). Returns `false` if the identifier is
    /// already in use by an active session, or if its previous incarnation's
    /// departure notification has not been processed yet (the notification
    /// must walk the old path, which a rejoin would overwrite).
    pub fn join_with_path(
        &mut self,
        at: SimTime,
        session: SessionId,
        path: Path,
        limit: RateLimit,
    ) -> bool {
        if let Some(slot) = self.world.arena.slot_of(session) {
            if self.world.stopping[slot as usize] {
                return false;
            }
        }
        let first_capacity = self.world.links.capacity(path.first_link());
        let demand = limit.effective_demand(first_capacity);
        let Some(joined) = self.world.arena.join(session, path, limit) else {
            return false;
        };
        let slot = joined.slot as usize;
        if joined.reused {
            self.world.probing[slot] = false;
            self.world.demand[slot] = demand;
            self.world.current[slot] = 0.0;
            self.world.causes[slot] = RateCause::Joined;
        } else {
            self.world.probing.push(false);
            self.world.stopping.push(false);
            self.world.demand.push(demand);
            self.world.current.push(0.0);
            self.world.causes.push(RateCause::Joined);
        }
        self.engine
            .inject(at, Address(0), Message::Start { slot: joined.slot });
        true
    }

    /// Stops a session at time `at`.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownSession`] (the same typed error as
    /// `BneckSimulation::leave`) if the session is not active — including a
    /// session whose own departure marker is already queued: the first
    /// `leave` deactivates it, so a second one finds no active session.
    pub fn leave(&mut self, at: SimTime, session: SessionId) -> Result<(), UnknownSession> {
        let Some(slot) = self.world.arena.leave(session) else {
            return Err(UnknownSession(session));
        };
        self.world.stopping[slot as usize] = true;
        self.engine.inject(at, Address(0), Message::Stop { slot });
        Ok(())
    }

    /// Changes a session's maximum requested rate. The new demand takes
    /// effect with the next periodic probe.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownSession`] if the session is not active — including a
    /// session that already left but whose `Stop` marker is still queued.
    pub fn change(
        &mut self,
        _at: SimTime,
        session: SessionId,
        limit: RateLimit,
    ) -> Result<(), UnknownSession> {
        let Some(slot) = self.world.arena.change(session, limit) else {
            return Err(UnknownSession(session));
        };
        let first_capacity = self
            .world
            .links
            .capacity(self.world.arena.path(slot).first_link());
        self.world.demand[slot as usize] = limit.effective_demand(first_capacity);
        self.world.causes[slot as usize] = RateCause::Changed;
        Ok(())
    }

    /// Registers an observer of this simulation's rate adoptions (delivered
    /// as [`RateEvent`]s: `Joined` on a session's first grant, `Changed`
    /// after an `API.Change`, `Converged` when a periodic re-grant moves the
    /// rate, `Left` on departure).
    pub fn subscribe<S: Subscriber + 'static>(&mut self, subscriber: S) {
        self.world.subscribers.subscribe(Box::new(subscriber));
    }

    /// Opens a drainable stream of this simulation's [`RateEvent`]s.
    pub fn rate_events(&mut self) -> RateEvents {
        let (events, writer) = RateEvents::channel();
        self.world.subscribers.subscribe(writer);
        events
    }

    /// Runs the simulation up to `horizon` (the baselines never go quiescent,
    /// so an unbounded run would not terminate while sessions are active).
    /// Returns the engine's report of the run.
    pub fn run_until(&mut self, horizon: SimTime) -> RunReport {
        self.engine.run_until(&mut self.world, horizon)
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// `true` when no protocol packet or timer is pending (only happens once
    /// every session has left).
    pub fn is_quiescent(&self) -> bool {
        self.engine.is_quiescent()
    }

    /// The rate each active session is currently using.
    pub fn current_rates(&self) -> Allocation {
        self.world
            .arena
            .collect_rates(|slot| Some(self.world.current[slot as usize]))
    }

    /// The active sessions and their paths/limits, for feeding the oracle.
    /// Snapshots are cached between membership changes (see
    /// [`SessionArena::session_set`]).
    pub fn session_set(&self) -> Arc<SessionSet> {
        self.world.arena.session_set()
    }

    /// Number of currently active sessions.
    pub fn active_count(&self) -> usize {
        self.world.arena.active_count()
    }

    /// Cumulative packet counters.
    pub fn stats(&self) -> BaselineStats {
        self.world.stats
    }

    /// The configured control-packet size in bits.
    pub fn packet_bits(&self) -> u64 {
        self.config.packet_bits
    }
}

impl<'a, P: BaselineProtocol> Simulation for BaselineSimulation<'a, P> {
    fn now(&self) -> SimTime {
        self.engine.now()
    }

    fn is_quiescent(&self) -> bool {
        self.engine.is_quiescent()
    }

    fn pending_events(&self) -> usize {
        self.engine.pending_events()
    }

    fn step(&mut self) -> bool {
        self.engine.step(&mut self.world)
    }

    fn run_to(&mut self, horizon: SimTime) -> RunReport {
        self.engine.run_until(&mut self.world, horizon)
    }

    fn events_processed(&self) -> u64 {
        self.engine.total_events_processed()
    }

    fn messages_sent(&self) -> u64 {
        self.engine.total_messages_sent()
    }
}

impl<'a, P: BaselineProtocol> ScheduleTarget for BaselineSimulation<'a, P> {
    fn apply_join(&mut self, at: SimTime, request: &SessionRequest) -> bool {
        self.join_with_path(at, request.session, request.path.clone(), request.limit)
    }

    fn apply_leave(&mut self, at: SimTime, session: SessionId) -> bool {
        self.leave(at, session).is_ok()
    }

    fn apply_change(&mut self, at: SimTime, session: SessionId, limit: RateLimit) -> bool {
        self.change(at, session, limit).is_ok()
    }
}

impl<'a, P: BaselineProtocol> ProtocolWorld for BaselineSimulation<'a, P> {
    fn protocol_name(&self) -> &'static str {
        self.name
    }

    fn current_rates(&self) -> Allocation {
        BaselineSimulation::current_rates(self)
    }

    fn session_set(&self) -> Arc<SessionSet> {
        BaselineSimulation::session_set(self)
    }

    fn subscribe(&mut self, subscriber: Box<dyn Subscriber>) {
        self.world.subscribers.subscribe(subscriber);
    }

    fn goes_quiescent(&self) -> bool {
        false
    }

    fn packets_sent(&self) -> u64 {
        self.world.stats.total()
    }

    fn convergence_tolerance_pct(&self) -> Option<f64> {
        Some(self.world.protocol.mean_error_tolerance_pct())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial protocol granting every session the full link capacity;
    /// exercises the harness plumbing independently of the real baselines.
    #[derive(Debug, Clone, Copy)]
    struct GrantAll;

    struct GrantAllController {
        capacity: Rate,
        seen: usize,
        left: usize,
    }

    impl LinkController for GrantAllController {
        fn on_probe(&mut self, _s: SessionId, _d: Rate, _c: Rate, _now: SimTime) -> Rate {
            self.seen += 1;
            self.capacity
        }
        fn on_leave(&mut self, _s: SessionId) {
            self.left += 1;
        }
    }

    impl BaselineProtocol for GrantAll {
        type Controller = GrantAllController;
        fn name(&self) -> &'static str {
            "grant-all"
        }
        fn controller(&self, capacity: Rate) -> GrantAllController {
            GrantAllController {
                capacity,
                seen: 0,
                left: 0,
            }
        }
        fn probe_interval(&self) -> bneck_net::Delay {
            bneck_net::Delay::from_millis(1)
        }
        fn mean_error_tolerance_pct(&self) -> f64 {
            // Grants everything: arbitrarily far from max-min by design.
            100.0
        }
    }

    fn network() -> Network {
        bneck_net::topology::synthetic::dumbbell(
            2,
            bneck_net::Capacity::from_mbps(100.0),
            bneck_net::Capacity::from_mbps(60.0),
            bneck_net::Delay::from_micros(1),
        )
    }

    #[test]
    fn probing_is_periodic_and_never_stops() {
        let net = network();
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut sim = BaselineSimulation::new(&net, GrantAll, BaselineConfig::default());
        assert!(sim.join(
            SimTime::ZERO,
            SessionId(0),
            hosts[0],
            hosts[1],
            RateLimit::unlimited()
        ));
        sim.run_until(SimTime::from_millis(10));
        let after_10ms = sim.stats();
        assert!(after_10ms.probes > 0);
        assert!(after_10ms.responses > 0);
        assert!(!sim.is_quiescent(), "baselines keep probing forever");
        sim.run_until(SimTime::from_millis(20));
        assert!(
            sim.stats().probes > after_10ms.probes,
            "traffic keeps flowing after convergence"
        );
        // The session is granted the minimum capacity along its path.
        let rate = sim.current_rates().rate(SessionId(0)).unwrap();
        assert!((rate - 60e6).abs() < 1.0);
    }

    #[test]
    fn leave_stops_the_sessions_probing() {
        let net = network();
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut sim = BaselineSimulation::new(&net, GrantAll, BaselineConfig::default());
        sim.join(
            SimTime::ZERO,
            SessionId(0),
            hosts[0],
            hosts[1],
            RateLimit::unlimited(),
        );
        sim.run_until(SimTime::from_millis(5));
        assert!(sim.leave(SimTime::from_millis(6), SessionId(0)).is_ok());
        sim.run_until(SimTime::from_millis(30));
        assert_eq!(sim.active_count(), 0);
        assert!(sim.current_rates().is_empty());
        assert!(
            sim.is_quiescent(),
            "with no active session the probing dies out"
        );
        assert!(sim.stats().leaves > 0);
    }

    #[test]
    fn stray_packets_from_a_previous_incarnation_are_dropped() {
        // A session on a long path leaves mid-probe and rejoins with the
        // same identifier on a short path; in-flight probes and responses of
        // the old incarnation carry hops beyond the new path and must be
        // dropped, not indexed.
        use bneck_net::prelude::*;
        let mut b = NetworkBuilder::new();
        let r0 = b.add_router("r0");
        let r1 = b.add_router("r1");
        let r2 = b.add_router("r2");
        let r3 = b.add_router("r3");
        b.connect(r0, r1, Capacity::from_mbps(100.0), Delay::from_micros(1));
        b.connect(r1, r2, Capacity::from_mbps(100.0), Delay::from_micros(1));
        b.connect(r2, r3, Capacity::from_mbps(100.0), Delay::from_micros(1));
        let h0 = b.add_host("h0", r0, Capacity::from_mbps(100.0), Delay::from_micros(1));
        let h1 = b.add_host("h1", r3, Capacity::from_mbps(50.0), Delay::from_micros(1));
        let h2 = b.add_host("h2", r0, Capacity::from_mbps(80.0), Delay::from_micros(1));
        let net = b.build();
        let mut sim = BaselineSimulation::new(&net, GrantAll, BaselineConfig::default());
        for probe_us in 1..12u64 {
            let start = sim.now() + Delay::from_micros(1);
            assert!(sim.join(start, SessionId(0), h0, h1, RateLimit::unlimited()));
            sim.run_until(start + Delay::from_micros(probe_us));
            // Leave and rejoin immediately along the 2-link path while the
            // long-path probe train may still be in flight.
            let t = sim.now() + Delay::from_nanos(1);
            assert!(sim.leave(t, SessionId(0)).is_ok());
            sim.run_until(t + Delay::from_nanos(2));
            assert!(sim.join(
                sim.now() + Delay::from_nanos(1),
                SessionId(0),
                h0,
                h2,
                RateLimit::unlimited()
            ));
            sim.run_until(sim.now() + Delay::from_millis(2));
            let rate = sim.current_rates().rate(SessionId(0)).unwrap();
            assert!((rate - 80e6).abs() < 1.0, "short path rate, got {rate}");
            let t = sim.now() + Delay::from_micros(1);
            assert!(sim.leave(t, SessionId(0)).is_ok());
            sim.run_until(t + Delay::from_millis(1));
        }
    }

    #[test]
    fn rejoin_is_deferred_until_the_departure_notification_has_walked_its_path() {
        // Leave at t1 and try to rejoin at t2 > t1 *before running the
        // engine*: the rejoin must be rejected — the departure notification
        // still has to walk the departing incarnation's path (so every
        // old-path controller gets its `on_leave`), and a rejoin would
        // overwrite that path in the arena. Once the Stop has been
        // processed, the identifier is free to rejoin along a new path.
        let net = network();
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut sim = BaselineSimulation::new(&net, GrantAll, BaselineConfig::default());
        assert!(sim.join(
            SimTime::ZERO,
            SessionId(0),
            hosts[0],
            hosts[1],
            RateLimit::unlimited()
        ));
        sim.run_until(SimTime::from_millis(2));
        assert!(sim.leave(SimTime::from_millis(3), SessionId(0)).is_ok());
        // The Stop event at 3 ms has not been processed yet.
        assert!(!sim.join(
            SimTime::from_millis(4),
            SessionId(0),
            hosts[2],
            hosts[3],
            RateLimit::unlimited()
        ));
        sim.run_until(SimTime::from_millis(5));
        // Stop processed: the old path received its leave notifications and
        // the identifier can rejoin.
        assert!(sim.stats().leaves > 0);
        assert!(sim.join(
            SimTime::from_millis(6),
            SessionId(0),
            hosts[2],
            hosts[3],
            RateLimit::unlimited()
        ));
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(sim.active_count(), 1);
        let rate = sim.current_rates().rate(SessionId(0)).unwrap();
        assert!(
            (rate - 60e6).abs() < 1.0,
            "rejoined session probes, got {rate}"
        );
        assert!(!sim.is_quiescent());
    }

    #[test]
    fn join_and_change_validation() {
        let net = network();
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut sim = BaselineSimulation::new(&net, GrantAll, BaselineConfig::default());
        assert!(!sim.join(
            SimTime::ZERO,
            SessionId(0),
            hosts[0],
            hosts[0],
            RateLimit::unlimited()
        ));
        assert!(sim.join(
            SimTime::ZERO,
            SessionId(0),
            hosts[0],
            hosts[1],
            RateLimit::unlimited()
        ));
        assert!(!sim.join(
            SimTime::ZERO,
            SessionId(0),
            hosts[2],
            hosts[3],
            RateLimit::unlimited()
        ));
        assert!(sim
            .change(SimTime::ZERO, SessionId(0), RateLimit::finite(5e6))
            .is_ok());
        assert_eq!(
            sim.change(SimTime::ZERO, SessionId(9), RateLimit::finite(5e6)),
            Err(UnknownSession(SessionId(9)))
        );
        assert_eq!(
            sim.leave(SimTime::ZERO, SessionId(9)),
            Err(UnknownSession(SessionId(9)))
        );
        sim.run_until(SimTime::from_millis(5));
        let rate = sim.current_rates().rate(SessionId(0)).unwrap();
        assert!((rate - 5e6).abs() < 1.0, "demand caps the granted rate");
        assert_eq!(sim.protocol_name(), "grant-all");
        assert_eq!(sim.packet_bits(), 256);
    }

    #[test]
    fn rate_events_report_adoption_changes_only() {
        let net = network();
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut sim = BaselineSimulation::new(&net, GrantAll, BaselineConfig::default());
        let events = sim.rate_events();
        sim.join(
            SimTime::ZERO,
            SessionId(0),
            hosts[0],
            hosts[1],
            RateLimit::unlimited(),
        );
        sim.run_until(SimTime::from_millis(10));
        let initial = events.drain();
        // One Joined event for the first grant; unchanged periodic re-grants
        // stay silent even though probing continues.
        assert_eq!(initial.len(), 1);
        assert_eq!(initial[0].cause, RateCause::Joined);
        assert!((initial[0].rate - 60e6).abs() < 1.0);
        sim.run_until(SimTime::from_millis(20));
        assert!(events.is_empty(), "steady probing emits no events");
        // A change re-notifies once the next probe adopts the new demand.
        sim.change(
            SimTime::from_millis(20),
            SessionId(0),
            RateLimit::finite(5e6),
        )
        .unwrap();
        sim.run_until(SimTime::from_millis(25));
        let after_change = events.drain();
        assert_eq!(after_change[0].cause, RateCause::Changed);
        assert!((after_change[0].rate - 5e6).abs() < 1.0);
        // Departure emits the Left marker with the last used rate.
        sim.leave(SimTime::from_millis(26), SessionId(0)).unwrap();
        sim.run_until(SimTime::from_millis(30));
        let after_leave = events.drain();
        assert_eq!(after_leave.len(), 1);
        assert_eq!(after_leave[0].cause, RateCause::Left);
        assert!((after_leave[0].rate - 5e6).abs() < 1.0);
    }

    #[test]
    fn a_built_baseline_is_a_send_unit_behind_the_unified_trait() {
        fn assert_send<T: Send>(_: &T) {}
        let net = network();
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut sim = BaselineSimulation::new(&net, GrantAll, BaselineConfig::default());
        assert_send(&sim);
        sim.join(
            SimTime::ZERO,
            SessionId(0),
            hosts[0],
            hosts[1],
            RateLimit::unlimited(),
        );
        let world: &mut dyn ProtocolWorld = &mut sim;
        assert_eq!(world.protocol_name(), "grant-all");
        assert!(!world.goes_quiescent());
        assert_eq!(world.convergence_tolerance_pct(), Some(100.0));
        let report = world.run_to(SimTime::from_millis(5));
        assert!(!report.quiescent, "probing continues past any horizon");
        assert!(world.packets_sent() > 0);
        assert_eq!(ProtocolWorld::session_set(world).len(), 1);
        assert_eq!(world.current_rates().len(), 1);
    }

    #[test]
    fn leave_and_change_on_a_departing_session_return_unknown_session() {
        // Once `leave` is accepted, the session's Stop/Left marker is queued
        // but not yet processed. A second leave or a change in that window
        // must fail with the same typed `UnknownSession` the B-Neck harness
        // returns — not silently succeed against a dying incarnation.
        let net = network();
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut sim = BaselineSimulation::new(&net, GrantAll, BaselineConfig::default());
        assert!(sim.join(
            SimTime::ZERO,
            SessionId(0),
            hosts[0],
            hosts[1],
            RateLimit::unlimited()
        ));
        sim.run_until(SimTime::from_millis(2));
        sim.leave(SimTime::from_millis(3), SessionId(0)).unwrap();
        // The marker is queued; the session is no longer addressable.
        assert_eq!(
            sim.leave(SimTime::from_millis(3), SessionId(0)),
            Err(UnknownSession(SessionId(0)))
        );
        assert_eq!(
            sim.change(
                SimTime::from_millis(3),
                SessionId(0),
                RateLimit::finite(1e6)
            ),
            Err(UnknownSession(SessionId(0)))
        );
        // The queued departure still goes through unharmed.
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(sim.active_count(), 0);
        assert!(sim.is_quiescent());
    }
}
