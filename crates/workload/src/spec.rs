//! Declarative experiment specifications.
//!
//! The paper's evaluation is a small matrix of scenarios — topology ×
//! workload × protocol × seeds (§IV). [`ExperimentSpec`] captures one cell
//! family of that matrix as plain *data*: a serializable document naming the
//! topology presets (resolved through a
//! [`TopologyRegistry`](crate::registry::TopologyRegistry)), the workload
//! parameters, the protocols under test (resolved through a
//! [`ProtocolRegistry`](crate::registry::ProtocolRegistry)), the seeds and
//! repeats, and the output selection. The `bneck` CLI in `bneck-bench` runs
//! specs from JSON files; the shipped presets ([`ExperimentSpec::preset`])
//! reproduce the defaults of the former one-off experiment binaries
//! parameter for parameter, so reports are bit-identical across the
//! redesign.
//!
//! Lowering: each spec kind converts to the existing experiment
//! configurations (`Experiment1Config` and friends) via its `configs`/
//! `config` method — the specs are a *frontend* over the engine of PR 4, not
//! a parallel implementation.

use crate::experiments::{Experiment1Config, Experiment2Config, Experiment3Config};
use crate::registry::TopologyRegistry;
use crate::scenario::NetworkScenario;
use crate::sessions::LimitPolicy;
use bneck_net::Delay;
use std::fmt;

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Error produced when a spec cannot be resolved against the registries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A topology preset name is not in the [`TopologyRegistry`].
    UnknownTopology(String),
    /// A protocol name is not in the
    /// [`ProtocolRegistry`](crate::registry::ProtocolRegistry).
    UnknownProtocol(String),
    /// A list that must be non-empty (session counts, topologies, ...) is
    /// empty.
    Empty(&'static str),
    /// A parameter value is out of its domain.
    Invalid(&'static str),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::UnknownTopology(name) => write!(f, "unknown topology preset `{name}`"),
            SpecError::UnknownProtocol(name) => write!(f, "unknown protocol `{name}`"),
            SpecError::Empty(what) => write!(f, "`{what}` must not be empty"),
            SpecError::Invalid(what) => write!(f, "invalid value for `{what}`"),
        }
    }
}

impl std::error::Error for SpecError {}

/// A topology reference: a registry preset name plus the host count and
/// topology seed to instantiate it with.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct ScenarioSpec {
    /// Registry preset name (`small/lan`, `medium/wan`, ...).
    pub preset: String,
    /// Number of hosts attached to random stub routers.
    pub hosts: usize,
    /// Topology generator seed.
    pub seed: u64,
}

impl ScenarioSpec {
    /// A reference to `preset` with the given host count (topology seed 1,
    /// the presets' default).
    pub fn new(preset: impl Into<String>, hosts: usize) -> Self {
        ScenarioSpec {
            preset: preset.into(),
            hosts,
            seed: 1,
        }
    }

    /// Builds the scenario through the registry.
    ///
    /// # Errors
    ///
    /// [`SpecError::UnknownTopology`] when the preset is not registered.
    pub fn resolve(&self, topologies: &TopologyRegistry) -> Result<NetworkScenario, SpecError> {
        topologies
            .resolve(&self.preset, self.hosts)
            .map(|scenario| scenario.with_seed(self.seed))
            .ok_or_else(|| SpecError::UnknownTopology(self.preset.clone()))
    }
}

/// What the driver should emit for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct OutputSpec {
    /// Print the human-readable text tables.
    pub tables: bool,
    /// Print the CSV renderings of the tables.
    pub csv: bool,
    /// Print the machine-readable JSON report.
    pub json: bool,
}

impl Default for OutputSpec {
    /// Tables and CSV on (what the former binaries printed), JSON off.
    fn default() -> Self {
        OutputSpec {
            tables: true,
            csv: true,
            json: false,
        }
    }
}

/// One declarative experiment: a name, the experiment kind with its
/// parameters, and the output selection.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct ExperimentSpec {
    /// Display name (also the preset name for shipped specs).
    pub name: String,
    /// The experiment kind and its parameters.
    pub experiment: ExperimentKind,
    /// Output selection (overridable from the CLI).
    pub output: OutputSpec,
}

/// The workload families of the paper's evaluation.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum ExperimentKind {
    /// Experiment 1 (Figure 5): simultaneous joins, time to quiescence and
    /// control traffic over a (topology × session-count) sweep.
    Joins(JoinsSpec),
    /// Experiment 2 (Figure 6): five phases of churn, per-phase convergence
    /// and a packet time series.
    Churn(ChurnSpec),
    /// Experiment 3 (Figures 7 and 8): accuracy over time against the
    /// non-quiescent baselines.
    Accuracy(AccuracySpec),
    /// The §IV validation methodology: randomized workloads cross-checked
    /// against the centralized oracle and the max-min conditions.
    Validation(ValidationSpec),
    /// Paper-scale join-to-quiescence points (up to the 300,000 sessions of
    /// Figure 5) with oracle validation.
    Scale(ScaleSpec),
    /// Robustness off the paper's map: the same join workload run over
    /// fault-injected channels, across a (drop × duplicate) probability grid,
    /// recording the convergence/quiescence outcome of every point — raw, and
    /// optionally with the recovery layer restoring reliable delivery.
    FaultSweep(FaultSweepSpec),
}

impl ExperimentKind {
    /// A short kind label for listings.
    pub fn label(&self) -> &'static str {
        match self {
            ExperimentKind::Joins(_) => "joins",
            ExperimentKind::Churn(_) => "churn",
            ExperimentKind::Accuracy(_) => "accuracy",
            ExperimentKind::Validation(_) => "validation",
            ExperimentKind::Scale(_) => "scale",
            ExperimentKind::FaultSweep(_) => "faults",
        }
    }
}

/// Experiment 1 as data: a (topology preset × session count) sweep of
/// simultaneous-join runs.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct JoinsSpec {
    /// Topology preset names (resolved through the [`TopologyRegistry`]).
    pub topologies: Vec<String>,
    /// Topology generator seed.
    pub topology_seed: u64,
    /// The session counts of the sweep.
    pub sessions: Vec<usize>,
    /// Hosts instantiated per session (sources plus destination headroom).
    pub hosts_per_session: usize,
    /// Lower bound on the instantiated host count.
    pub min_hosts: usize,
    /// Window in which all joins happen, in microseconds.
    pub join_window_us: u64,
    /// Maximum-rate request policy.
    pub limits: LimitPolicy,
    /// Workload seed of the sweep's first point; point `i` uses
    /// `base_seed + i` (in topology-major order), so every point owns a
    /// distinct, position-derived RNG.
    pub base_seed: u64,
}

impl JoinsSpec {
    /// Lowers the sweep to one [`Experiment1Config`] per
    /// (topology, session count) cell, in topology-major order.
    ///
    /// # Errors
    ///
    /// [`SpecError::UnknownTopology`] / [`SpecError::Empty`] on unresolvable
    /// or empty inputs.
    pub fn configs(
        &self,
        topologies: &TopologyRegistry,
    ) -> Result<Vec<Experiment1Config>, SpecError> {
        if self.topologies.is_empty() {
            return Err(SpecError::Empty("topologies"));
        }
        if self.sessions.is_empty() {
            return Err(SpecError::Empty("sessions"));
        }
        let mut configs = Vec::with_capacity(self.topologies.len() * self.sessions.len());
        for preset in &self.topologies {
            for &sessions in &self.sessions {
                let hosts = (self.hosts_per_session * sessions).max(self.min_hosts);
                let scenario = ScenarioSpec {
                    preset: preset.clone(),
                    hosts,
                    seed: self.topology_seed,
                }
                .resolve(topologies)?;
                configs.push(Experiment1Config {
                    scenario,
                    sessions,
                    join_window: Delay::from_micros(self.join_window_us),
                    limits: self.limits,
                    seed: self.base_seed + configs.len() as u64,
                });
            }
        }
        Ok(configs)
    }
}

/// Experiment 2 as data: the five-phase churn workload, with repeats.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct ChurnSpec {
    /// The network to run on.
    pub topology: ScenarioSpec,
    /// Sessions joining in the initial phase.
    pub initial_sessions: usize,
    /// Sessions affected in each churn phase.
    pub churn: usize,
    /// Window in which each phase's changes happen, in microseconds.
    pub change_window_us: u64,
    /// Maximum-rate request policy.
    pub limits: LimitPolicy,
    /// Workload seed of the first repeat; repeat `i` uses `seed + i`.
    pub seed: u64,
    /// Number of independent repeats.
    pub repeats: usize,
}

impl ChurnSpec {
    /// Lowers to the base [`Experiment2Config`] (repeat seeds are derived by
    /// the driver, as before).
    ///
    /// # Errors
    ///
    /// [`SpecError::UnknownTopology`] / [`SpecError::Invalid`] on
    /// unresolvable or degenerate inputs.
    pub fn config(&self, topologies: &TopologyRegistry) -> Result<Experiment2Config, SpecError> {
        if self.repeats == 0 {
            return Err(SpecError::Invalid("repeats"));
        }
        Ok(Experiment2Config {
            scenario: self.topology.resolve(topologies)?,
            initial_sessions: self.initial_sessions,
            churn: self.churn,
            change_window: Delay::from_micros(self.change_window_us),
            limits: self.limits,
            seed: self.seed,
        })
    }
}

/// Experiment 3 as data: joins plus early leaves, sampled against the
/// oracle's rates, for B-Neck and the named baselines.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct AccuracySpec {
    /// The network to run on.
    pub topology: ScenarioSpec,
    /// Sessions joining.
    pub joins: usize,
    /// Sessions leaving shortly after joining.
    pub leaves: usize,
    /// Window in which all joins and leaves happen, in microseconds.
    pub change_window_us: u64,
    /// Sampling interval, in microseconds.
    pub sample_interval_us: u64,
    /// Observation horizon, in microseconds.
    pub horizon_us: u64,
    /// Maximum-rate request policy.
    pub limits: LimitPolicy,
    /// Workload seed.
    pub seed: u64,
    /// The baseline protocols to run next to B-Neck (registry names; B-Neck
    /// itself always runs first).
    pub baselines: Vec<String>,
}

impl AccuracySpec {
    /// Lowers to the [`Experiment3Config`] the driver consumes.
    ///
    /// # Errors
    ///
    /// [`SpecError::UnknownTopology`] when the topology does not resolve.
    pub fn config(&self, topologies: &TopologyRegistry) -> Result<Experiment3Config, SpecError> {
        Ok(Experiment3Config {
            scenario: self.topology.resolve(topologies)?,
            joins: self.joins,
            leaves: self.leaves,
            change_window: Delay::from_micros(self.change_window_us),
            sample_interval: Delay::from_micros(self.sample_interval_us),
            horizon: Delay::from_micros(self.horizon_us),
            limits: self.limits,
            seed: self.seed,
        })
    }
}

/// One lowered validation run (scenario, session count, workload seed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidationRun {
    /// The instantiated scenario.
    pub scenario: NetworkScenario,
    /// Number of sessions to plan.
    pub sessions: usize,
    /// Seed of the randomized workload.
    pub seed: u64,
}

/// The §IV validation methodology as data: every named topology × `runs`
/// seeds, each with a randomized rate-limited workload.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct ValidationSpec {
    /// Topology preset names.
    pub topologies: Vec<String>,
    /// Sessions per run.
    pub sessions: usize,
    /// Hosts instantiated per session.
    pub hosts_per_session: usize,
    /// Randomized runs per topology.
    pub runs: usize,
    /// Topology seed of a topology's first run; run `i` uses
    /// `topo_seed_base + i`.
    pub topo_seed_base: u64,
    /// Workload seed of a topology's first run; run `i` uses
    /// `workload_seed_base + i`.
    pub workload_seed_base: u64,
}

impl ValidationSpec {
    /// Lowers to the list of validation runs, in topology-major order.
    ///
    /// # Errors
    ///
    /// [`SpecError::UnknownTopology`] / [`SpecError::Empty`] /
    /// [`SpecError::Invalid`] on unresolvable or degenerate inputs.
    pub fn runs(&self, topologies: &TopologyRegistry) -> Result<Vec<ValidationRun>, SpecError> {
        if self.topologies.is_empty() {
            return Err(SpecError::Empty("topologies"));
        }
        if self.runs == 0 {
            return Err(SpecError::Invalid("runs"));
        }
        let hosts = self.hosts_per_session * self.sessions;
        let mut out = Vec::with_capacity(self.topologies.len() * self.runs);
        for preset in &self.topologies {
            let base = topologies
                .resolve(preset, hosts)
                .ok_or_else(|| SpecError::UnknownTopology(preset.clone()))?;
            for i in 0..self.runs as u64 {
                out.push(ValidationRun {
                    scenario: base.with_seed(self.topo_seed_base + i),
                    sessions: self.sessions,
                    seed: self.workload_seed_base + i,
                });
            }
        }
        Ok(out)
    }
}

/// Paper-scale runs as data: a list of session counts, each lowered through
/// [`Experiment1Config::paper_scale`] (Medium LAN with one source host per
/// session plus headroom).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct ScaleSpec {
    /// The session counts to run.
    pub sessions: Vec<usize>,
    /// Cross-check the final rates against the centralized oracle.
    pub validate: bool,
    /// The engine shard counts to run every session count at. `[1]` (the
    /// default) keeps the serial engine; larger entries run the same point on
    /// the conservative parallel engine — reports are bit-identical at any
    /// shard count, only wall-clock timings differ.
    #[cfg_attr(feature = "serde", serde(default = "default_shards"))]
    pub shards: Vec<usize>,
}

#[cfg(feature = "serde")]
#[allow(dead_code)] // referenced by `serde(default = ...)`; the offline shim
                    // ignores the attribute (real serde_derive calls it)
fn default_shards() -> Vec<usize> {
    vec![1]
}

impl ScaleSpec {
    /// Lowers to one [`Experiment1Config`] per session count. The shard list
    /// is validated here but crosses with the configs in the driver (each
    /// config runs once per shard count).
    ///
    /// # Errors
    ///
    /// [`SpecError::Empty`] when no session count or shard count is given,
    /// [`SpecError::Invalid`] on a zero shard count.
    pub fn configs(&self) -> Result<Vec<Experiment1Config>, SpecError> {
        if self.sessions.is_empty() {
            return Err(SpecError::Empty("sessions"));
        }
        if self.shards.is_empty() {
            return Err(SpecError::Empty("shards"));
        }
        if self.shards.contains(&0) {
            return Err(SpecError::Invalid("shards"));
        }
        Ok(self
            .sessions
            .iter()
            .map(|&sessions| Experiment1Config::paper_scale(sessions))
            .collect())
    }
}

/// One cell of a fault sweep's (drop × duplicate) grid.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct FaultPoint {
    /// Per-transmission drop probability.
    pub drop: f64,
    /// Per-transmission duplication probability.
    pub duplicate: f64,
}

/// A fault-injected robustness sweep as data: one join workload replayed
/// over every cell of a (drop × duplicate) probability grid, with a shared
/// reorder setting. Each point runs the raw protocol (recording its honest
/// converged/stuck/wrong-rates outcome) and, when `with_recovery` is set,
/// a second run with the retransmission layer enabled — which is expected to
/// restore oracle-exact quiescent convergence at the price of the RTO tail.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct FaultSweepSpec {
    /// The network to run on.
    pub topology: ScenarioSpec,
    /// Sessions joining.
    pub sessions: usize,
    /// Window in which all joins happen, in microseconds.
    pub join_window_us: u64,
    /// Maximum-rate request policy.
    pub limits: LimitPolicy,
    /// Workload seed (the same workload is replayed at every grid point).
    pub workload_seed: u64,
    /// Seed of the fault plans; point `i` (in drop-major order) uses
    /// `fault_seed + i`, so every cell rolls an independent fault stream.
    pub fault_seed: u64,
    /// The drop probabilities of the grid.
    pub drop: Vec<f64>,
    /// The duplication probabilities of the grid.
    pub duplicate: Vec<f64>,
    /// Reorder probability shared by every point.
    pub reorder: f64,
    /// Reorder jitter window, in packet flight times.
    pub reorder_window: u32,
    /// Also run every point with the recovery layer enabled.
    pub with_recovery: bool,
    /// Retransmission timeout of the recovery runs, in microseconds.
    pub rto_us: u64,
    /// Per-run horizon, in milliseconds — a faulty run that has not drained
    /// by then is recorded as stuck instead of spinning forever.
    pub horizon_ms: u64,
}

impl FaultSweepSpec {
    /// The grid cells, in drop-major order.
    ///
    /// # Errors
    ///
    /// [`SpecError::Empty`] on an empty axis, [`SpecError::Invalid`] on a
    /// probability outside `[0, 1]`, a zero reorder window, a zero horizon,
    /// or a zero RTO with recovery requested.
    pub fn points(&self) -> Result<Vec<FaultPoint>, SpecError> {
        if self.drop.is_empty() {
            return Err(SpecError::Empty("drop"));
        }
        if self.duplicate.is_empty() {
            return Err(SpecError::Empty("duplicate"));
        }
        let in_unit = |p: f64| (0.0..=1.0).contains(&p);
        if !self.drop.iter().all(|&p| in_unit(p)) {
            return Err(SpecError::Invalid("drop"));
        }
        if !self.duplicate.iter().all(|&p| in_unit(p)) {
            return Err(SpecError::Invalid("duplicate"));
        }
        if !in_unit(self.reorder) {
            return Err(SpecError::Invalid("reorder"));
        }
        if self.reorder_window == 0 {
            return Err(SpecError::Invalid("reorder_window"));
        }
        if self.horizon_ms == 0 {
            return Err(SpecError::Invalid("horizon_ms"));
        }
        if self.with_recovery && self.rto_us == 0 {
            return Err(SpecError::Invalid("rto_us"));
        }
        if self.sessions == 0 {
            return Err(SpecError::Invalid("sessions"));
        }
        let mut points = Vec::with_capacity(self.drop.len() * self.duplicate.len());
        for &drop in &self.drop {
            for &duplicate in &self.duplicate {
                points.push(FaultPoint { drop, duplicate });
            }
        }
        Ok(points)
    }
}

/// The names of the shipped presets, in listing order.
pub const PRESET_NAMES: [&str; 10] = [
    "exp1",
    "exp1_full",
    "exp2",
    "exp2_full",
    "exp3",
    "exp3_full",
    "validate",
    "paper_scale",
    "paper_1m",
    "faults",
];

/// `paper_full` is an alias preset: the 300,000-session point of Figure 5.
pub const PAPER_FULL: &str = "paper_full";

impl ExperimentSpec {
    /// One-line description of what a preset reproduces (for listings).
    pub fn preset_summary(name: &str) -> Option<&'static str> {
        Some(match name {
            "exp1" => "Figure 5 scaled down: join sweeps on small/medium networks",
            "exp1_full" => "Figure 5 at paper scale: 10..300k joins, five networks",
            "exp2" => "Figure 6 scaled down: five churn phases",
            "exp2_full" => "Figure 6 at paper scale: 100k sessions, 20k churn",
            "exp3" => "Figures 7-8 scaled down: accuracy vs BFYZ over time",
            "exp3_full" => "Figures 7-8 at paper scale: 100k joins, 10k leaves",
            "validate" => "SS-IV validation: randomized workloads vs the oracle",
            "paper_scale" => "50k-session join-to-quiescence run with oracle check",
            "paper_1m" => "one million sessions on Medium LAN, oracle-checked",
            "faults" => "drop/dup/reorder grid, raw vs recovery-layer runs",
            PAPER_FULL => "the full 300k-session point of Figure 5",
            _ => return None,
        })
    }

    /// The shipped preset of the given name, reproducing the defaults of the
    /// former per-experiment binaries parameter for parameter.
    pub fn preset(name: &str) -> Option<ExperimentSpec> {
        let experiment = match name {
            "exp1" => ExperimentKind::Joins(JoinsSpec {
                topologies: vec![
                    "small/lan".to_string(),
                    "small/wan".to_string(),
                    "medium/lan".to_string(),
                ],
                topology_seed: 1,
                sessions: Experiment1Config::scaled_sweep(),
                hosts_per_session: 2,
                min_hosts: 20,
                join_window_us: 1_000,
                limits: LimitPolicy::Unlimited,
                base_seed: 1,
            }),
            "exp1_full" => ExperimentKind::Joins(JoinsSpec {
                topologies: vec![
                    "small/lan".to_string(),
                    "small/wan".to_string(),
                    "medium/lan".to_string(),
                    "medium/wan".to_string(),
                    "big/lan".to_string(),
                ],
                topology_seed: 1,
                sessions: Experiment1Config::paper_sweep(),
                hosts_per_session: 2,
                min_hosts: 20,
                join_window_us: 1_000,
                limits: LimitPolicy::Unlimited,
                base_seed: 1,
            }),
            "exp2" | "exp2_full" => {
                let base = if name == "exp2" {
                    Experiment2Config::scaled()
                } else {
                    Experiment2Config::paper()
                };
                ExperimentKind::Churn(ChurnSpec {
                    topology: ScenarioSpec {
                        preset: base.scenario.label(),
                        hosts: base.scenario.hosts,
                        seed: base.scenario.seed,
                    },
                    initial_sessions: base.initial_sessions,
                    churn: base.churn,
                    change_window_us: base.change_window.as_micros(),
                    limits: base.limits,
                    seed: base.seed,
                    repeats: 1,
                })
            }
            "exp3" | "exp3_full" => {
                let base = if name == "exp3" {
                    Experiment3Config::scaled()
                } else {
                    Experiment3Config::paper()
                };
                ExperimentKind::Accuracy(AccuracySpec {
                    topology: ScenarioSpec {
                        preset: base.scenario.label(),
                        hosts: base.scenario.hosts,
                        seed: base.scenario.seed,
                    },
                    joins: base.joins,
                    leaves: base.leaves,
                    change_window_us: base.change_window.as_micros(),
                    sample_interval_us: base.sample_interval.as_micros(),
                    horizon_us: base.horizon.as_micros(),
                    limits: base.limits,
                    seed: base.seed,
                    baselines: vec!["BFYZ".to_string()],
                })
            }
            "validate" => ExperimentKind::Validation(ValidationSpec {
                topologies: vec![
                    "small/lan".to_string(),
                    "small/wan".to_string(),
                    "medium/lan".to_string(),
                    "medium/wan".to_string(),
                ],
                sessions: 60,
                hosts_per_session: 2,
                runs: 3,
                topo_seed_base: 1,
                workload_seed_base: 100,
            }),
            "paper_scale" => ExperimentKind::Scale(ScaleSpec {
                sessions: vec![50_000],
                validate: true,
                shards: vec![1],
            }),
            // Beyond the paper's largest point (300k): one million sessions
            // on the Medium LAN network, exercising the cache-local hot path,
            // batched delivery and parallel planning end to end.
            "paper_1m" => ExperimentKind::Scale(ScaleSpec {
                sessions: vec![1_000_000],
                validate: true,
                shards: vec![1],
            }),
            PAPER_FULL => ExperimentKind::Scale(ScaleSpec {
                sessions: vec![300_000],
                validate: true,
                shards: vec![1],
            }),
            // Robustness sweep (not a paper figure): the exp1-style join
            // workload over hostile channels, raw and recovered.
            "faults" => ExperimentKind::FaultSweep(FaultSweepSpec {
                topology: ScenarioSpec::new("small/lan", 20),
                sessions: 8,
                join_window_us: 1_000,
                limits: LimitPolicy::Unlimited,
                workload_seed: 1,
                fault_seed: 42,
                drop: vec![0.0, 0.01, 0.05],
                duplicate: vec![0.0, 0.01],
                reorder: 0.25,
                reorder_window: 4,
                with_recovery: true,
                rto_us: 500,
                horizon_ms: 200,
            }),
            _ => return None,
        };
        Some(ExperimentSpec {
            name: name.to_string(),
            experiment,
            output: OutputSpec::default(),
        })
    }

    /// Every shipped preset (including the `paper_full` alias).
    pub fn presets() -> Vec<ExperimentSpec> {
        PRESET_NAMES
            .iter()
            .chain(std::iter::once(&PAPER_FULL))
            .map(|name| Self::preset(name).expect("every shipped preset resolves"))
            .collect()
    }

    /// Checks the spec against the registries without running anything: all
    /// topology presets resolve, all protocol names are registered, and no
    /// required list is empty.
    ///
    /// # Errors
    ///
    /// The first [`SpecError`] encountered.
    pub fn check(
        &self,
        topologies: &TopologyRegistry,
        protocols: &crate::registry::ProtocolRegistry,
    ) -> Result<(), SpecError> {
        match &self.experiment {
            ExperimentKind::Joins(spec) => {
                spec.configs(topologies)?;
            }
            ExperimentKind::Churn(spec) => {
                spec.config(topologies)?;
            }
            ExperimentKind::Accuracy(spec) => {
                spec.config(topologies)?;
                for baseline in &spec.baselines {
                    if !protocols.contains(baseline) {
                        return Err(SpecError::UnknownProtocol(baseline.clone()));
                    }
                }
            }
            ExperimentKind::Validation(spec) => {
                spec.runs(topologies)?;
            }
            ExperimentKind::Scale(spec) => {
                spec.configs()?;
            }
            ExperimentKind::FaultSweep(spec) => {
                spec.topology.resolve(topologies)?;
                spec.points()?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ProtocolRegistry;

    #[test]
    fn every_preset_resolves_and_checks() {
        let topologies = TopologyRegistry::builtin();
        let mut protocols = ProtocolRegistry::with_bneck();
        // The baselines live a layer up; a stand-in BFYZ entry keeps this
        // check registry-complete (bneck-bench's tests check the real one).
        protocols.register("BFYZ", |network| {
            Box::new(bneck_core::BneckSimulation::new(
                network,
                bneck_core::BneckConfig::default(),
            ))
        });
        for spec in ExperimentSpec::presets() {
            spec.check(&topologies, &protocols)
                .unwrap_or_else(|e| panic!("preset {} does not check: {e}", spec.name));
            assert!(ExperimentSpec::preset_summary(&spec.name).is_some());
        }
        assert!(ExperimentSpec::preset("nope").is_none());
        assert!(ExperimentSpec::preset_summary("nope").is_none());
    }

    #[test]
    fn exp1_preset_lowers_to_the_former_binary_defaults() {
        let topologies = TopologyRegistry::builtin();
        let spec = ExperimentSpec::preset("exp1").unwrap();
        let ExperimentKind::Joins(joins) = &spec.experiment else {
            panic!("exp1 is a joins sweep");
        };
        let configs = joins.configs(&topologies).unwrap();
        // Mirror of the former experiment1 binary's construction loop.
        let mut expected = Vec::new();
        let scenarios: Vec<fn(usize) -> NetworkScenario> = vec![
            NetworkScenario::small_lan,
            NetworkScenario::small_wan,
            NetworkScenario::medium_lan,
        ];
        for make_scenario in &scenarios {
            for &sessions in &Experiment1Config::scaled_sweep() {
                let hosts = (2 * sessions).max(20);
                let mut config = Experiment1Config::scaled(make_scenario(hosts), sessions);
                config.seed = expected.len() as u64 + 1;
                expected.push(config);
            }
        }
        assert_eq!(configs, expected);
    }

    #[test]
    fn validate_preset_lowers_to_the_former_binary_points() {
        let topologies = TopologyRegistry::builtin();
        let spec = ExperimentSpec::preset("validate").unwrap();
        let ExperimentKind::Validation(validation) = &spec.experiment else {
            panic!("validate is a validation spec");
        };
        let runs = validation.runs(&topologies).unwrap();
        assert_eq!(runs.len(), 4 * 3);
        // Mirror of the former validate binary's point loop.
        let sessions = 60;
        let scenarios = [
            NetworkScenario::small_lan(2 * sessions),
            NetworkScenario::small_wan(2 * sessions),
            NetworkScenario::medium_lan(2 * sessions),
            NetworkScenario::medium_wan(2 * sessions),
        ];
        let mut i = 0;
        for scenario in &scenarios {
            for seed in 0..3u64 {
                assert_eq!(runs[i].scenario, scenario.with_seed(seed + 1));
                assert_eq!(runs[i].sessions, sessions);
                assert_eq!(runs[i].seed, seed + 100);
                i += 1;
            }
        }
    }

    #[test]
    fn scale_specs_reject_empty_sweeps() {
        let spec = ScaleSpec {
            sessions: vec![],
            validate: true,
            shards: vec![1],
        };
        assert_eq!(spec.configs(), Err(SpecError::Empty("sessions")));
        let spec = ScaleSpec {
            sessions: vec![1_000, 2_000],
            validate: false,
            shards: vec![1, 4],
        };
        let configs = spec.configs().unwrap();
        assert_eq!(configs.len(), 2);
        assert_eq!(configs[0], Experiment1Config::paper_scale(1_000));
    }

    #[test]
    fn scale_specs_validate_their_shard_list() {
        let base = ScaleSpec {
            sessions: vec![1_000],
            validate: false,
            shards: vec![1],
        };
        let mut bad = base.clone();
        bad.shards = vec![];
        assert_eq!(bad.configs(), Err(SpecError::Empty("shards")));
        let mut bad = base;
        bad.shards = vec![2, 0];
        assert_eq!(bad.configs(), Err(SpecError::Invalid("shards")));
    }

    #[test]
    fn fault_sweeps_validate_their_grid() {
        let base = match ExperimentSpec::preset("faults").unwrap().experiment {
            ExperimentKind::FaultSweep(spec) => spec,
            other => panic!("faults is a fault sweep, got {}", other.label()),
        };
        // The shipped grid: drop-major cross product.
        let points = base.points().unwrap();
        assert_eq!(points.len(), 6);
        assert_eq!(
            points[0],
            FaultPoint {
                drop: 0.0,
                duplicate: 0.0
            }
        );
        assert_eq!(
            points[5],
            FaultPoint {
                drop: 0.05,
                duplicate: 0.01
            }
        );
        let mut bad = base.clone();
        bad.drop = vec![];
        assert_eq!(bad.points(), Err(SpecError::Empty("drop")));
        let mut bad = base.clone();
        bad.duplicate = vec![1.5];
        assert_eq!(bad.points(), Err(SpecError::Invalid("duplicate")));
        let mut bad = base.clone();
        bad.reorder_window = 0;
        assert_eq!(bad.points(), Err(SpecError::Invalid("reorder_window")));
        let mut bad = base.clone();
        bad.horizon_ms = 0;
        assert_eq!(bad.points(), Err(SpecError::Invalid("horizon_ms")));
        let mut bad = base;
        bad.rto_us = 0;
        assert_eq!(bad.points(), Err(SpecError::Invalid("rto_us")));
    }

    #[test]
    fn unknown_topologies_are_reported_by_name() {
        let topologies = TopologyRegistry::builtin();
        let spec = ScenarioSpec::new("moon/lan", 10);
        assert_eq!(
            spec.resolve(&topologies),
            Err(SpecError::UnknownTopology("moon/lan".to_string()))
        );
        assert_eq!(
            SpecError::UnknownTopology("moon/lan".to_string()).to_string(),
            "unknown topology preset `moon/lan`"
        );
    }
}
