//! By-name factories for protocols and topology presets.
//!
//! The declarative experiment specs ([`crate::spec`]) refer to protocols and
//! networks by *name*; these registries turn the names into live objects.
//! Both start from built-in entries (B-Neck itself, the paper's transit–stub
//! scenarios) and accept additional registrations, so an embedding crate can
//! plug a new protocol harness or topology family into every experiment
//! driver without touching the drivers:
//!
//! * [`ProtocolRegistry`] — name → `Box<dyn ProtocolWorld>` factory over a
//!   network. `bneck-baselines` registers BFYZ/CG/RCP on top, and
//!   `bneck-bench` exposes the fully-populated registry the `bneck` CLI uses.
//! * [`TopologyRegistry`] — preset name (`small/lan`, `medium/wan`, ...) →
//!   [`NetworkScenario`] constructor, keyed by the labels the reports already
//!   use.

use crate::protocol::ProtocolWorld;
use crate::scenario::NetworkScenario;
use bneck_core::{BneckConfig, BneckSimulation};
use bneck_net::Network;

/// A by-name protocol factory: builds a fresh simulation of the named
/// protocol over a borrowed network.
pub type ProtocolFactory =
    Box<dyn for<'n> Fn(&'n Network) -> Box<dyn ProtocolWorld + 'n> + Send + Sync>;

/// Name → protocol factory registry.
///
/// Entries keep registration order; [`ProtocolRegistry::names`] reports it
/// (the experiment drivers run protocols in this order).
pub struct ProtocolRegistry {
    entries: Vec<(String, ProtocolFactory)>,
}

impl ProtocolRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ProtocolRegistry {
            entries: Vec::new(),
        }
    }

    /// A registry with the distributed B-Neck protocol registered under its
    /// display name `B-Neck` (built with [`BneckConfig::default`]).
    pub fn with_bneck() -> Self {
        let mut registry = Self::new();
        registry.register("B-Neck", |network| {
            Box::new(BneckSimulation::new(network, BneckConfig::default()))
        });
        registry
    }

    /// Registers (or replaces) a protocol factory under `name`.
    pub fn register<F>(&mut self, name: impl Into<String>, factory: F)
    where
        F: for<'n> Fn(&'n Network) -> Box<dyn ProtocolWorld + 'n> + Send + Sync + 'static,
    {
        let name = name.into();
        self.entries.retain(|(existing, _)| *existing != name);
        self.entries.push((name, Box::new(factory)));
    }

    /// Builds a fresh simulation of protocol `name` over `network`, or `None`
    /// for unregistered names.
    pub fn build<'n>(
        &self,
        name: &str,
        network: &'n Network,
    ) -> Option<Box<dyn ProtocolWorld + 'n>> {
        self.entries
            .iter()
            .find(|(entry, _)| entry == name)
            .map(|(_, factory)| factory(network))
    }

    /// `true` when `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|(entry, _)| entry == name)
    }

    /// The registered protocol names, in registration order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(name, _)| name.as_str())
    }

    /// Number of registered protocols.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Default for ProtocolRegistry {
    fn default() -> Self {
        Self::with_bneck()
    }
}

impl std::fmt::Debug for ProtocolRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProtocolRegistry")
            .field("names", &self.names().collect::<Vec<_>>())
            .finish()
    }
}

/// A topology preset: number of hosts → [`NetworkScenario`].
pub type TopologyPreset = fn(usize) -> NetworkScenario;

/// Name → topology preset registry, keyed by the `size/delay` labels the
/// reports use (`small/lan`, `medium/wan`, ...).
#[derive(Clone)]
pub struct TopologyRegistry {
    entries: Vec<(String, TopologyPreset)>,
}

impl TopologyRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        TopologyRegistry {
            entries: Vec::new(),
        }
    }

    /// The paper's evaluation networks: `small/lan`, `small/wan`,
    /// `medium/lan`, `medium/wan` and `big/lan` (§IV).
    pub fn builtin() -> Self {
        let mut registry = Self::new();
        registry.register("small/lan", NetworkScenario::small_lan as TopologyPreset);
        registry.register("small/wan", NetworkScenario::small_wan as TopologyPreset);
        registry.register("medium/lan", NetworkScenario::medium_lan as TopologyPreset);
        registry.register("medium/wan", NetworkScenario::medium_wan as TopologyPreset);
        registry.register("big/lan", NetworkScenario::big_lan as TopologyPreset);
        registry
    }

    /// Registers (or replaces) a preset under `name`.
    pub fn register(&mut self, name: impl Into<String>, preset: TopologyPreset) {
        let name = name.into();
        self.entries.retain(|(existing, _)| *existing != name);
        self.entries.push((name, preset));
    }

    /// Builds the scenario of preset `name` with the given number of hosts,
    /// or `None` for unregistered names. The scenario keeps the preset's
    /// default topology seed; override it with
    /// [`NetworkScenario::with_seed`].
    pub fn resolve(&self, name: &str, hosts: usize) -> Option<NetworkScenario> {
        self.entries
            .iter()
            .find(|(entry, _)| entry == name)
            .map(|(_, preset)| preset(hosts))
    }

    /// `true` when `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|(entry, _)| entry == name)
    }

    /// The registered preset names, in registration order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(name, _)| name.as_str())
    }
}

impl Default for TopologyRegistry {
    fn default() -> Self {
        Self::builtin()
    }
}

impl std::fmt::Debug for TopologyRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TopologyRegistry")
            .field("names", &self.names().collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bneck_net::topology::transit_stub::NetworkSize;

    #[test]
    fn bneck_is_registered_by_default() {
        let registry = ProtocolRegistry::default();
        assert!(registry.contains("B-Neck"));
        assert_eq!(registry.names().collect::<Vec<_>>(), vec!["B-Neck"]);
        let network = NetworkScenario::small_lan(20).build();
        let world = registry.build("B-Neck", &network).unwrap();
        assert_eq!(world.protocol_name(), "B-Neck");
        assert!(registry.build("XCP", &network).is_none());
        assert_eq!(registry.len(), 1);
        assert!(!registry.is_empty());
    }

    #[test]
    fn registration_replaces_and_keeps_order() {
        let mut registry = ProtocolRegistry::with_bneck();
        registry.register("B-Neck", |network| {
            Box::new(BneckSimulation::new(
                network,
                BneckConfig::default().with_packet_bits(512),
            ))
        });
        assert_eq!(registry.len(), 1, "re-registration replaces");
    }

    #[test]
    fn builtin_topologies_resolve_by_label() {
        let registry = TopologyRegistry::builtin();
        let scenario = registry.resolve("medium/wan", 50).unwrap();
        assert_eq!(scenario.size, NetworkSize::Medium);
        assert_eq!(scenario.hosts, 50);
        assert_eq!(scenario.label(), "medium/wan");
        assert!(registry.resolve("huge/lan", 10).is_none());
        assert!(registry.contains("big/lan"));
        // Every registered preset produces a scenario whose label round-trips
        // to its registry name.
        for name in registry.names() {
            assert_eq!(registry.resolve(name, 7).unwrap().label(), name);
        }
    }
}
