//! Random session planning.

use bneck_maxmin::{RateLimit, SessionId};
use bneck_net::{Network, NodeId, Path, Router};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Policy for choosing the maximum requested rate of planned sessions.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum LimitPolicy {
    /// Every session requests an unlimited rate (`r_s = ∞`).
    Unlimited,
    /// With the given probability a session requests a finite rate drawn
    /// uniformly from `[min_bps, max_bps]`; otherwise it is unlimited.
    RandomFinite {
        /// Probability that a session is rate limited.
        probability: f64,
        /// Lower bound of the requested rate, in bits per second.
        min_bps: f64,
        /// Upper bound of the requested rate, in bits per second.
        max_bps: f64,
    },
}

impl LimitPolicy {
    fn sample(&self, rng: &mut SmallRng) -> RateLimit {
        match *self {
            LimitPolicy::Unlimited => RateLimit::unlimited(),
            LimitPolicy::RandomFinite {
                probability,
                min_bps,
                max_bps,
            } => {
                if rng.gen_bool(probability) {
                    RateLimit::finite(rng.gen_range(min_bps..=max_bps))
                } else {
                    RateLimit::unlimited()
                }
            }
        }
    }
}

/// A planned session: identifier, endpoints, requested maximum rate and the
/// shortest path the planner routed the session along.
///
/// Carrying the path means a harness applying the request can join with
/// [`Path`] directly instead of re-running the shortest-path search the
/// planner already performed (paths clone by reference count).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct SessionRequest {
    /// The session identifier the planner assigned.
    pub session: SessionId,
    /// Source host.
    pub source: NodeId,
    /// Destination host.
    pub destination: NodeId,
    /// Maximum requested rate.
    pub limit: RateLimit,
    /// The minimum-hop path from `source` to `destination` the planner found.
    pub path: Path,
}

/// Plans sessions between hosts chosen uniformly at random, as in the paper's
/// experiments ("sessions have been created by choosing a source and a
/// destination node, uniformly at random among all the network hosts").
///
/// Per the paper's system model, every host is the source of at most one
/// session at a time; destinations may be shared. The planner keeps track of
/// the source hosts it has handed out and of the next session identifier, so
/// it can be reused across experiment phases.
#[derive(Debug)]
pub struct SessionPlanner<'a> {
    router: Router<'a>,
    hosts: Vec<NodeId>,
    rng: SmallRng,
    used_sources: BTreeSet<NodeId>,
    next_id: u64,
    /// Worker threads used to pre-build per-router routing trees before the
    /// (serial) random planning loop; never affects planner output, only
    /// wall-clock time.
    threads: usize,
}

impl<'a> SessionPlanner<'a> {
    /// Creates a planner over the hosts of `network`.
    ///
    /// The worker-thread count for routing-tree construction comes from the
    /// `BNECK_THREADS` environment variable (the same knob the experiment
    /// driver honors), falling back to the available parallelism; override it
    /// with [`SessionPlanner::with_threads`]. Planner output is bit-identical
    /// at any thread count — only tree construction is parallel, while the
    /// random choice of endpoints and limits stays a single sequential pass.
    ///
    /// # Panics
    ///
    /// Panics if the network has fewer than two hosts.
    pub fn new(network: &'a Network, seed: u64) -> Self {
        let hosts: Vec<NodeId> = network.hosts().map(|h| h.id()).collect();
        assert!(hosts.len() >= 2, "planning sessions needs at least 2 hosts");
        SessionPlanner {
            router: Router::new(network),
            hosts,
            rng: SmallRng::seed_from_u64(seed),
            used_sources: BTreeSet::new(),
            next_id: 0,
            threads: threads_from_env(),
        }
    }

    /// Overrides the worker-thread count used for routing-tree construction.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Number of hosts still available as session sources.
    pub fn free_sources(&self) -> usize {
        self.hosts.len() - self.used_sources.len()
    }

    /// Marks a source host as free again (used after planning a `Leave`).
    pub fn release_source(&mut self, host: NodeId) {
        self.used_sources.remove(&host);
    }

    /// Plans up to `count` sessions between connected hosts, each from a
    /// distinct, previously unused source host. Returns fewer requests than
    /// asked when the network runs out of free source hosts.
    pub fn plan(&mut self, count: usize, limits: LimitPolicy) -> Vec<SessionRequest> {
        let mut requests = Vec::with_capacity(count);
        let mut candidates: Vec<NodeId> = self
            .hosts
            .iter()
            .copied()
            .filter(|h| !self.used_sources.contains(h))
            .collect();
        candidates.shuffle(&mut self.rng);
        // Pre-build the per-router BFS trees the routing below will hit, in
        // parallel. Trees are pure functions of the network, so this is
        // invisible to the sequential RNG-driven loop — the plan comes out
        // bit-identical at any thread count, it just arrives sooner.
        self.router.warm_router_trees(&candidates, self.threads);
        for source in candidates {
            if requests.len() >= count {
                break;
            }
            // Destination: any other host, uniformly at random; retry a few
            // times in case the first pick is unreachable or equal. Routing
            // goes through the per-router tree cache: at most one (small)
            // router-graph BFS per stub router for the whole plan, instead of
            // one whole-network BFS per session — the difference between
            // seconds and minutes when planning paper-scale populations.
            let mut routed = None;
            for _ in 0..8 {
                let candidate = self.hosts[self.rng.gen_range(0..self.hosts.len())];
                if candidate == source {
                    continue;
                }
                if let Some(path) = self.router.host_path_cached(source, candidate) {
                    routed = Some((candidate, path));
                    break;
                }
            }
            let Some((destination, path)) = routed else {
                continue;
            };
            let limit = limits.sample(&mut self.rng);
            let session = SessionId(self.next_id);
            self.next_id += 1;
            self.used_sources.insert(source);
            requests.push(SessionRequest {
                session,
                source,
                destination,
                limit,
                path,
            });
        }
        requests
    }

    /// Access to the planner's random generator, for schedulers that need
    /// random timestamps consistent with the planned sessions.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

/// Worker-thread count from `BNECK_THREADS`; unset, empty or unparsable
/// values fall back to the available parallelism.
#[allow(clippy::disallowed_methods)] // mirrored by the xlint DET002 allow below
fn threads_from_env() -> usize {
    // xlint: allow(DET002, reason = "thread count selects scheduling only; results are bit-identical at any value (determinism suite)")
    match std::env::var("BNECK_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => available_parallelism(),
        },
        _ => available_parallelism(),
    }
}

fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::NetworkScenario;

    #[test]
    fn plans_distinct_sources_and_valid_destinations() {
        let net = NetworkScenario::small_lan(60).build();
        let mut planner = SessionPlanner::new(&net, 7);
        let requests = planner.plan(25, LimitPolicy::Unlimited);
        assert_eq!(requests.len(), 25);
        let mut sources = BTreeSet::new();
        for r in &requests {
            assert!(sources.insert(r.source), "duplicate source host");
            assert_ne!(r.source, r.destination);
            assert!(r.limit.is_unlimited());
        }
        assert_eq!(planner.free_sources(), 60 - 25);
    }

    #[test]
    fn session_ids_are_consecutive_across_calls() {
        let net = NetworkScenario::small_lan(40).build();
        let mut planner = SessionPlanner::new(&net, 3);
        let a = planner.plan(5, LimitPolicy::Unlimited);
        let b = planner.plan(5, LimitPolicy::Unlimited);
        let ids: Vec<u64> = a.iter().chain(b.iter()).map(|r| r.session.0).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn planning_stops_when_sources_run_out() {
        let net = NetworkScenario::small_lan(10).build();
        let mut planner = SessionPlanner::new(&net, 3);
        let requests = planner.plan(50, LimitPolicy::Unlimited);
        assert!(requests.len() <= 10);
        assert_eq!(planner.free_sources(), 10 - requests.len());
        // Releasing a source makes it plannable again.
        let released = requests[0].source;
        planner.release_source(released);
        assert_eq!(planner.free_sources(), 10 - requests.len() + 1);
    }

    #[test]
    fn limit_policy_generates_finite_limits() {
        let net = NetworkScenario::small_lan(80).build();
        let mut planner = SessionPlanner::new(&net, 11);
        let requests = planner.plan(
            40,
            LimitPolicy::RandomFinite {
                probability: 0.5,
                min_bps: 1e6,
                max_bps: 50e6,
            },
        );
        let finite = requests.iter().filter(|r| !r.limit.is_unlimited()).count();
        assert!(finite > 0, "some sessions should be rate limited");
        assert!(finite < requests.len(), "some sessions should be unlimited");
        for r in requests.iter().filter(|r| !r.limit.is_unlimited()) {
            assert!(r.limit.as_bps() >= 1e6 && r.limit.as_bps() <= 50e6);
        }
    }

    #[test]
    fn deterministic_for_a_seed() {
        let net = NetworkScenario::small_lan(30).build();
        let a = SessionPlanner::new(&net, 5).plan(10, LimitPolicy::Unlimited);
        let b = SessionPlanner::new(&net, 5).plan(10, LimitPolicy::Unlimited);
        assert_eq!(a, b);
    }

    #[test]
    fn plans_are_identical_at_any_thread_count() {
        let net = NetworkScenario::small_wan(48).build();
        let limits = LimitPolicy::RandomFinite {
            probability: 0.4,
            min_bps: 1e6,
            max_bps: 20e6,
        };
        let baseline = SessionPlanner::new(&net, 17)
            .with_threads(1)
            .plan(30, limits);
        assert!(!baseline.is_empty());
        for threads in [2, 4, 7] {
            let plan = SessionPlanner::new(&net, 17)
                .with_threads(threads)
                .plan(30, limits);
            assert_eq!(plan, baseline, "plan diverges at {threads} threads");
        }
    }

    #[test]
    #[should_panic(expected = "at least 2 hosts")]
    fn too_few_hosts_rejected() {
        let net = NetworkScenario::small_lan(1).build();
        let _ = SessionPlanner::new(&net, 1);
    }
}
