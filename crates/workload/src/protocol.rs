//! The unified protocol-under-test interface.
//!
//! The paper evaluates B-Neck against BFYZ, CG and RCP on the *same*
//! simulated networks and workloads (§IV, Figures 5–8). [`ProtocolWorld`] is
//! the contract that makes this possible in code: anything implementing it
//! can be handed a workload schedule (it is a [`ScheduleTarget`]), driven on
//! the discrete-event engine (it is a [`Simulation`], and therefore a `Send`
//! unit the parallel sweep drivers can move across worker threads), and asked
//! for its per-session rates and its session set for comparison against the
//! centralized oracle.
//!
//! `BneckSimulation` implements the trait here; `BaselineSimulation`
//! implements it in `bneck-baselines` (which also provides a by-name factory
//! so experiment drivers can add a protocol without monomorphizing a new
//! runner).

use crate::schedule::ScheduleTarget;
use bneck_core::{BneckSimulation, RateEvents, Subscriber};
use bneck_maxmin::{Allocation, SessionSet};
use bneck_sim::Simulation;
use std::sync::Arc;

/// A protocol-under-test: a fully-built simulation that accepts workload
/// events, runs on the unified engine interface, exposes the rates the
/// experiments compare against the centralized oracle, and fans its
/// `API.Rate` notifications out to registered [`Subscriber`]s.
pub trait ProtocolWorld: Simulation + ScheduleTarget {
    /// The protocol's display name (`B-Neck`, `BFYZ`, `CG`, `RCP`).
    fn protocol_name(&self) -> &'static str;

    /// The rate each active session is currently assigned at its source.
    fn current_rates(&self) -> Allocation;

    /// The active sessions (paths plus requested limits), for feeding the
    /// centralized oracle.
    fn session_set(&self) -> Arc<SessionSet>;

    /// Registers an observer of this protocol's `API.Rate` notifications
    /// (and, for subscribers that opt in, its packet transmissions).
    fn subscribe(&mut self, subscriber: Box<dyn Subscriber>);

    /// Opens a drainable stream of this protocol's
    /// [`RateEvent`](bneck_core::RateEvent)s. Each call opens an independent
    /// stream carrying events from registration onward.
    fn rate_events(&mut self) -> RateEvents {
        let (events, writer) = RateEvents::channel();
        self.subscribe(writer);
        events
    }

    /// Whether the protocol stops generating control traffic once converged.
    /// `true` only for B-Neck — the probing baselines never go quiescent
    /// while a session is active (the defining contrast of Figure 8).
    fn goes_quiescent(&self) -> bool;

    /// Total control packets transmitted over links so far.
    fn packets_sent(&self) -> u64;

    /// The documented convergence tolerance of the protocol, as the maximum
    /// mean absolute per-session relative error (in percent, against the
    /// max-min fair rates) the protocol is expected to settle within on a
    /// converged steady state. `None` means the protocol converges to the
    /// exact rates (B-Neck, Theorem 1 of the paper).
    fn convergence_tolerance_pct(&self) -> Option<f64>;
}

impl ProtocolWorld for BneckSimulation<'_> {
    fn protocol_name(&self) -> &'static str {
        "B-Neck"
    }

    fn current_rates(&self) -> Allocation {
        BneckSimulation::current_rates(self)
    }

    fn session_set(&self) -> Arc<SessionSet> {
        BneckSimulation::session_set(self)
    }

    fn subscribe(&mut self, subscriber: Box<dyn Subscriber>) {
        self.subscribe_boxed(subscriber);
    }

    fn goes_quiescent(&self) -> bool {
        true
    }

    fn packets_sent(&self) -> u64 {
        self.packet_stats().total()
    }

    fn convergence_tolerance_pct(&self) -> Option<f64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::NetworkScenario;
    use crate::sessions::{LimitPolicy, SessionPlanner};
    use bneck_core::BneckConfig;
    use bneck_maxmin::prelude::*;
    use bneck_sim::SimTime;

    #[test]
    fn bneck_runs_to_the_exact_rates_through_the_unified_trait() {
        let network = NetworkScenario::small_lan(40).with_seed(4).build();
        let mut planner = SessionPlanner::new(&network, 9);
        let requests = planner.plan(12, LimitPolicy::Unlimited);
        let mut sim = BneckSimulation::new(&network, BneckConfig::default());
        {
            let world: &mut dyn ProtocolWorld = &mut sim;
            for r in &requests {
                assert!(world.apply_join(SimTime::ZERO, r));
            }
            let report = world.run_to_quiescence();
            assert!(report.quiescent);
            assert_eq!(world.protocol_name(), "B-Neck");
            assert!(world.goes_quiescent());
            assert!(world.convergence_tolerance_pct().is_none());
            assert!(world.packets_sent() > 0);
            let sessions = ProtocolWorld::session_set(world);
            assert_eq!(sessions.len(), requests.len());
            let oracle = CentralizedBneck::new(&network, &sessions).solve();
            let tol = Tolerance::new(1e-6, 10.0);
            assert!(
                compare_allocations(&sessions, &world.current_rates(), &oracle, tol).is_ok(),
                "quiescent rates through the trait must equal the oracle's"
            );
        }
    }
}
