//! The evaluation networks of the paper.

use bneck_net::topology::transit_stub::{paper_network, NetworkSize};
use bneck_net::{DelayModel, Network};
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// A network scenario: a transit–stub topology size, a delay model (LAN or
/// WAN) and a host count.
///
/// The paper evaluates Small (110 routers), Medium (1,100) and Big (11,000)
/// networks in both LAN (1 µs links) and WAN (1–10 ms links) flavours, with up
/// to 600,000 hosts.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct NetworkScenario {
    /// Topology size class.
    pub size: NetworkSize,
    /// Propagation delay model.
    pub delay_model: DelayModel,
    /// Number of hosts attached to random stub routers.
    pub hosts: usize,
    /// Seed for the topology generator.
    pub seed: u64,
}

impl NetworkScenario {
    /// A Small LAN network with the given number of hosts.
    pub fn small_lan(hosts: usize) -> Self {
        NetworkScenario {
            size: NetworkSize::Small,
            delay_model: DelayModel::Lan,
            hosts,
            seed: 1,
        }
    }

    /// A Small WAN network with the given number of hosts.
    pub fn small_wan(hosts: usize) -> Self {
        NetworkScenario {
            delay_model: DelayModel::Wan,
            ..Self::small_lan(hosts)
        }
    }

    /// A Medium LAN network with the given number of hosts (the configuration
    /// used by Experiments 2 and 3 of the paper).
    pub fn medium_lan(hosts: usize) -> Self {
        NetworkScenario {
            size: NetworkSize::Medium,
            delay_model: DelayModel::Lan,
            hosts,
            seed: 1,
        }
    }

    /// A Medium WAN network with the given number of hosts.
    pub fn medium_wan(hosts: usize) -> Self {
        NetworkScenario {
            delay_model: DelayModel::Wan,
            ..Self::medium_lan(hosts)
        }
    }

    /// A Big LAN network with the given number of hosts.
    pub fn big_lan(hosts: usize) -> Self {
        NetworkScenario {
            size: NetworkSize::Big,
            delay_model: DelayModel::Lan,
            hosts,
            seed: 1,
        }
    }

    /// Overrides the topology seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the network.
    pub fn build(&self) -> Network {
        paper_network(self.size, self.hosts, self.delay_model, self.seed)
    }

    /// A short label such as `small/lan`, used in reports.
    pub fn label(&self) -> String {
        let delay = match self.delay_model {
            DelayModel::Lan => "lan",
            DelayModel::Wan => "wan",
            DelayModel::Fixed(_) => "fixed",
        };
        format!("{}/{}", self.size, delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_the_expected_sizes() {
        assert_eq!(NetworkScenario::small_lan(10).size, NetworkSize::Small);
        assert_eq!(NetworkScenario::medium_lan(10).size, NetworkSize::Medium);
        assert_eq!(NetworkScenario::big_lan(10).size, NetworkSize::Big);
        assert_eq!(NetworkScenario::small_wan(10).delay_model, DelayModel::Wan);
        assert_eq!(NetworkScenario::medium_wan(10).delay_model, DelayModel::Wan);
    }

    #[test]
    fn build_generates_the_network() {
        let scenario = NetworkScenario::small_lan(25).with_seed(9);
        let net = scenario.build();
        assert_eq!(net.router_count(), 110);
        assert_eq!(net.host_count(), 25);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(NetworkScenario::small_lan(1).label(), "small/lan");
        assert_eq!(NetworkScenario::medium_wan(1).label(), "medium/wan");
    }
}
