//! Ready-made configurations for the paper's three experiments.
//!
//! Each configuration exists in two flavours:
//!
//! * `paper()` — the parameters reported in Section IV of the paper (up to
//!   300,000 sessions on networks of up to 11,000 routers). Running these
//!   requires a long offline run and plenty of memory.
//! * `scaled()` — a reduced parameter set with the same structure, sized so
//!   the full experiment suite runs in minutes on a laptop. The experiment
//!   binaries use the scaled flavour by default and accept the paper flavour
//!   behind a flag.

use crate::dynamics::DynamicsPlanner;
use crate::scenario::NetworkScenario;
use crate::schedule::Schedule;
use crate::sessions::{LimitPolicy, SessionPlanner};
use bneck_net::{Delay, Network};
use bneck_sim::SimTime;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Experiment 1: many sessions join simultaneously; measure the time to
/// quiescence and the control traffic (Figure 5).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Experiment1Config {
    /// The network scenario to run on.
    pub scenario: NetworkScenario,
    /// Number of sessions joining.
    pub sessions: usize,
    /// Window in which all joins happen (1 ms in the paper).
    pub join_window: Delay,
    /// Maximum-rate request policy.
    pub limits: LimitPolicy,
    /// Seed for session planning.
    pub seed: u64,
}

impl Experiment1Config {
    /// A scaled-down configuration: `sessions` sessions on a Small network.
    pub fn scaled(scenario: NetworkScenario, sessions: usize) -> Self {
        Experiment1Config {
            scenario,
            sessions,
            join_window: Delay::from_millis(1),
            limits: LimitPolicy::Unlimited,
            seed: 1,
        }
    }

    /// The session-count sweep of Figure 5 as reported in the paper
    /// (10 to 300,000 sessions).
    pub fn paper_sweep() -> Vec<usize> {
        vec![10, 100, 1_000, 10_000, 100_000, 300_000]
    }

    /// A reduced sweep with the same log-scale structure, suitable for CI.
    pub fn scaled_sweep() -> Vec<usize> {
        vec![10, 30, 100, 300, 1_000]
    }

    /// The paper-scale preset: `sessions` simultaneous joins (50k–100k,
    /// toward the paper's 300,000) on a Medium LAN transit–stub network with
    /// enough hosts that every session gets its own source host (the paper
    /// attaches up to 220,000 hosts to the Medium network).
    pub fn paper_scale(sessions: usize) -> Self {
        Experiment1Config {
            scenario: NetworkScenario::medium_lan(sessions + sessions / 4 + 8),
            sessions,
            join_window: Delay::from_millis(1),
            limits: LimitPolicy::Unlimited,
            seed: 1,
        }
    }

    /// The session counts exercised by the paper-scale runs.
    pub fn paper_scale_sweep() -> Vec<usize> {
        vec![10_000, 50_000, 100_000]
    }

    /// The full paper-scale preset: 300,000 simultaneous joins — the largest
    /// session count of Figure 5 — on a Medium LAN transit–stub network with
    /// one source host per session plus destination headroom (the paper
    /// attaches up to 220,000 hosts to its Medium network; reaching the
    /// 300,000-session point needs proportionally more).
    pub fn paper_full() -> Self {
        Self::paper_scale(300_000)
    }

    /// Builds the join schedule over `network` (all sessions join at times
    /// chosen uniformly at random within the join window).
    pub fn schedule(&self, network: &Network) -> Schedule {
        let mut planner = DynamicsPlanner::new(network, self.seed);
        planner.phase(
            SimTime::ZERO,
            self.join_window,
            self.sessions,
            0,
            0,
            self.limits,
        )
    }
}

/// One phase of Experiment 2.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct PhaseSpec {
    /// Human-readable phase name (as used in Figure 6).
    pub name: String,
    /// Sessions joining in this phase.
    pub joins: usize,
    /// Sessions leaving in this phase.
    pub leaves: usize,
    /// Sessions changing their maximum rate in this phase.
    pub changes: usize,
}

/// Experiment 2: stability under a highly dynamic system — five phases of
/// churn on a Medium LAN network (Figure 6).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Experiment2Config {
    /// The network scenario (Medium LAN in the paper).
    pub scenario: NetworkScenario,
    /// Sessions joining in the initial phase (100,000 in the paper).
    pub initial_sessions: usize,
    /// Sessions affected in each churn phase (20,000 in the paper).
    pub churn: usize,
    /// Window in which each phase's changes happen (1 ms in the paper).
    pub change_window: Delay,
    /// Maximum-rate request policy for joins and changes.
    pub limits: LimitPolicy,
    /// Seed for session planning.
    pub seed: u64,
}

impl Experiment2Config {
    /// The paper's parameters: 100,000 initial sessions and 20,000-session
    /// churn phases on a Medium LAN network with 220,000 hosts.
    pub fn paper() -> Self {
        Experiment2Config {
            scenario: NetworkScenario::medium_lan(220_000),
            initial_sessions: 100_000,
            churn: 20_000,
            change_window: Delay::from_millis(1),
            limits: LimitPolicy::Unlimited,
            seed: 1,
        }
    }

    /// A scaled-down configuration with the same five-phase structure.
    pub fn scaled() -> Self {
        Experiment2Config {
            scenario: NetworkScenario::small_lan(700),
            initial_sessions: 300,
            churn: 60,
            change_window: Delay::from_millis(1),
            limits: LimitPolicy::Unlimited,
            seed: 1,
        }
    }

    /// The five phases of the experiment, in order: a large join phase
    /// followed by leave, change, join and mixed churn phases.
    pub fn phases(&self) -> Vec<PhaseSpec> {
        vec![
            PhaseSpec {
                name: "join".to_string(),
                joins: self.initial_sessions,
                leaves: 0,
                changes: 0,
            },
            PhaseSpec {
                name: "leave".to_string(),
                joins: 0,
                leaves: self.churn,
                changes: 0,
            },
            PhaseSpec {
                name: "change".to_string(),
                joins: 0,
                leaves: 0,
                changes: self.churn,
            },
            PhaseSpec {
                name: "join-2".to_string(),
                joins: self.churn,
                leaves: 0,
                changes: 0,
            },
            PhaseSpec {
                name: "mixed".to_string(),
                joins: self.churn,
                leaves: self.churn,
                changes: self.churn,
            },
        ]
    }

    /// Builds a planner for driving the phases over `network`.
    pub fn planner<'a>(&self, network: &'a Network) -> DynamicsPlanner<'a> {
        DynamicsPlanner::new(network, self.seed)
    }
}

/// Experiment 3: accuracy over time against non-quiescent baselines — joins
/// plus leaves in the first milliseconds, rates sampled at fixed intervals
/// (Figures 7 and 8).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Experiment3Config {
    /// The network scenario (Medium LAN in the paper).
    pub scenario: NetworkScenario,
    /// Sessions joining (100,000 in the paper).
    pub joins: usize,
    /// Sessions leaving shortly after joining (10,000 in the paper).
    pub leaves: usize,
    /// Window in which all joins and leaves happen (5 ms in the paper).
    pub change_window: Delay,
    /// Interval at which the assigned rates are sampled (3 ms in the paper).
    pub sample_interval: Delay,
    /// Total observation horizon (120 ms in the paper's figures).
    pub horizon: Delay,
    /// Maximum-rate request policy.
    pub limits: LimitPolicy,
    /// Seed for session planning.
    pub seed: u64,
}

impl Experiment3Config {
    /// The paper's parameters: 100,000 joins and 10,000 leaves in the first
    /// 5 ms on a Medium LAN network, sampled every 3 ms for 120 ms.
    pub fn paper() -> Self {
        Experiment3Config {
            scenario: NetworkScenario::medium_lan(220_000),
            joins: 100_000,
            leaves: 10_000,
            change_window: Delay::from_millis(5),
            sample_interval: Delay::from_millis(3),
            horizon: Delay::from_millis(120),
            limits: LimitPolicy::Unlimited,
            seed: 1,
        }
    }

    /// A scaled-down configuration with the same structure.
    pub fn scaled() -> Self {
        Experiment3Config {
            scenario: NetworkScenario::small_lan(600),
            joins: 250,
            leaves: 25,
            change_window: Delay::from_millis(5),
            sample_interval: Delay::from_millis(3),
            horizon: Delay::from_millis(120),
            limits: LimitPolicy::Unlimited,
            seed: 1,
        }
    }

    /// Builds the workload: joins spread over the window, and the departing
    /// sessions leaving in the second half of the window.
    pub fn schedule(&self, network: &Network) -> Schedule {
        let mut planner = SessionPlanner::new(network, self.seed);
        let requests = planner.plan(self.joins, self.limits);
        let mut schedule = Schedule::new();
        let half = Delay::from_nanos(self.change_window.as_nanos() / 2);
        for request in &requests {
            let offset = Delay::from_nanos(planner.rng().gen_range(0..half.as_nanos().max(1)));
            schedule.push_join(SimTime::ZERO + offset, request.clone());
        }
        for request in requests.iter().take(self.leaves) {
            let offset = Delay::from_nanos(
                planner
                    .rng()
                    .gen_range(half.as_nanos()..self.change_window.as_nanos()),
            );
            schedule.push(
                SimTime::ZERO + offset,
                crate::schedule::WorkloadEvent::Leave {
                    session: request.session,
                },
            );
        }
        schedule
    }

    /// The sampling instants within the horizon.
    pub fn sample_times(&self) -> Vec<SimTime> {
        let mut times = Vec::new();
        let mut t = self.sample_interval;
        while t <= self.horizon {
            times.push(SimTime::ZERO + t);
            t = t + self.sample_interval;
        }
        times
    }
}

use rand::Rng;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::WorkloadEvent;

    #[test]
    fn experiment1_schedule_joins_within_the_window() {
        let config = Experiment1Config::scaled(NetworkScenario::small_lan(100), 40);
        let net = config.scenario.build();
        let schedule = config.schedule(&net);
        assert_eq!(schedule.breakdown(), (40, 0, 0));
        assert!(schedule.last_time().unwrap() <= SimTime::from_millis(1));
        assert!(!Experiment1Config::paper_sweep().is_empty());
        assert!(Experiment1Config::scaled_sweep().len() >= 4);
    }

    #[test]
    fn experiment2_has_the_five_paper_phases() {
        let config = Experiment2Config::scaled();
        let phases = config.phases();
        assert_eq!(phases.len(), 5);
        assert_eq!(phases[0].joins, config.initial_sessions);
        assert_eq!(phases[1].leaves, config.churn);
        assert_eq!(phases[2].changes, config.churn);
        assert_eq!(phases[3].joins, config.churn);
        assert_eq!(
            (phases[4].joins, phases[4].leaves, phases[4].changes),
            (config.churn, config.churn, config.churn)
        );
        let paper = Experiment2Config::paper();
        assert_eq!(paper.initial_sessions, 100_000);
        assert_eq!(paper.churn, 20_000);
    }

    #[test]
    fn experiment3_schedule_mixes_joins_and_leaves() {
        let config = Experiment3Config::scaled();
        let net = config.scenario.build();
        let schedule = config.schedule(&net);
        let (joins, leaves, changes) = schedule.breakdown();
        assert_eq!(joins, config.joins);
        assert_eq!(leaves, config.leaves);
        assert_eq!(changes, 0);
        assert!(schedule.last_time().unwrap() <= SimTime::ZERO + config.change_window);
        // Leaves happen after the corresponding join (joins are in the first
        // half of the window, leaves in the second half).
        for e in schedule.iter() {
            match e.event {
                WorkloadEvent::Join { .. } => {
                    assert!(
                        e.at < SimTime::ZERO
                            + Delay::from_nanos(config.change_window.as_nanos() / 2)
                    )
                }
                WorkloadEvent::Leave { .. } => {
                    assert!(
                        e.at >= SimTime::ZERO
                            + Delay::from_nanos(config.change_window.as_nanos() / 2)
                    )
                }
                _ => {}
            }
        }
    }

    #[test]
    fn experiment3_sample_times_cover_the_horizon() {
        let config = Experiment3Config::scaled();
        let times = config.sample_times();
        assert_eq!(times.first().copied(), Some(SimTime::from_millis(3)));
        assert_eq!(times.last().copied(), Some(SimTime::from_millis(120)));
        assert_eq!(times.len(), 40);
        let paper = Experiment3Config::paper();
        assert_eq!(paper.joins, 100_000);
    }
}
