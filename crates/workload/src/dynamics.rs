//! Phase-structured churn: joins, leaves and rate changes concentrated in
//! short windows, as in Experiment 2 of the paper.

use crate::schedule::{Schedule, WorkloadEvent};
use crate::sessions::{LimitPolicy, SessionPlanner, SessionRequest};
use bneck_maxmin::{RateLimit, SessionId};
use bneck_net::{Delay, Network, NodeId};
use bneck_sim::SimTime;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::BTreeMap;

/// Plans successive phases of session dynamics over one network, keeping track
/// of which sessions are alive so that leaves and changes always target active
/// sessions (and freed source hosts can be reused by later joins).
#[derive(Debug)]
pub struct DynamicsPlanner<'a> {
    planner: SessionPlanner<'a>,
    active: BTreeMap<SessionId, NodeId>,
}

impl<'a> DynamicsPlanner<'a> {
    /// Creates a planner over the hosts of `network`.
    ///
    /// # Panics
    ///
    /// Panics if the network has fewer than two hosts.
    pub fn new(network: &'a Network, seed: u64) -> Self {
        DynamicsPlanner {
            planner: SessionPlanner::new(network, seed),
            active: BTreeMap::new(),
        }
    }

    /// Number of sessions the planner currently considers active.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// The identifiers of the currently active sessions, in ascending order.
    pub fn active_sessions(&self) -> impl Iterator<Item = SessionId> + '_ {
        self.active.keys().copied()
    }

    /// Plans a phase starting at `start`: `joins` new sessions, `leaves`
    /// departures of active sessions and `changes` rate changes of active
    /// sessions, all at times chosen uniformly at random within `window` of
    /// the phase start (the paper concentrates each phase's changes in its
    /// first millisecond).
    ///
    /// Departures and changes are placed in the first half of the window and
    /// arrivals in the second half, so that a source host freed by a departure
    /// can immediately be reused by a new session within the same phase.
    ///
    /// Returns the schedule of the phase. Fewer events than requested are
    /// planned when there are not enough free source hosts or active sessions.
    pub fn phase(
        &mut self,
        start: SimTime,
        window: Delay,
        joins: usize,
        leaves: usize,
        changes: usize,
        limits: LimitPolicy,
    ) -> Schedule {
        let mut schedule = Schedule::new();

        // Leaves and changes draw from the currently active sessions, without
        // overlap (a session either leaves or changes in one phase). The
        // BTreeMap yields the pool in key order, so the shuffle outcome is a
        // pure function of the seed.
        let mut pool: Vec<SessionId> = self.active.keys().copied().collect();
        pool.shuffle(self.planner.rng());
        let leaving: Vec<SessionId> = pool.iter().copied().take(leaves).collect();
        let changing: Vec<SessionId> = pool
            .iter()
            .copied()
            .skip(leaving.len())
            .take(changes)
            .collect();

        let half = Delay::from_nanos(window.as_nanos() / 2);
        for session in leaving {
            let at = start + random_offset(half, self.planner.rng());
            schedule.push(at, WorkloadEvent::Leave { session });
            if let Some(source) = self.active.remove(&session) {
                self.planner.release_source(source);
            }
        }
        for session in changing {
            let at = start + random_offset(half, self.planner.rng());
            let limit = match limits {
                LimitPolicy::Unlimited => RateLimit::unlimited(),
                LimitPolicy::RandomFinite {
                    min_bps, max_bps, ..
                } => RateLimit::finite(self.planner.rng().gen_range(min_bps..=max_bps)),
            };
            schedule.push(at, WorkloadEvent::Change { session, limit });
        }

        // New arrivals, after the departures so freed source hosts can be
        // reused straight away.
        let requests: Vec<SessionRequest> = self.planner.plan(joins, limits);
        for request in requests {
            let at = start + half + random_offset(half, self.planner.rng());
            self.active.insert(request.session, request.source);
            schedule.push_join(at, request);
        }
        schedule
    }
}

fn random_offset<R: Rng>(window: Delay, rng: &mut R) -> Delay {
    if window == Delay::ZERO {
        Delay::ZERO
    } else {
        Delay::from_nanos(rng.gen_range(0..window.as_nanos()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::NetworkScenario;

    #[test]
    fn join_phase_creates_the_requested_sessions() {
        let net = NetworkScenario::small_lan(50).build();
        let mut planner = DynamicsPlanner::new(&net, 1);
        let schedule = planner.phase(
            SimTime::ZERO,
            Delay::from_millis(1),
            20,
            0,
            0,
            LimitPolicy::Unlimited,
        );
        assert_eq!(schedule.breakdown(), (20, 0, 0));
        assert_eq!(planner.active_count(), 20);
        assert!(schedule.last_time().unwrap() <= SimTime::from_millis(1));
    }

    #[test]
    fn leaves_and_changes_target_distinct_active_sessions() {
        let net = NetworkScenario::small_lan(60).build();
        let mut planner = DynamicsPlanner::new(&net, 2);
        planner.phase(
            SimTime::ZERO,
            Delay::from_millis(1),
            30,
            0,
            0,
            LimitPolicy::Unlimited,
        );
        let phase2 = planner.phase(
            SimTime::from_millis(100),
            Delay::from_millis(1),
            0,
            10,
            5,
            LimitPolicy::RandomFinite {
                probability: 1.0,
                min_bps: 1e6,
                max_bps: 10e6,
            },
        );
        assert_eq!(phase2.breakdown(), (0, 10, 5));
        assert_eq!(planner.active_count(), 20);
        // No session both leaves and changes in the same phase.
        let mut leaving = Vec::new();
        let mut changing = Vec::new();
        for e in phase2.iter() {
            match e.event {
                WorkloadEvent::Leave { session } => leaving.push(session),
                WorkloadEvent::Change { session, .. } => changing.push(session),
                _ => {}
            }
        }
        assert!(leaving.iter().all(|s| !changing.contains(s)));
        // Every event falls within the phase window.
        for e in phase2.iter() {
            assert!(e.at >= SimTime::from_millis(100));
            assert!(e.at <= SimTime::from_millis(101));
        }
    }

    #[test]
    fn freed_sources_can_be_reused_by_later_joins() {
        let net = NetworkScenario::small_lan(10).build();
        let mut planner = DynamicsPlanner::new(&net, 3);
        planner.phase(
            SimTime::ZERO,
            Delay::from_millis(1),
            10,
            0,
            0,
            LimitPolicy::Unlimited,
        );
        assert_eq!(planner.active_count(), 10);
        // All sources used: a join-only phase plans nothing new.
        let empty = planner.phase(
            SimTime::from_millis(10),
            Delay::from_millis(1),
            5,
            0,
            0,
            LimitPolicy::Unlimited,
        );
        assert_eq!(empty.breakdown().0, 0);
        // After 5 leave, 5 more can join.
        planner.phase(
            SimTime::from_millis(20),
            Delay::from_millis(1),
            0,
            5,
            0,
            LimitPolicy::Unlimited,
        );
        let refill = planner.phase(
            SimTime::from_millis(30),
            Delay::from_millis(1),
            5,
            0,
            0,
            LimitPolicy::Unlimited,
        );
        assert_eq!(refill.breakdown().0, 5);
        assert_eq!(planner.active_count(), 10);
    }

    #[test]
    fn mixed_phase_matches_requested_breakdown() {
        let net = NetworkScenario::small_lan(80).build();
        let mut planner = DynamicsPlanner::new(&net, 4);
        planner.phase(
            SimTime::ZERO,
            Delay::from_millis(1),
            40,
            0,
            0,
            LimitPolicy::Unlimited,
        );
        let mixed = planner.phase(
            SimTime::from_millis(50),
            Delay::from_millis(1),
            10,
            10,
            10,
            LimitPolicy::Unlimited,
        );
        assert_eq!(mixed.breakdown(), (10, 10, 10));
        assert_eq!(planner.active_count(), 40);
        assert!(planner.active_sessions().count() == 40);
    }
}
