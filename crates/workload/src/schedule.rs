//! Timed workload event schedules.

use crate::sessions::SessionRequest;
use bneck_core::BneckSimulation;
use bneck_maxmin::{RateLimit, SessionId};
use bneck_net::NodeId;
use bneck_sim::SimTime;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// One workload action (an invocation of an API primitive).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum WorkloadEvent {
    /// `API.Join(s, r)` for a session between two hosts.
    Join {
        /// The joining session.
        session: SessionId,
        /// Source host.
        source: NodeId,
        /// Destination host.
        destination: NodeId,
        /// Maximum requested rate.
        limit: RateLimit,
    },
    /// `API.Leave(s)`.
    Leave {
        /// The departing session.
        session: SessionId,
    },
    /// `API.Change(s, r)`.
    Change {
        /// The session changing its request.
        session: SessionId,
        /// The new maximum requested rate.
        limit: RateLimit,
    },
}

/// A workload event with the time at which it is injected.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct TimedEvent {
    /// Injection time.
    pub at: SimTime,
    /// The event.
    pub event: WorkloadEvent,
}

/// Counters of how a schedule was applied to a harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct ApplyStats {
    /// Join events accepted.
    pub joins: usize,
    /// Leave events accepted.
    pub leaves: usize,
    /// Change events accepted.
    pub changes: usize,
    /// Events rejected by the harness (for example a join from a busy source
    /// host or a leave for an unknown session).
    pub rejected: usize,
}

impl ApplyStats {
    /// Total accepted events.
    pub fn accepted(&self) -> usize {
        self.joins + self.leaves + self.changes
    }
}

/// Anything that can accept workload events: the B-Neck harness, the baseline
/// harnesses, or test doubles.
pub trait ScheduleTarget {
    /// Applies a join; returns `false` if the target rejected it.
    fn apply_join(
        &mut self,
        at: SimTime,
        session: SessionId,
        source: NodeId,
        destination: NodeId,
        limit: RateLimit,
    ) -> bool;

    /// Applies a leave; returns `false` if the target rejected it.
    fn apply_leave(&mut self, at: SimTime, session: SessionId) -> bool;

    /// Applies a rate change; returns `false` if the target rejected it.
    fn apply_change(&mut self, at: SimTime, session: SessionId, limit: RateLimit) -> bool;
}

impl ScheduleTarget for BneckSimulation<'_> {
    fn apply_join(
        &mut self,
        at: SimTime,
        session: SessionId,
        source: NodeId,
        destination: NodeId,
        limit: RateLimit,
    ) -> bool {
        self.join(at, session, source, destination, limit).is_ok()
    }

    fn apply_leave(&mut self, at: SimTime, session: SessionId) -> bool {
        self.leave(at, session).is_ok()
    }

    fn apply_change(&mut self, at: SimTime, session: SessionId, limit: RateLimit) -> bool {
        self.change(at, session, limit).is_ok()
    }
}

/// A time-ordered sequence of workload events.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Schedule {
    events: Vec<TimedEvent>,
}

impl Schedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an event, keeping the schedule ordered by time.
    pub fn push(&mut self, at: SimTime, event: WorkloadEvent) {
        self.events.push(TimedEvent { at, event });
        self.events.sort_by_key(|e| e.at);
    }

    /// Adds a join event built from a [`SessionRequest`].
    pub fn push_join(&mut self, at: SimTime, request: SessionRequest) {
        self.push(
            at,
            WorkloadEvent::Join {
                session: request.session,
                source: request.source,
                destination: request.destination,
                limit: request.limit,
            },
        );
    }

    /// Merges another schedule into this one.
    pub fn merge(&mut self, other: Schedule) {
        self.events.extend(other.events);
        self.events.sort_by_key(|e| e.at);
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when the schedule has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over the events in time order.
    pub fn iter(&self) -> impl Iterator<Item = &TimedEvent> {
        self.events.iter()
    }

    /// The time of the last event, if any.
    pub fn last_time(&self) -> Option<SimTime> {
        self.events.last().map(|e| e.at)
    }

    /// Number of events of each kind `(joins, leaves, changes)`.
    pub fn breakdown(&self) -> (usize, usize, usize) {
        let mut joins = 0;
        let mut leaves = 0;
        let mut changes = 0;
        for e in &self.events {
            match e.event {
                WorkloadEvent::Join { .. } => joins += 1,
                WorkloadEvent::Leave { .. } => leaves += 1,
                WorkloadEvent::Change { .. } => changes += 1,
            }
        }
        (joins, leaves, changes)
    }

    /// Applies every event to `target`, in time order.
    pub fn apply<T: ScheduleTarget>(&self, target: &mut T) -> ApplyStats {
        let mut stats = ApplyStats::default();
        for TimedEvent { at, event } in &self.events {
            let accepted = match *event {
                WorkloadEvent::Join {
                    session,
                    source,
                    destination,
                    limit,
                } => {
                    let ok = target.apply_join(*at, session, source, destination, limit);
                    if ok {
                        stats.joins += 1;
                    }
                    ok
                }
                WorkloadEvent::Leave { session } => {
                    let ok = target.apply_leave(*at, session);
                    if ok {
                        stats.leaves += 1;
                    }
                    ok
                }
                WorkloadEvent::Change { session, limit } => {
                    let ok = target.apply_change(*at, session, limit);
                    if ok {
                        stats.changes += 1;
                    }
                    ok
                }
            };
            if !accepted {
                stats.rejected += 1;
            }
        }
        stats
    }
}

impl FromIterator<TimedEvent> for Schedule {
    fn from_iter<T: IntoIterator<Item = TimedEvent>>(iter: T) -> Self {
        let mut events: Vec<TimedEvent> = iter.into_iter().collect();
        events.sort_by_key(|e| e.at);
        Schedule { events }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Recorder {
        log: Vec<(u64, &'static str)>,
        reject_leaves: bool,
    }

    impl ScheduleTarget for Recorder {
        fn apply_join(
            &mut self,
            at: SimTime,
            _session: SessionId,
            _source: NodeId,
            _destination: NodeId,
            _limit: RateLimit,
        ) -> bool {
            self.log.push((at.as_micros(), "join"));
            true
        }
        fn apply_leave(&mut self, at: SimTime, _session: SessionId) -> bool {
            self.log.push((at.as_micros(), "leave"));
            !self.reject_leaves
        }
        fn apply_change(&mut self, at: SimTime, _session: SessionId, _limit: RateLimit) -> bool {
            self.log.push((at.as_micros(), "change"));
            true
        }
    }

    fn sample_schedule() -> Schedule {
        let mut s = Schedule::new();
        s.push(
            SimTime::from_micros(30),
            WorkloadEvent::Leave {
                session: SessionId(0),
            },
        );
        s.push(
            SimTime::from_micros(10),
            WorkloadEvent::Join {
                session: SessionId(0),
                source: NodeId(1),
                destination: NodeId(2),
                limit: RateLimit::unlimited(),
            },
        );
        s.push(
            SimTime::from_micros(20),
            WorkloadEvent::Change {
                session: SessionId(0),
                limit: RateLimit::finite(1e6),
            },
        );
        s
    }

    #[test]
    fn events_are_kept_in_time_order() {
        let s = sample_schedule();
        let times: Vec<u64> = s.iter().map(|e| e.at.as_micros()).collect();
        assert_eq!(times, vec![10, 20, 30]);
        assert_eq!(s.last_time(), Some(SimTime::from_micros(30)));
        assert_eq!(s.breakdown(), (1, 1, 1));
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn apply_preserves_order_and_counts() {
        let s = sample_schedule();
        let mut target = Recorder::default();
        let stats = s.apply(&mut target);
        assert_eq!(
            target.log,
            vec![(10, "join"), (20, "change"), (30, "leave")]
        );
        assert_eq!(stats.joins, 1);
        assert_eq!(stats.leaves, 1);
        assert_eq!(stats.changes, 1);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.accepted(), 3);
    }

    #[test]
    fn rejections_are_counted() {
        let s = sample_schedule();
        let mut target = Recorder {
            reject_leaves: true,
            ..Default::default()
        };
        let stats = s.apply(&mut target);
        assert_eq!(stats.leaves, 0);
        assert_eq!(stats.rejected, 1);
    }

    #[test]
    fn merge_and_collect() {
        let mut a = sample_schedule();
        let b = sample_schedule();
        a.merge(b);
        assert_eq!(a.len(), 6);
        let collected: Schedule = a.iter().copied().collect();
        assert_eq!(collected.len(), 6);
        let times: Vec<u64> = collected.iter().map(|e| e.at.as_micros()).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }
}
