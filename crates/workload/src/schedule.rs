//! Timed workload event schedules.

use crate::sessions::SessionRequest;
use bneck_core::{BneckSimulation, ShardedBneckSimulation};
use bneck_maxmin::{RateLimit, SessionId};

use bneck_sim::SimTime;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// One workload action (an invocation of an API primitive).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum WorkloadEvent {
    /// `API.Join(s, r)` for a planned session (the request carries the
    /// already-routed path, so targets need not repeat the shortest-path
    /// search).
    Join {
        /// The planned session.
        request: SessionRequest,
    },
    /// `API.Leave(s)`.
    Leave {
        /// The departing session.
        session: SessionId,
    },
    /// `API.Change(s, r)`.
    Change {
        /// The session changing its request.
        session: SessionId,
        /// The new maximum requested rate.
        limit: RateLimit,
    },
}

/// A workload event with the time at which it is injected.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct TimedEvent {
    /// Injection time.
    pub at: SimTime,
    /// The event.
    pub event: WorkloadEvent,
}

/// Counters of how a schedule was applied to a harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct ApplyStats {
    /// Join events accepted.
    pub joins: usize,
    /// Leave events accepted.
    pub leaves: usize,
    /// Change events accepted.
    pub changes: usize,
    /// Events rejected by the harness (for example a join from a busy source
    /// host or a leave for an unknown session).
    pub rejected: usize,
}

impl ApplyStats {
    /// Total accepted events.
    pub fn accepted(&self) -> usize {
        self.joins + self.leaves + self.changes
    }
}

/// Anything that can accept workload events: the B-Neck harness, the baseline
/// harnesses, or test doubles.
pub trait ScheduleTarget {
    /// Applies a join; returns `false` if the target rejected it. The request
    /// carries the planner's routed path, which targets should reuse instead
    /// of recomputing the route.
    fn apply_join(&mut self, at: SimTime, request: &SessionRequest) -> bool;

    /// Applies a leave; returns `false` if the target rejected it.
    fn apply_leave(&mut self, at: SimTime, session: SessionId) -> bool;

    /// Applies a rate change; returns `false` if the target rejected it.
    fn apply_change(&mut self, at: SimTime, session: SessionId, limit: RateLimit) -> bool;
}

impl ScheduleTarget for BneckSimulation<'_> {
    fn apply_join(&mut self, at: SimTime, request: &SessionRequest) -> bool {
        self.join_with_path(at, request.session, request.path.clone(), request.limit)
            .is_ok()
    }

    fn apply_leave(&mut self, at: SimTime, session: SessionId) -> bool {
        self.leave(at, session).is_ok()
    }

    fn apply_change(&mut self, at: SimTime, session: SessionId, limit: RateLimit) -> bool {
        self.change(at, session, limit).is_ok()
    }
}

impl ScheduleTarget for ShardedBneckSimulation<'_> {
    fn apply_join(&mut self, at: SimTime, request: &SessionRequest) -> bool {
        self.join_with_path(at, request.session, request.path.clone(), request.limit)
            .is_ok()
    }

    fn apply_leave(&mut self, at: SimTime, session: SessionId) -> bool {
        self.leave(at, session).is_ok()
    }

    fn apply_change(&mut self, at: SimTime, session: SessionId, limit: RateLimit) -> bool {
        self.change(at, session, limit).is_ok()
    }
}

/// A time-ordered sequence of workload events.
///
/// Events are stored in push order and sorted lazily: [`Schedule::push`] is
/// O(1) (the schedule used to re-sort the whole vector on every push, which
/// is quadratic and ruled out paper-scale workloads of tens of thousands of
/// joins), and the ordered accessors ([`Schedule::iter`],
/// [`Schedule::apply`], [`Schedule::last_time`]) sort a temporary index
/// permutation when pushes arrived out of order. Equal timestamps keep their
/// push order, as before.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Schedule {
    events: Vec<TimedEvent>,
    /// `true` while `events` is non-decreasing in time (pushes appended in
    /// order); ordered accessors then skip the permutation sort.
    sorted: bool,
}

impl Schedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Schedule {
            events: Vec::new(),
            sorted: true,
        }
    }

    /// Adds an event in O(1); the schedule sorts lazily on ordered access.
    pub fn push(&mut self, at: SimTime, event: WorkloadEvent) {
        if let Some(last) = self.events.last() {
            if at < last.at {
                self.sorted = false;
            }
        }
        self.events.push(TimedEvent { at, event });
    }

    /// Adds a join event built from a [`SessionRequest`].
    pub fn push_join(&mut self, at: SimTime, request: SessionRequest) {
        self.push(at, WorkloadEvent::Join { request });
    }

    /// Merges another schedule into this one.
    pub fn merge(&mut self, other: Schedule) {
        if let (Some(last), Some(first)) = (self.events.last(), other.events.first()) {
            if first.at < last.at {
                self.sorted = false;
            }
        }
        self.sorted &= other.sorted;
        self.events.extend(other.events);
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when the schedule has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The indices of `events` in `(time, push order)` order.
    fn time_order(&self) -> Vec<u32> {
        let mut order: Vec<u32> = (0..self.events.len() as u32).collect();
        if !self.sorted {
            order.sort_by_key(|&i| (self.events[i as usize].at, i));
        }
        order
    }

    /// Iterates over the events in time order (equal timestamps in push
    /// order).
    pub fn iter(&self) -> impl Iterator<Item = &TimedEvent> {
        self.time_order()
            .into_iter()
            .map(move |i| &self.events[i as usize])
    }

    /// The time of the last event, if any.
    pub fn last_time(&self) -> Option<SimTime> {
        if self.sorted {
            self.events.last().map(|e| e.at)
        } else {
            self.events.iter().map(|e| e.at).max()
        }
    }

    /// Number of events of each kind `(joins, leaves, changes)`.
    pub fn breakdown(&self) -> (usize, usize, usize) {
        let mut joins = 0;
        let mut leaves = 0;
        let mut changes = 0;
        for e in &self.events {
            match e.event {
                WorkloadEvent::Join { .. } => joins += 1,
                WorkloadEvent::Leave { .. } => leaves += 1,
                WorkloadEvent::Change { .. } => changes += 1,
            }
        }
        (joins, leaves, changes)
    }

    /// Applies every event to `target`, in time order. Accepts unsized
    /// targets, so experiment drivers can apply a schedule through
    /// `&mut dyn ProtocolWorld` without monomorphizing per protocol.
    pub fn apply<T: ScheduleTarget + ?Sized>(&self, target: &mut T) -> ApplyStats {
        let mut stats = ApplyStats::default();
        for i in self.time_order() {
            let TimedEvent { at, event } = &self.events[i as usize];
            let accepted = match event {
                WorkloadEvent::Join { request } => {
                    let ok = target.apply_join(*at, request);
                    if ok {
                        stats.joins += 1;
                    }
                    ok
                }
                WorkloadEvent::Leave { session } => {
                    let ok = target.apply_leave(*at, *session);
                    if ok {
                        stats.leaves += 1;
                    }
                    ok
                }
                WorkloadEvent::Change { session, limit } => {
                    let ok = target.apply_change(*at, *session, *limit);
                    if ok {
                        stats.changes += 1;
                    }
                    ok
                }
            };
            if !accepted {
                stats.rejected += 1;
            }
        }
        stats
    }
}

impl FromIterator<TimedEvent> for Schedule {
    fn from_iter<T: IntoIterator<Item = TimedEvent>>(iter: T) -> Self {
        let mut events: Vec<TimedEvent> = iter.into_iter().collect();
        events.sort_by_key(|e| e.at);
        Schedule {
            events,
            sorted: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bneck_net::prelude::*;

    #[derive(Default)]
    struct Recorder {
        log: Vec<(u64, &'static str)>,
        reject_leaves: bool,
    }

    impl ScheduleTarget for Recorder {
        fn apply_join(&mut self, at: SimTime, _request: &SessionRequest) -> bool {
            self.log.push((at.as_micros(), "join"));
            true
        }
        fn apply_leave(&mut self, at: SimTime, _session: SessionId) -> bool {
            self.log.push((at.as_micros(), "leave"));
            !self.reject_leaves
        }
        fn apply_change(&mut self, at: SimTime, _session: SessionId, _limit: RateLimit) -> bool {
            self.log.push((at.as_micros(), "change"));
            true
        }
    }

    fn sample_request() -> SessionRequest {
        let net = synthetic::line(
            2,
            Capacity::from_mbps(100.0),
            Capacity::from_mbps(100.0),
            Delay::from_micros(1),
        );
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let path = Router::new(&net).shortest_path(hosts[0], hosts[1]).unwrap();
        SessionRequest {
            session: SessionId(0),
            source: hosts[0],
            destination: hosts[1],
            limit: RateLimit::unlimited(),
            path,
        }
    }

    fn sample_schedule() -> Schedule {
        let mut s = Schedule::new();
        s.push(
            SimTime::from_micros(30),
            WorkloadEvent::Leave {
                session: SessionId(0),
            },
        );
        s.push(
            SimTime::from_micros(10),
            WorkloadEvent::Join {
                request: sample_request(),
            },
        );
        s.push(
            SimTime::from_micros(20),
            WorkloadEvent::Change {
                session: SessionId(0),
                limit: RateLimit::finite(1e6),
            },
        );
        s
    }

    #[test]
    fn events_are_kept_in_time_order() {
        let s = sample_schedule();
        let times: Vec<u64> = s.iter().map(|e| e.at.as_micros()).collect();
        assert_eq!(times, vec![10, 20, 30]);
        assert_eq!(s.last_time(), Some(SimTime::from_micros(30)));
        assert_eq!(s.breakdown(), (1, 1, 1));
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn apply_preserves_order_and_counts() {
        let s = sample_schedule();
        let mut target = Recorder::default();
        let stats = s.apply(&mut target);
        assert_eq!(
            target.log,
            vec![(10, "join"), (20, "change"), (30, "leave")]
        );
        assert_eq!(stats.joins, 1);
        assert_eq!(stats.leaves, 1);
        assert_eq!(stats.changes, 1);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.accepted(), 3);
    }

    #[test]
    fn rejections_are_counted() {
        let s = sample_schedule();
        let mut target = Recorder {
            reject_leaves: true,
            ..Default::default()
        };
        let stats = s.apply(&mut target);
        assert_eq!(stats.leaves, 0);
        assert_eq!(stats.rejected, 1);
    }

    #[test]
    fn merge_and_collect() {
        let mut a = sample_schedule();
        let b = sample_schedule();
        a.merge(b);
        assert_eq!(a.len(), 6);
        let collected: Schedule = a.iter().cloned().collect();
        assert_eq!(collected.len(), 6);
        let times: Vec<u64> = collected.iter().map(|e| e.at.as_micros()).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }
}
