//! # bneck-workload
//!
//! Workload and scenario generation for the B-Neck experiments:
//!
//! * [`scenario`] — the evaluation networks (Small/Medium/Big transit–stub
//!   topologies in LAN or WAN flavour, as in Section IV of the paper);
//! * [`sessions`] — random session planning (source/destination hosts chosen
//!   uniformly at random, one session per source host, optional maximum-rate
//!   requests);
//! * [`schedule`] — timed `Join`/`Leave`/`Change` event schedules and their
//!   application to a protocol harness;
//! * [`protocol`] — the unified [`protocol::ProtocolWorld`] trait every
//!   protocol-under-test (B-Neck and the baselines) implements, so the
//!   experiment drivers run any protocol through one code path;
//! * [`dynamics`] — phase-structured churn (the join/leave/change phases of
//!   Experiment 2);
//! * [`experiments`] — ready-made configurations for the paper's three
//!   experiments, with both paper-scale and CI-scale parameter sets;
//! * [`registry`] — by-name factories: [`registry::ProtocolRegistry`] builds
//!   protocols-under-test, [`registry::TopologyRegistry`] builds the named
//!   topology presets;
//! * [`spec`] — declarative, serializable experiment specifications
//!   ([`spec::ExperimentSpec`]): topology + workload + protocols + seeds +
//!   repeats + output selection as data, with shipped presets reproducing
//!   the paper's evaluation matrix.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dynamics;
pub mod experiments;
pub mod protocol;
pub mod registry;
pub mod scenario;
pub mod schedule;
pub mod sessions;
pub mod spec;

pub use dynamics::DynamicsPlanner;
pub use experiments::{Experiment1Config, Experiment2Config, Experiment3Config, PhaseSpec};
pub use protocol::ProtocolWorld;
pub use registry::{ProtocolRegistry, TopologyRegistry};
pub use scenario::NetworkScenario;
pub use schedule::{ApplyStats, Schedule, ScheduleTarget, TimedEvent, WorkloadEvent};
pub use sessions::{LimitPolicy, SessionPlanner, SessionRequest};
pub use spec::{
    AccuracySpec, ChurnSpec, ExperimentKind, ExperimentSpec, FaultPoint, FaultSweepSpec, JoinsSpec,
    OutputSpec, ScaleSpec, ScenarioSpec, SpecError, ValidationSpec,
};

/// Commonly used items, suitable for glob import.
pub mod prelude {
    pub use crate::dynamics::DynamicsPlanner;
    pub use crate::experiments::{
        Experiment1Config, Experiment2Config, Experiment3Config, PhaseSpec,
    };
    pub use crate::protocol::ProtocolWorld;
    pub use crate::registry::{ProtocolRegistry, TopologyRegistry};
    pub use crate::scenario::NetworkScenario;
    pub use crate::schedule::{ApplyStats, Schedule, ScheduleTarget, TimedEvent, WorkloadEvent};
    pub use crate::sessions::{LimitPolicy, SessionPlanner, SessionRequest};
    pub use crate::spec::{
        ExperimentKind, ExperimentSpec, FaultPoint, FaultSweepSpec, ScenarioSpec, SpecError,
    };
}
