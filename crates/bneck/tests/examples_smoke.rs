//! Workspace smoke test: every example binary of the facade crate runs to
//! completion and prints the output its doc comment promises.
//!
//! The examples are spawned through the same `cargo` that runs this test
//! (`CARGO` is always set by the harness), so they are built with the current
//! toolchain and profile cache rather than a hard-coded path.

use std::process::Command;

#[allow(clippy::disallowed_methods)] // test harness plumbing: CARGO is set by cargo itself
fn run_example(name: &str) -> String {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let output = Command::new(cargo)
        .args(["run", "-q", "-p", "bneck", "--example", name])
        .env("BNECK_BENCH_BUDGET_MS", "20")
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));
    assert!(
        output.status.success(),
        "example {name} exited with {:?}\nstdout:\n{}\nstderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    String::from_utf8_lossy(&output.stdout).into_owned()
}

#[test]
fn quickstart_runs_to_completion() {
    let stdout = run_example("quickstart");
    assert!(
        stdout.contains("Mbps"),
        "quickstart should print session rates, got:\n{stdout}"
    );
}

#[test]
fn baseline_comparison_runs_to_completion() {
    let stdout = run_example("baseline_comparison");
    assert!(
        stdout.contains("B-Neck"),
        "baseline_comparison should mention B-Neck, got:\n{stdout}"
    );
}

#[test]
fn wan_dynamics_runs_to_completion() {
    run_example("wan_dynamics");
}

#[test]
fn datacenter_fabric_runs_to_completion() {
    run_example("datacenter_fabric");
}
