//! Smoke tests of the experiment harness: every figure's runner executes on a
//! tiny configuration and produces structurally sensible output (these are the
//! same code paths the `experiment1/2/3` binaries and the Criterion benches
//! use).

use bneck_bench::{run_experiment1_point, run_experiment2, run_experiment3, validate_scenario};
use bneck_workload::{Experiment1Config, Experiment2Config, Experiment3Config, NetworkScenario};

#[test]
fn figure5_runner_produces_monotone_traffic() {
    // More sessions => more control packets and (weakly) more time to
    // quiescence, the growth the paper shows in Figure 5.
    let mut previous_packets = 0u64;
    for &sessions in &[10usize, 40, 120] {
        let config = Experiment1Config::scaled(
            NetworkScenario::small_lan(2 * sessions + 20).with_seed(2),
            sessions,
        );
        let point = run_experiment1_point(&config);
        assert!(point.validated, "{sessions} sessions: oracle mismatch");
        assert!(point.time_to_quiescence_us > 0);
        assert!(
            point.total_packets > previous_packets,
            "packets must grow with the session count"
        );
        previous_packets = point.total_packets;
    }
}

#[test]
fn figure5_wan_takes_longer_than_lan() {
    let sessions = 40;
    let lan = run_experiment1_point(&Experiment1Config::scaled(
        NetworkScenario::small_lan(2 * sessions).with_seed(3),
        sessions,
    ));
    let wan = run_experiment1_point(&Experiment1Config::scaled(
        NetworkScenario::small_wan(2 * sessions).with_seed(3),
        sessions,
    ));
    assert!(lan.validated && wan.validated);
    // WAN propagation delays (1-10 ms) dominate the LAN's 1 us links.
    assert!(
        wan.time_to_quiescence_us > 10 * lan.time_to_quiescence_us,
        "WAN ({} us) should be much slower than LAN ({} us)",
        wan.time_to_quiescence_us,
        lan.time_to_quiescence_us
    );
    // But the WAN run does not need more packets, matching the paper's
    // observation that LAN scenarios produce at least as much traffic.
    assert!(wan.total_packets <= 2 * lan.total_packets);
}

#[test]
fn figure6_runner_covers_all_phases_and_goes_silent() {
    let config = Experiment2Config {
        scenario: NetworkScenario::small_lan(160),
        initial_sessions: 50,
        churn: 12,
        ..Experiment2Config::scaled()
    };
    let (phases, series) = run_experiment2(&config);
    assert_eq!(phases.len(), 5);
    assert_eq!(phases[0].name, "join");
    assert_eq!(phases[4].name, "mixed");
    for phase in &phases {
        assert!(phase.validated, "phase {} failed validation", phase.name);
        assert!(phase.time_to_quiescence_us > 0);
    }
    // Traffic eventually ceases (quiescence) — the last bins of the series
    // correspond to the final convergence, after which nothing is sent.
    assert!(series.last_active_bin().is_some());
}

#[test]
fn figure7_and_8_runner_reproduces_the_headline_contrast() {
    let config = Experiment3Config {
        scenario: NetworkScenario::small_lan(120),
        joins: 40,
        leaves: 4,
        horizon: bneck_net::Delay::from_millis(60),
        ..Experiment3Config::scaled()
    };
    let results = run_experiment3(&config, &["BFYZ"]);
    let bneck = &results[0];
    let bfyz = &results[1];

    // Figure 7: B-Neck's error reaches ~0 and never overshoots. The reference
    // allocation is the max-min of the *final* session set, so the assertion
    // only applies once the join/leave churn window has closed — while
    // sessions are still arriving, early joiners legitimately hold larger
    // shares of a less-loaded network.
    let bneck_final = bneck.samples.last().unwrap().source_error;
    assert!(bneck_final.mean.abs() < 0.5);
    let churn_end_us = config.change_window.as_micros();
    assert!(bneck
        .samples
        .iter()
        .filter(|s| s.at_us > churn_end_us)
        .all(|s| s.source_error.p90 <= 0.5));

    // Figure 8: B-Neck's per-interval traffic drops to zero, BFYZ's does not.
    assert_eq!(bneck.samples.last().unwrap().packets_in_interval, 0);
    assert!(bfyz.samples.last().unwrap().packets_in_interval > 0);
    assert!(bneck.quiescent_at_us.is_some());
    assert!(bfyz.quiescent_at_us.is_none());
    assert!(bfyz.total_packets > bneck.total_packets);
}

#[test]
fn validation_runner_reports_clean_runs() {
    let report = validate_scenario(&NetworkScenario::small_wan(80).with_seed(7), 30, 77);
    assert_eq!(report.mismatches, 0);
    assert_eq!(report.violations, 0);
    assert_eq!(report.sessions, 30);
    assert!(report.time_to_quiescence_us > 0);
}
