//! Quiescence properties (the paper's headline contribution): once the
//! max-min fair rates are computed, B-Neck generates no further traffic; any
//! change reactivates it and it becomes quiescent again.

use bneck::prelude::*;

fn build_simulation(hosts: usize, seed: u64) -> (bneck::net::Network, Vec<SessionRequest>) {
    let scenario = NetworkScenario::small_lan(hosts).with_seed(seed);
    let network = scenario.build();
    let mut planner = SessionPlanner::new(&network, seed * 7 + 1);
    let requests = planner.plan(hosts / 3, LimitPolicy::Unlimited);
    (network, requests)
}

#[test]
fn no_traffic_after_convergence() {
    let (network, requests) = build_simulation(90, 1);
    let mut sim = BneckSimulation::new(&network, BneckConfig::default());
    for r in &requests {
        sim.join(SimTime::ZERO, r.session, r.source, r.destination, r.limit)
            .unwrap();
    }
    let report = sim.run_to_quiescence();
    assert!(report.quiescent);
    assert!(sim.is_quiescent());
    assert!(sim.links_stable(), "every link satisfies Definition 2");

    // Run for a long additional horizon: nothing happens at all.
    let packets = sim.packet_stats().total();
    let events = report.events_processed;
    let later = sim.run_until(sim.now() + Delay::from_secs(10));
    assert_eq!(later.events_processed, 0);
    assert_eq!(sim.packet_stats().total(), packets);
    assert!(events > 0);
}

#[test]
fn every_change_reactivates_and_requiesces() {
    let (network, requests) = build_simulation(90, 2);
    let mut sim = BneckSimulation::new(&network, BneckConfig::default());
    for r in &requests {
        sim.join(SimTime::ZERO, r.session, r.source, r.destination, r.limit)
            .unwrap();
    }
    sim.run_to_quiescence();

    // A single rate change wakes the protocol up...
    let victim = sim.active_sessions().next().unwrap();
    let packets_before = sim.packet_stats().total();
    sim.change(
        sim.now() + Delay::from_millis(1),
        victim,
        RateLimit::finite(1e6),
    )
    .unwrap();
    let report = sim.run_to_quiescence();
    assert!(report.quiescent);
    assert!(
        sim.packet_stats().total() > packets_before,
        "the change generated control traffic"
    );
    assert!(
        (sim.allocation().rate(victim).unwrap() - 1e6).abs() < 1.0,
        "the new cap is applied"
    );

    // ... and a single departure does too; afterwards silence again.
    let packets_before = sim.packet_stats().total();
    sim.leave(sim.now() + Delay::from_millis(1), victim)
        .unwrap();
    let report = sim.run_to_quiescence();
    assert!(report.quiescent);
    assert!(sim.packet_stats().total() > packets_before);
    let packets_before = sim.packet_stats().total();
    sim.run_until(sim.now() + Delay::from_secs(1));
    assert_eq!(sim.packet_stats().total(), packets_before);
}

#[test]
fn control_traffic_is_bounded_per_session() {
    // The paper reports a few packets per session per link for static
    // workloads; check the order of magnitude: total packets stays within a
    // small multiple of (sessions × path length × probe cycles).
    let (network, requests) = build_simulation(150, 3);
    let mut sim = BneckSimulation::new(&network, BneckConfig::default());
    let mut total_hops = 0usize;
    for r in &requests {
        sim.join(SimTime::ZERO, r.session, r.source, r.destination, r.limit)
            .unwrap();
        total_hops += sim.session_path(r.session).unwrap().hop_count();
    }
    sim.run_to_quiescence();
    let packets = sim.packet_stats().total();
    assert!(packets > 0);
    // A generous bound: every session may need several probe cycles, each
    // costing about twice its path length, plus bottleneck/update traffic.
    let bound = (total_hops as u64) * 40;
    assert!(
        packets < bound,
        "control traffic {packets} exceeds the expected bound {bound}"
    );
}

#[test]
fn quiescent_state_is_stable_and_correct_after_bursts_of_churn() {
    let (network, requests) = build_simulation(120, 4);
    let mut sim = BneckSimulation::new(&network, BneckConfig::default());
    for r in &requests {
        sim.join(SimTime::ZERO, r.session, r.source, r.destination, r.limit)
            .unwrap();
    }
    sim.run_to_quiescence();

    // Leave and immediately re-join with a different request, several times.
    for round in 0..3u64 {
        let victims: Vec<_> = sim.active_sessions().take(5).collect();
        let base = sim.now() + Delay::from_millis(1);
        for (i, v) in victims.iter().enumerate() {
            sim.leave(base + Delay::from_micros(i as u64), *v).unwrap();
        }
        sim.run_to_quiescence();
        let hosts: Vec<_> = network.hosts().map(|h| h.id()).collect();
        let base = sim.now() + Delay::from_millis(1);
        let mut next = 10_000 + round * 100;
        for (i, pair) in hosts.chunks(2).take(5).enumerate() {
            if pair.len() < 2 || sim.is_source_host_busy(pair[0]) {
                continue;
            }
            let _ = sim.join(
                base + Delay::from_micros(i as u64),
                SessionId(next),
                pair[0],
                pair[1],
                RateLimit::finite(5e6 * (i as f64 + 1.0)),
            );
            next += 1;
        }
        let report = sim.run_to_quiescence();
        assert!(report.quiescent);
        assert!(sim.is_quiescent());
        // Correctness after every burst.
        let sessions = sim.session_set();
        let oracle = CentralizedBneck::new(&network, &sessions).solve();
        assert!(compare_allocations(
            &sessions,
            &sim.allocation(),
            &oracle,
            Tolerance::new(1e-6, 10.0)
        )
        .is_ok());
    }
}
