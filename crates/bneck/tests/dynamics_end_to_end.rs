//! End-to-end dynamics: the five-phase churn structure of Experiment 2 on the
//! real protocol stack, validated against the oracle after every phase.

use bneck::prelude::*;

#[test]
fn five_phase_churn_converges_and_validates_each_phase() {
    let scenario = NetworkScenario::small_lan(400).with_seed(5);
    let network = scenario.build();
    let mut planner = DynamicsPlanner::new(&network, 9);
    let mut sim = BneckSimulation::new(&network, BneckConfig::default().with_packet_log());

    let phases = [
        ("join", 120usize, 0usize, 0usize),
        ("leave", 0, 25, 0),
        ("change", 0, 0, 25),
        ("join-2", 25, 0, 0),
        ("mixed", 25, 25, 25),
    ];
    let limits = LimitPolicy::RandomFinite {
        probability: 0.25,
        min_bps: 2e6,
        max_bps: 60e6,
    };

    let mut previous_quiescence = SimTime::ZERO;
    for (name, joins, leaves, changes) in phases {
        let start = if sim.now() == SimTime::ZERO {
            SimTime::ZERO
        } else {
            sim.now() + Delay::from_millis(1)
        };
        let schedule = planner.phase(start, Delay::from_millis(1), joins, leaves, changes, limits);
        let applied = schedule.apply(&mut sim);
        assert_eq!(
            applied.rejected, 0,
            "phase {name}: the planner only produces valid events"
        );
        let report = sim.run_to_quiescence();
        assert!(report.quiescent, "phase {name} must reach quiescence");
        assert!(report.quiescent_at >= previous_quiescence);
        previous_quiescence = report.quiescent_at;

        let sessions = sim.session_set();
        assert_eq!(sessions.len(), planner.active_count());
        let oracle = CentralizedBneck::new(&network, &sessions).solve();
        if let Err(violations) = compare_allocations(
            &sessions,
            &sim.allocation(),
            &oracle,
            Tolerance::new(1e-6, 10.0),
        ) {
            panic!(
                "phase {name}: {} sessions disagree with the oracle, e.g. {}",
                violations.len(),
                violations[0]
            );
        }
    }

    // The packet log covers the whole run and ends when the last phase ends:
    // after the final quiescence instant there is no packet at all.
    let series = PacketTimeSeries::from_log(&sim.packet_log(), Delay::from_millis(5));
    assert!(series.total() > 0);
    let last_active = series.last_active_bin().unwrap();
    let quiescent_bin =
        (previous_quiescence.as_nanos() / Delay::from_millis(5).as_nanos()) as usize;
    assert!(last_active <= quiescent_bin);
}

#[test]
fn leave_heavy_churn_frees_capacity_for_survivors() {
    let scenario = NetworkScenario::small_lan(200).with_seed(6);
    let network = scenario.build();
    let mut planner = DynamicsPlanner::new(&network, 3);
    let mut sim = BneckSimulation::new(&network, BneckConfig::default());

    let join_phase = planner.phase(
        SimTime::ZERO,
        Delay::from_millis(1),
        60,
        0,
        0,
        LimitPolicy::Unlimited,
    );
    join_phase.apply(&mut sim);
    sim.run_to_quiescence();
    let before: f64 = sim.allocation().iter().map(|(_, r)| r).sum();

    // Half of the sessions leave.
    let leave_phase = planner.phase(
        sim.now() + Delay::from_millis(1),
        Delay::from_millis(1),
        0,
        30,
        0,
        LimitPolicy::Unlimited,
    );
    leave_phase.apply(&mut sim);
    sim.run_to_quiescence();

    let survivors = sim.session_set();
    assert_eq!(survivors.len(), 30);
    let after_mean: f64 =
        sim.allocation().iter().map(|(_, r)| r).sum::<f64>() / survivors.len() as f64;
    let before_mean = before / 60.0;
    assert!(
        after_mean >= before_mean,
        "survivors' average rate must not shrink after departures"
    );
    let oracle = CentralizedBneck::new(&network, &survivors).solve();
    assert!(compare_allocations(
        &survivors,
        &sim.allocation(),
        &oracle,
        Tolerance::new(1e-6, 10.0)
    )
    .is_ok());
}

#[test]
fn rate_changes_propagate_to_unrelated_sessions_through_shared_links() {
    // Two sessions share a bottleneck; a third is elsewhere. Capping one of
    // the sharing sessions must raise the other one and leave the third
    // untouched.
    let network = synthetic::dumbbell(
        3,
        Capacity::from_mbps(100.0),
        Capacity::from_mbps(80.0),
        Delay::from_micros(1),
    );
    let hosts: Vec<_> = network.hosts().map(|h| h.id()).collect();
    let mut sim = BneckSimulation::new(&network, BneckConfig::default());
    for i in 0..3u64 {
        sim.join(
            SimTime::ZERO,
            SessionId(i),
            hosts[2 * i as usize],
            hosts[2 * i as usize + 1],
            RateLimit::unlimited(),
        )
        .unwrap();
    }
    sim.run_to_quiescence();
    for i in 0..3u64 {
        assert!((sim.allocation().rate(SessionId(i)).unwrap() - 80e6 / 3.0).abs() < 1.0);
    }

    sim.change(
        sim.now() + Delay::from_millis(1),
        SessionId(0),
        RateLimit::finite(8e6),
    )
    .unwrap();
    sim.run_to_quiescence();
    let alloc = sim.allocation();
    assert!((alloc.rate(SessionId(0)).unwrap() - 8e6).abs() < 1.0);
    assert!((alloc.rate(SessionId(1)).unwrap() - 36e6).abs() < 1.0);
    assert!((alloc.rate(SessionId(2)).unwrap() - 36e6).abs() < 1.0);
}
