//! End-to-end behaviour of the non-quiescent baselines, and the structural
//! contrasts with B-Neck that Experiment 3 of the paper highlights.

use bneck::prelude::*;

/// Shared workload: `n` sessions on a Small LAN network.
fn workload(n: usize, seed: u64) -> (bneck::net::Network, Vec<SessionRequest>) {
    let scenario = NetworkScenario::small_lan(3 * n).with_seed(seed);
    let network = scenario.build();
    let mut planner = SessionPlanner::new(&network, seed + 1);
    let requests = planner.plan(n, LimitPolicy::Unlimited);
    (network, requests)
}

fn oracle(network: &bneck::net::Network, requests: &[SessionRequest]) -> (SessionSet, Allocation) {
    let mut router = Router::new(network);
    let sessions: SessionSet = requests
        .iter()
        .filter_map(|r| {
            let path = router.shortest_path(r.source, r.destination)?;
            Some(Session::new(r.session, path, r.limit))
        })
        .collect();
    let allocation = CentralizedBneck::new(network, &sessions).solve();
    (sessions, allocation)
}

#[test]
fn bfyz_approaches_the_max_min_rates_but_never_stops() {
    let (network, requests) = workload(30, 1);
    let (_sessions, fair) = oracle(&network, &requests);
    let mut sim = BaselineSimulation::new(&network, Bfyz::default(), BaselineConfig::default());
    for r in &requests {
        assert!(sim.join(SimTime::ZERO, r.session, r.source, r.destination, r.limit));
    }
    sim.run_until(SimTime::from_millis(80));
    let errors = rate_errors(&sim.current_rates(), &fair);
    let summary = Summary::of(&errors);
    assert!(
        summary.mean.abs() < 15.0,
        "BFYZ should be within ~15% of max-min on average, got {}",
        summary.mean
    );
    assert!(!sim.is_quiescent(), "BFYZ keeps probing forever");
    let packets_at_80ms = sim.stats().total();
    sim.run_until(SimTime::from_millis(120));
    assert!(
        sim.stats().total() > packets_at_80ms + 100,
        "BFYZ keeps injecting control packets after convergence"
    );
}

#[test]
fn cg_and_rcp_only_approximate_the_allocation() {
    // A deliberately contended workload: one session per host and a mix of
    // rate-limited sessions gives the allocation a multi-bottleneck structure,
    // where per-link equal shares (CG) and a per-link control law with no
    // per-session state (RCP) cannot reproduce the exact max-min rates.
    let scenario = NetworkScenario::small_lan(30).with_seed(2);
    let network = scenario.build();
    let mut planner = SessionPlanner::new(&network, 3);
    let requests = planner.plan(
        30,
        LimitPolicy::RandomFinite {
            probability: 0.4,
            min_bps: 1e6,
            max_bps: 40e6,
        },
    );
    let (_sessions, fair) = oracle(&network, &requests);

    let mut cg = BaselineSimulation::new(&network, CobbGouda::default(), BaselineConfig::default());
    let mut rcp = BaselineSimulation::new(&network, Rcp::default(), BaselineConfig::default());
    for r in &requests {
        cg.join(SimTime::ZERO, r.session, r.source, r.destination, r.limit);
        rcp.join(SimTime::ZERO, r.session, r.source, r.destination, r.limit);
    }
    cg.run_until(SimTime::from_millis(80));
    rcp.run_until(SimTime::from_millis(80));

    // Both assign non-trivial rates but are approximate (the paper observed
    // they did not converge to the exact rates in the allotted time).
    for (name, sim_rates) in [("CG", cg.current_rates()), ("RCP", rcp.current_rates())] {
        let assigned_total: f64 = sim_rates.iter().map(|(_, r)| r).sum();
        assert!(assigned_total > 0.0, "{name} assigns some bandwidth");
        let errors = rate_errors(&sim_rates, &fair);
        let worst = errors.iter().cloned().fold(0.0f64, |a, b| a.max(b.abs()));
        assert!(
            worst > 1.0,
            "{name} is expected to be approximate, not exact (worst error {worst}%)"
        );
    }
    assert!(!cg.is_quiescent());
    assert!(!rcp.is_quiescent());
}

#[test]
fn bneck_is_conservative_while_bfyz_overshoots_transiently() {
    let (network, requests) = workload(40, 3);
    let (_sessions, fair) = oracle(&network, &requests);

    let mut bneck = BneckSimulation::new(&network, BneckConfig::default());
    let mut bfyz = BaselineSimulation::new(&network, Bfyz::default(), BaselineConfig::default());
    for r in &requests {
        bneck
            .join(SimTime::ZERO, r.session, r.source, r.destination, r.limit)
            .unwrap();
        bfyz.join(SimTime::ZERO, r.session, r.source, r.destination, r.limit);
    }

    let mut bfyz_ever_overshot = false;
    for ms in 1..=40u64 {
        let at = SimTime::from_millis(ms);
        bneck.run_until(at);
        bfyz.run_until(at);
        let bneck_errors = rate_errors(&bneck.current_rates(), &fair);
        // B-Neck transient rates never exceed the max-min rates.
        for e in &bneck_errors {
            assert!(
                *e <= 0.01,
                "B-Neck overshot the max-min rate by {e}% at {ms} ms"
            );
        }
        let bfyz_errors = rate_errors(&bfyz.current_rates(), &fair);
        if bfyz_errors.iter().any(|e| *e > 1.0) {
            bfyz_ever_overshot = true;
        }
    }
    assert!(
        bfyz_ever_overshot,
        "BFYZ is expected to overestimate some rate transiently"
    );
}

#[test]
fn bneck_traffic_stops_while_baseline_traffic_continues() {
    let (network, requests) = workload(25, 4);
    let mut bneck = BneckSimulation::new(&network, BneckConfig::default());
    let mut bfyz = BaselineSimulation::new(&network, Bfyz::default(), BaselineConfig::default());
    for r in &requests {
        bneck
            .join(SimTime::ZERO, r.session, r.source, r.destination, r.limit)
            .unwrap();
        bfyz.join(SimTime::ZERO, r.session, r.source, r.destination, r.limit);
    }
    // Run both for 100 ms of simulated time.
    bneck.run_until(SimTime::from_millis(100));
    bfyz.run_until(SimTime::from_millis(100));

    // In the second half of the horizon, B-Neck sends nothing while the
    // baseline keeps a steady packet flow.
    let bneck_total_at_100 = bneck.packet_stats().total();
    let bfyz_total_at_100 = bfyz.stats().total();
    bneck.run_until(SimTime::from_millis(200));
    bfyz.run_until(SimTime::from_millis(200));
    assert_eq!(
        bneck.packet_stats().total(),
        bneck_total_at_100,
        "B-Neck is quiescent in steady state"
    );
    let bfyz_second_half = bfyz.stats().total() - bfyz_total_at_100;
    assert!(
        bfyz_second_half as f64 > 0.8 * bfyz_total_at_100 as f64,
        "the baseline's control traffic rate stays roughly constant"
    );
}

#[test]
fn baselines_track_departures() {
    let (network, requests) = workload(20, 5);
    let mut sim = BaselineSimulation::new(&network, Bfyz::default(), BaselineConfig::default());
    for r in &requests {
        sim.join(SimTime::ZERO, r.session, r.source, r.destination, r.limit);
    }
    sim.run_until(SimTime::from_millis(40));
    let before = sim.current_rates();
    // Half the sessions leave; the survivors' rates must not decrease.
    for r in requests.iter().take(10) {
        sim.leave(SimTime::from_millis(41), r.session).unwrap();
    }
    sim.run_until(SimTime::from_millis(100));
    let after = sim.current_rates();
    assert_eq!(sim.active_count(), 10);
    let before_mean: f64 = requests
        .iter()
        .skip(10)
        .filter_map(|r| before.rate(r.session))
        .sum::<f64>()
        / 10.0;
    let after_mean: f64 = requests
        .iter()
        .skip(10)
        .filter_map(|r| after.rate(r.session))
        .sum::<f64>()
        / 10.0;
    assert!(after_mean + 1.0 >= before_mean);
}
