//! Scale tests: the distributed protocol at paper-scale session counts, and
//! robustness of convergence when sessions leave mid-flight.
//!
//! The 10k-session test drives the `paper_scale` preset end to end and is
//! `#[ignore]`d by default — run it in release:
//!
//! ```text
//! cargo test --release -p bneck scale -- --ignored
//! ```

use bneck::prelude::*;
use proptest::prelude::*;

/// Join → quiescence at 10,000 sessions on the Medium transit–stub network;
/// the distributed rates must match the centralized oracle exactly.
#[test]
#[ignore = "paper-scale run: execute in release with -- --ignored"]
fn paper_scale_10k_matches_oracle() {
    let config = Experiment1Config::paper_scale(10_000);
    let network = config.scenario.build();
    let schedule = config.schedule(&network);
    let mut sim = BneckSimulation::new(&network, BneckConfig::default());
    let stats = schedule.apply(&mut sim);
    assert_eq!(stats.joins, 10_000, "every planned session must join");
    let report = sim.run_to_quiescence();
    assert!(report.quiescent);
    assert!(sim.links_stable());

    let session_set = sim.session_set();
    assert_eq!(session_set.len(), 10_000);
    let oracle = CentralizedBneck::new(&network, &session_set).solve();
    if let Err(violations) = compare_allocations(
        &session_set,
        &sim.allocation(),
        &oracle,
        Tolerance::new(1e-6, 10.0),
    ) {
        panic!(
            "{} sessions disagree with the oracle at 10k scale, e.g. {}",
            violations.len(),
            violations[0]
        );
    }
    if let Err(violations) = verify_max_min(&network, &session_set, &sim.allocation()) {
        panic!(
            "allocation violates max-min fairness at 10k scale, e.g. {}",
            violations[0]
        );
    }
}

/// Join → quiescence at 250,000 sessions on the Medium transit–stub network,
/// planned once with a sequential planner and once with routing-tree
/// construction fanned across 4 worker threads. Both runs must be quiescent
/// and oracle-exact, and their serialized scale reports must be
/// byte-identical — parallel planning is a wall-clock optimization only.
#[test]
#[ignore = "paper-scale run: execute in release with -- --ignored"]
fn paper_scale_250k_parallel_planning_matches_sequential_report() {
    use bneck_bench::run_scale_point;

    let config = Experiment1Config::paper_scale(250_000);
    // The planner reads its worker-thread count from BNECK_THREADS. Thread
    // counts are invisible in every deterministic output by design, so
    // flipping the variable here cannot disturb concurrently running tests.
    std::env::set_var("BNECK_THREADS", "1");
    let sequential = run_scale_point(&config, true, 1);
    std::env::set_var("BNECK_THREADS", "4");
    let parallel = run_scale_point(&config, true, 1);
    std::env::remove_var("BNECK_THREADS");

    assert!(parallel.report.quiescent);
    assert_eq!(parallel.report.joins_applied, 250_000);
    assert_eq!(
        parallel.report.mismatches,
        Some(0),
        "distributed rates must match the oracle exactly at 250k"
    );
    assert!(parallel.report.ok());

    let sequential_bytes = serde_json::to_value(&sequential.report)
        .expect("infallible in the shim")
        .to_json_pretty();
    let parallel_bytes = serde_json::to_value(&parallel.report)
        .expect("infallible in the shim")
        .to_json_pretty();
    assert_eq!(
        sequential_bytes, parallel_bytes,
        "parallel planning changed the report bytes"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sessions that leave *mid-convergence* — while the join storm is still
    /// being processed — must not wedge the protocol: the network reaches
    /// quiescence, every link satisfies Definition 2, and the survivors'
    /// rates are exactly the max-min fair rates of the surviving session set.
    #[test]
    fn leaves_mid_convergence_still_reach_the_fair_allocation(
        seed in 0u64..10_000,
        sessions in 8usize..40,
        leave_every in 2usize..5,
        horizon_us in 20u64..400,
    ) {
        let scenario = NetworkScenario::small_lan(3 * sessions).with_seed(seed % 97 + 1);
        let network = scenario.build();
        let mut planner = SessionPlanner::new(&network, seed);
        let requests = planner.plan(sessions, LimitPolicy::RandomFinite {
            probability: 0.3,
            min_bps: 1e6,
            max_bps: 80e6,
        });
        prop_assume!(requests.len() >= 4);

        let mut sim = BneckSimulation::new(&network, BneckConfig::default());
        for r in &requests {
            let at = SimTime::from_nanos((r.session.0 * 131) % 1_000_000);
            sim.join_with_path(at, r.session, r.path.clone(), r.limit).unwrap();
        }
        // Stop mid-convergence: the join window is 1 ms and small-LAN
        // convergence takes hundreds of µs, so many probe cycles are still
        // in flight here.
        let report = sim.run_until(SimTime::from_micros(horizon_us));
        prop_assume!(!report.quiescent);

        // Every `leave_every`-th session leaves right now, mid-flight.
        let mut left = 0usize;
        for r in requests.iter().step_by(leave_every) {
            let t = sim.now() + Delay::from_nanos((r.session.0 % 7) * 100);
            sim.leave(t, r.session).unwrap();
            left += 1;
        }
        prop_assert!(left > 0);

        let report = sim.run_to_quiescence();
        prop_assert!(report.quiescent);
        prop_assert!(sim.links_stable(), "Definition 2 must hold after churn");

        let survivors = sim.session_set();
        prop_assert_eq!(survivors.len(), requests.len() - left);
        let oracle = CentralizedBneck::new(&network, &survivors).solve();
        let got = sim.allocation();
        if let Err(violations) = compare_allocations(&survivors, &got, &oracle, Tolerance::new(1e-6, 10.0)) {
            return Err(TestCaseError::Fail(format!(
                "survivors disagree with the oracle after mid-convergence leaves: {} violations, e.g. {}",
                violations.len(),
                violations[0]
            )));
        }
        if let Err(violations) = verify_max_min(&network, &survivors, &got) {
            return Err(TestCaseError::Fail(format!(
                "max-min violated after mid-convergence leaves, e.g. {}",
                violations[0]
            )));
        }
    }
}
