//! Cross-crate validation: the distributed B-Neck protocol must compute
//! exactly the rates of the centralized oracle (Water-Filling / Centralized
//! B-Neck) on every scenario flavour, which is how the paper validates its
//! implementation in Section IV.

use bneck::prelude::*;
use proptest::prelude::*;

fn run_and_check(scenario: NetworkScenario, sessions: usize, seed: u64) {
    run_and_check_in(scenario, sessions, seed, &mut SolverWorkspace::new())
}

fn run_and_check_in(
    scenario: NetworkScenario,
    sessions: usize,
    seed: u64,
    ws: &mut SolverWorkspace,
) {
    let network = scenario.build();
    let mut planner = SessionPlanner::new(&network, seed);
    let requests = planner.plan(
        sessions,
        LimitPolicy::RandomFinite {
            probability: 0.3,
            min_bps: 1e6,
            max_bps: 80e6,
        },
    );
    let mut sim = BneckSimulation::new(&network, BneckConfig::default());
    for r in &requests {
        let at = SimTime::from_nanos((r.session.0 * 13) % 1_000_000);
        sim.join(at, r.session, r.source, r.destination, r.limit)
            .expect("planned sessions are valid");
    }
    let report = sim.run_to_quiescence();
    assert!(report.quiescent);

    let session_set = sim.session_set();
    assert_eq!(session_set.len(), requests.len());

    // 1. Same rates as the centralized oracle.
    let oracle = CentralizedBneck::new(&network, &session_set).solve_in(ws);
    if let Err(violations) = compare_allocations(
        &session_set,
        &sim.allocation(),
        &oracle,
        Tolerance::new(1e-6, 10.0),
    ) {
        panic!(
            "{}: {} sessions disagree with the oracle, e.g. {}",
            scenario.label(),
            violations.len(),
            violations[0]
        );
    }

    // 2. Same rates as the independent Water-Filling implementation.
    let waterfill = WaterFilling::new(&network, &session_set).solve_in(ws);
    assert!(compare_allocations(
        &session_set,
        &sim.allocation(),
        &waterfill,
        Tolerance::new(1e-6, 10.0)
    )
    .is_ok());

    // 3. The distributed allocation satisfies the max-min conditions directly.
    if let Err(violations) = verify_max_min(&network, &session_set, &sim.allocation()) {
        panic!(
            "{}: allocation violates max-min fairness, e.g. {}",
            scenario.label(),
            violations[0]
        );
    }
}

#[test]
fn small_lan_matches_oracle() {
    run_and_check(NetworkScenario::small_lan(120).with_seed(1), 50, 11);
}

#[test]
fn small_wan_matches_oracle() {
    run_and_check(NetworkScenario::small_wan(120).with_seed(2), 50, 12);
}

#[test]
fn medium_lan_matches_oracle() {
    run_and_check(NetworkScenario::medium_lan(240).with_seed(3), 100, 13);
}

#[test]
fn medium_wan_matches_oracle() {
    run_and_check(NetworkScenario::medium_wan(160).with_seed(4), 60, 14);
}

#[test]
fn repeated_seeds_small_lan() {
    // One workspace across all seeds: repeated oracle solves reuse scratch.
    let mut ws = SolverWorkspace::new();
    for seed in 20..25u64 {
        run_and_check_in(
            NetworkScenario::small_lan(100).with_seed(seed),
            40,
            seed,
            &mut ws,
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property: for any topology seed, workload seed and session count, the
    /// distributed protocol converges to the oracle's allocation.
    #[test]
    fn randomized_scenarios_match_oracle(
        topo_seed in 1u64..1_000,
        workload_seed in 1u64..1_000,
        sessions in 5usize..40,
        wan in proptest::bool::ANY,
    ) {
        let scenario = if wan {
            NetworkScenario::small_wan(2 * sessions + 10).with_seed(topo_seed)
        } else {
            NetworkScenario::small_lan(2 * sessions + 10).with_seed(topo_seed)
        };
        run_and_check(scenario, sessions, workload_seed);
    }
}
