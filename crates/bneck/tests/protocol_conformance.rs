//! Cross-protocol conformance: B-Neck and all three baselines driven through
//! the unified `ProtocolWorld` trait on randomized dumbbell, parking-lot and
//! transit–stub instances.
//!
//! The contract mirrors the paper's evaluation (§IV): on every instance,
//! B-Neck must reach quiescence with rates *exactly* matching the
//! centralized oracle (Theorem 1), while each baseline — which can never go
//! quiescent — must, after probing for many intervals, sit within the
//! convergence tolerance its protocol documents
//! (`BaselineProtocol::mean_error_tolerance_pct`). Because every protocol
//! runs behind the same trait, this test also pins the shared world
//! plumbing (`bneck_core::world`) both harnesses now instantiate.

use bneck::baselines::baseline_by_name;
use bneck::prelude::*;
use proptest::prelude::*;

/// The shapes of evaluation networks the paper draws on: the two classic
/// synthetic bottleneck structures plus the gt-itm-style transit–stub
/// topologies of §IV.
#[derive(Debug, Clone)]
enum Instance {
    Dumbbell {
        pairs: usize,
        access_mbps: f64,
        bottleneck_mbps: f64,
    },
    ParkingLot {
        sessions: usize,
        access_mbps: f64,
        backbone_mbps: f64,
    },
    TransitStub {
        sessions: usize,
        topo_seed: u64,
        plan_seed: u64,
        limited: bool,
    },
}

/// Builds the instance's network and its session requests (paths routed, so
/// every protocol joins along identical routes).
fn build(instance: &Instance) -> (Network, Vec<SessionRequest>) {
    let us = Delay::from_micros(1);
    match *instance {
        Instance::Dumbbell {
            pairs,
            access_mbps,
            bottleneck_mbps,
        } => {
            let net = synthetic::dumbbell(
                pairs,
                Capacity::from_mbps(access_mbps),
                Capacity::from_mbps(bottleneck_mbps),
                us,
            );
            let requests = pair_requests(&net, pairs);
            (net, requests)
        }
        Instance::ParkingLot {
            sessions,
            access_mbps,
            backbone_mbps,
        } => {
            let net = synthetic::parking_lot(
                sessions,
                Capacity::from_mbps(access_mbps),
                Capacity::from_mbps(backbone_mbps),
                us,
            );
            let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
            let mut router = Router::new(&net);
            let requests = (0..sessions)
                .map(|i| {
                    let path = router.shortest_path(hosts[i], hosts[sessions]).unwrap();
                    SessionRequest {
                        session: SessionId(i as u64),
                        source: hosts[i],
                        destination: hosts[sessions],
                        limit: RateLimit::unlimited(),
                        path,
                    }
                })
                .collect();
            (net, requests)
        }
        Instance::TransitStub {
            sessions,
            topo_seed,
            plan_seed,
            limited,
        } => {
            let net = NetworkScenario::small_lan(3 * sessions)
                .with_seed(topo_seed)
                .build();
            let mut planner = SessionPlanner::new(&net, plan_seed);
            let limits = if limited {
                LimitPolicy::RandomFinite {
                    probability: 0.4,
                    min_bps: 1e6,
                    max_bps: 60e6,
                }
            } else {
                LimitPolicy::Unlimited
            };
            let requests = planner.plan(sessions, limits);
            (net, requests)
        }
    }
}

fn pair_requests(net: &Network, pairs: usize) -> Vec<SessionRequest> {
    let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
    let mut router = Router::new(net);
    (0..pairs)
        .map(|i| {
            let (s, d) = (hosts[2 * i], hosts[2 * i + 1]);
            SessionRequest {
                session: SessionId(i as u64),
                source: s,
                destination: d,
                limit: RateLimit::unlimited(),
                path: router.shortest_path(s, d).unwrap(),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_protocol_conforms_through_the_unified_trait(
        kind in 0usize..3,
        size in 2usize..6,
        cap_a in 50.0f64..150.0,
        cap_b in 20.0f64..120.0,
        topo_seed in 1u64..50,
        plan_seed in 1u64..50,
        limited in prop::bool::ANY,
    ) {
        let instance = match kind {
            0 => Instance::Dumbbell {
                pairs: size,
                access_mbps: cap_a,
                bottleneck_mbps: cap_b,
            },
            1 => Instance::ParkingLot {
                sessions: size,
                access_mbps: cap_a.max(cap_b) + 10.0,
                backbone_mbps: cap_a.min(cap_b),
            },
            _ => Instance::TransitStub {
                sessions: 4 * size,
                topo_seed,
                plan_seed,
                limited,
            },
        };
        let (network, requests) = build(&instance);
        prop_assume!(requests.len() >= 2);

        // The reference: the exact max-min fair rates of the session set.
        let sessions: SessionSet = requests
            .iter()
            .map(|r| Session::new(r.session, r.path.clone(), r.limit))
            .collect();
        let oracle = CentralizedBneck::new(&network, &sessions).solve();

        let mut worlds: Vec<Box<dyn ProtocolWorld + '_>> = vec![Box::new(
            BneckSimulation::new(&network, BneckConfig::default()),
        )];
        for name in bneck::baselines::BASELINE_NAMES {
            worlds.push(baseline_by_name(name, &network, BaselineConfig::default()).unwrap());
        }

        for world in &mut worlds {
            let world = world.as_mut();
            for r in &requests {
                prop_assert!(world.apply_join(SimTime::ZERO, r),
                    "{}: join rejected", world.protocol_name());
            }
            match world.convergence_tolerance_pct() {
                // B-Neck: quiescent and *exactly* the oracle's rates.
                None => {
                    prop_assert!(world.goes_quiescent());
                    let report = world.run_to_quiescence();
                    prop_assert!(report.quiescent,
                        "{} must reach quiescence", world.protocol_name());
                    prop_assert!(world.is_quiescent());
                    let got = world.current_rates();
                    let tol = Tolerance::new(1e-6, 10.0);
                    if let Err(violations) = compare_allocations(&sessions, &got, &oracle, tol) {
                        return Err(TestCaseError::Fail(format!(
                            "{} disagrees with the oracle: {} violations, e.g. {}",
                            world.protocol_name(),
                            violations.len(),
                            violations[0]
                        )));
                    }
                }
                // Baselines: never quiescent, but after many probe intervals
                // the mean error sits within the documented tolerance.
                Some(tolerance_pct) => {
                    prop_assert!(!world.goes_quiescent());
                    let report = world.run_to(SimTime::from_millis(80));
                    prop_assert!(!report.quiescent,
                        "{} must keep probing forever", world.protocol_name());
                    let rates = world.current_rates();
                    prop_assert_eq!(rates.len(), requests.len(),
                        "{}: every active session holds a rate", world.protocol_name());
                    // Mean of the *absolute* per-session errors: symmetric
                    // over/under-allocation must not cancel out.
                    let errors: Vec<f64> = rate_errors(&rates, &oracle)
                        .into_iter()
                        .map(f64::abs)
                        .collect();
                    prop_assert!(!errors.is_empty());
                    let mean = Summary::of(&errors).mean;
                    prop_assert!(
                        mean <= tolerance_pct,
                        "{}: mean |error| {:.2}% exceeds its documented tolerance of {:.0}% on {:?}",
                        world.protocol_name(), mean, tolerance_pct, instance
                    );
                }
            }
        }
    }
}
