//! Same-instant interleaving exploration: the protocol's outcome must not
//! depend on the delivery order of causally unrelated events.
//!
//! The calendar queue delivers same-timestamp events FIFO in scheduling
//! order — one of the many orders a real distributed system could exhibit.
//! [`explore_schedules`] re-executes the whole simulation once per
//! permutation of every same-instant group (bounded DFS over the choice
//! tree), and each explored schedule must independently reach quiescence
//! with oracle-exact rates. Two classic bottleneck structures are covered:
//! a dumbbell (all sessions share one bottleneck) and a parking lot
//! (sessions overlap pairwise along a line).
//!
//! The budget below caps the number of schedules per instance; the tests
//! assert the choice space was *exhausted* within it, so every same-instant
//! permutation of these instances really was executed.

use bneck::prelude::*;
use bneck_sim::{explore_schedules, ExploreStats, ScheduleCursor, SimTime};

/// Per-instance schedule budget. Both instances below exhaust their choice
/// space well inside it; raising session counts grows the space
/// factorially, so keep instances tiny.
const BUDGET: u64 = 4_000;

/// Runs one complete schedule: fresh simulation, all joins at the same
/// instant, stepping under the cursor's delivery choices; asserts
/// quiescence and oracle-exact rates for this schedule.
fn run_schedule(network: &Network, joins: &[(NodeId, NodeId)], cursor: &mut ScheduleCursor) {
    let mut sim = BneckSimulation::new(network, BneckConfig::default());
    for (i, &(source, destination)) in joins.iter().enumerate() {
        sim.join(
            SimTime::ZERO,
            SessionId(i as u64),
            source,
            destination,
            RateLimit::unlimited(),
        )
        .expect("sessions are valid");
    }
    while sim.step_explored(cursor) {}
    assert!(
        sim.is_quiescent(),
        "a schedule left the protocol non-quiescent"
    );
    let sessions = sim.session_set();
    let oracle = CentralizedBneck::new(network, &sessions).solve();
    assert!(
        compare_allocations(
            &sessions,
            &sim.allocation(),
            &oracle,
            Tolerance::new(1e-6, 10.0)
        )
        .is_ok(),
        "a schedule converged to rates that disagree with the oracle"
    );
}

fn explore(network: &Network, joins: &[(NodeId, NodeId)]) -> ExploreStats {
    let stats = explore_schedules(BUDGET, |cursor| run_schedule(network, joins, cursor));
    assert!(
        stats.exhausted,
        "budget {BUDGET} did not cover the choice space ({} schedules run)",
        stats.schedules
    );
    assert!(
        stats.schedules > 1,
        "same-instant joins must produce more than the native FIFO schedule"
    );
    assert!(stats.max_choice_points > 0);
    stats
}

#[test]
fn every_dumbbell_interleaving_converges_to_the_oracle() {
    let network = synthetic::dumbbell(
        2,
        Capacity::from_mbps(100.0),
        Capacity::from_mbps(60.0),
        Delay::from_micros(1),
    );
    let hosts: Vec<_> = network.hosts().map(|h| h.id()).collect();
    let joins = [(hosts[0], hosts[1]), (hosts[2], hosts[3])];
    let stats = explore(&network, &joins);
    eprintln!("[interleavings] dumbbell: {stats:?}");
}

#[test]
fn every_parking_lot_interleaving_converges_to_the_oracle() {
    let network = synthetic::parking_lot(
        2,
        Capacity::from_mbps(100.0),
        Capacity::from_mbps(40.0),
        Delay::from_micros(1),
    );
    let hosts: Vec<_> = network.hosts().map(|h| h.id()).collect();
    // One long session over both backbone segments, one short session on the
    // last segment: the classic parking-lot contention pattern.
    let joins = [(hosts[0], hosts[2]), (hosts[1], hosts[2])];
    let stats = explore(&network, &joins);
    eprintln!("[interleavings] parking lot: {stats:?}");
}
