//! # bneck
//!
//! Facade crate of the B-Neck reproduction: re-exports the public API of every
//! component crate so downstream users can depend on a single crate.
//!
//! The repository implements the paper *"B-Neck: A Distributed and Quiescent
//! Max-min Fair Algorithm"* (Mozo, López-Presa, Fernández Anta): a distributed
//! protocol that computes max-min fair session rates and — uniquely — stops
//! generating any control traffic once the rates have been computed.
//!
//! | Component | Crate | Re-exported as |
//! |---|---|---|
//! | Network model & topologies | `bneck-net` | [`net`] |
//! | Discrete-event simulator | `bneck-sim` | [`sim`] |
//! | Max-min theory & centralized oracles | `bneck-maxmin` | [`maxmin`] |
//! | The distributed B-Neck protocol | `bneck-core` | [`core`] |
//! | Non-quiescent baselines (BFYZ, CG, RCP) | `bneck-baselines` | [`baselines`] |
//! | Workload / scenario generation | `bneck-workload` | [`workload`] |
//! | Measurement & reporting | `bneck-metrics` | [`metrics`] |
//!
//! ## Quickstart
//!
//! The paper's interface is push-based: `API.Join`/`API.Leave`/`API.Change`
//! go in, asynchronous `API.Rate` notifications come out — and, B-Neck being
//! quiescent, the notifications *stop* once the allocation has converged.
//! Subscribe to the [`core::RateEvent`] stream instead of polling:
//!
//! ```
//! use bneck::prelude::*;
//!
//! // Three sessions share a 90 Mbps bottleneck; one caps itself at 10 Mbps.
//! let net = synthetic::dumbbell(3, Capacity::from_mbps(100.0),
//!                               Capacity::from_mbps(90.0), Delay::from_micros(1));
//! let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
//! let mut sim = BneckSimulation::new(&net, BneckConfig::default());
//! let events = sim.rate_events();     // drainable API.Rate stream
//!
//! let s0 = sim.join(SimTime::ZERO, SessionId(0), hosts[0], hosts[1],
//!                   RateLimit::finite(10e6)).unwrap();
//! sim.join(SimTime::ZERO, SessionId(1), hosts[2], hosts[3], RateLimit::unlimited()).unwrap();
//! sim.join(SimTime::ZERO, SessionId(2), hosts[4], hosts[5], RateLimit::unlimited()).unwrap();
//! let report = sim.run_to_quiescence();
//! assert!(report.quiescent);
//!
//! // The stream delivered each session's convergence, tagged with its cause.
//! let converged = events.drain();
//! assert!(converged.iter().any(|e|
//!     e.session == s0.id() && e.cause == RateCause::Joined && (e.rate - 10e6).abs() < 1.0));
//! assert!(converged.iter().any(|e|
//!     e.session == SessionId(1) && (e.rate - 40e6).abs() < 1.0));
//!
//! // Quiescent means *silent*: running further produces no traffic and no
//! // further notifications.
//! sim.run_to_quiescence();
//! assert!(events.is_empty());
//! let rates = sim.allocation();
//! assert!((rates.rate(SessionId(2)).unwrap() - 40e6).abs() < 1.0);
//! ```
//!
//! Experiments are driven declaratively through the `bneck` CLI of
//! `bneck-bench` (`bneck run --preset exp1`, `bneck bench-presets`, ...).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bneck_baselines as baselines;
pub use bneck_core as core;
pub use bneck_maxmin as maxmin;
pub use bneck_metrics as metrics;
pub use bneck_net as net;
pub use bneck_sim as sim;
pub use bneck_workload as workload;

/// One-stop prelude combining the preludes of every component crate.
pub mod prelude {
    pub use bneck_baselines::prelude::*;
    pub use bneck_core::prelude::*;
    pub use bneck_maxmin::prelude::*;
    pub use bneck_metrics::prelude::*;
    pub use bneck_net::prelude::*;
    pub use bneck_sim::prelude::*;
    pub use bneck_workload::prelude::*;
}
