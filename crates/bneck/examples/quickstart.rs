//! Quickstart: run the distributed B-Neck protocol on a small dumbbell
//! network, subscribe to its push-based `API.Rate` event stream, watch it
//! converge to the max-min fair rates, go quiescent (the stream falls
//! silent), and react to a rate change and a departure.
//!
//! Run with:
//!
//! ```text
//! cargo run -p bneck --example quickstart
//! ```

use bneck::prelude::*;

fn print_events(label: &str, events: &RateEvents) {
    println!("{label}");
    for event in events.drain() {
        println!(
            "  t={:>6} us  {}  {:?} -> {:.1} Mbps",
            event.at.as_micros(),
            event.session,
            event.cause,
            event.rate / 1e6
        );
    }
}

fn print_rates(label: &str, sim: &BneckSimulation<'_>) {
    println!("{label}");
    for session in sim.active_sessions() {
        let rate = sim.allocation().rate(session).unwrap_or(0.0);
        println!("  {session}: {:.1} Mbps", rate / 1e6);
    }
}

fn main() {
    // Three source hosts on the left, three destinations on the right, and a
    // shared 90 Mbps bottleneck in the middle.
    let network = synthetic::dumbbell(
        3,
        Capacity::from_mbps(100.0),
        Capacity::from_mbps(90.0),
        Delay::from_micros(1),
    );
    let hosts: Vec<_> = network.hosts().map(|h| h.id()).collect();

    let mut sim = BneckSimulation::new(&network, BneckConfig::default());

    // The paper's API is push-based: subscribe to the API.Rate stream
    // instead of polling a history vector.
    let events = sim.rate_events();

    // Session 0 caps itself at 10 Mbps; the others are greedy.
    sim.join(
        SimTime::ZERO,
        SessionId(0),
        hosts[0],
        hosts[1],
        RateLimit::finite(10e6),
    )
    .expect("hosts are connected");
    sim.join(
        SimTime::ZERO,
        SessionId(1),
        hosts[2],
        hosts[3],
        RateLimit::unlimited(),
    )
    .expect("hosts are connected");
    sim.join(
        SimTime::ZERO,
        SessionId(2),
        hosts[4],
        hosts[5],
        RateLimit::unlimited(),
    )
    .expect("hosts are connected");

    let report = sim.run_to_quiescence();
    println!(
        "converged and went quiescent after {} us using {} control packets",
        report.quiescent_at.as_micros(),
        sim.packet_stats().total()
    );
    print_rates(
        "max-min fair rates (10 Mbps cap + even split of the rest):",
        &sim,
    );
    print_events("API.Rate notifications of the convergence:", &events);

    // The allocation matches the centralized Water-Filling oracle.
    let oracle = CentralizedBneck::new(&network, &sim.session_set()).solve();
    assert!(compare_allocations(
        &sim.session_set(),
        &sim.allocation(),
        &oracle,
        Tolerance::new(1e-6, 1.0)
    )
    .is_ok());
    println!("allocation matches the centralized oracle");

    // Session 0 lifts its cap: B-Neck wakes up, recomputes, goes quiescent.
    let t = sim.now() + Delay::from_millis(1);
    sim.change(t, SessionId(0), RateLimit::unlimited()).unwrap();
    let report = sim.run_to_quiescence();
    println!(
        "\nafter the rate change, quiescent again at {} us",
        report.quiescent_at.as_micros()
    );
    print_rates(
        "rates after session 0 lifted its cap (even three-way split):",
        &sim,
    );
    print_events("API.Rate notifications of the re-convergence:", &events);

    // Session 1 leaves: the survivors re-converge to a larger share.
    let t = sim.now() + Delay::from_millis(1);
    sim.leave(t, SessionId(1)).unwrap();
    let report = sim.run_to_quiescence();
    println!(
        "\nafter the departure, quiescent again at {} us",
        report.quiescent_at.as_micros()
    );
    print_rates("rates after session 1 left (45 Mbps each):", &sim);

    print_events("API.Rate notifications of the departure:", &events);

    // Quiescence: with no further changes, not a single packet is generated
    // and the event stream stays silent.
    let packets_before = sim.packet_stats().total();
    sim.run_to_quiescence();
    assert_eq!(sim.packet_stats().total(), packets_before);
    assert!(events.is_empty(), "the API.Rate stream is silent");
    println!("\nno further control traffic or rate events while the sessions are stable");
}
