//! Sharing a tree-shaped datacenter fabric: many flows with heterogeneous
//! demands traverse a binary-tree topology; B-Neck computes the max-min fair
//! rates and reports which links end up as bottlenecks.
//!
//! Run with:
//!
//! ```text
//! cargo run -p bneck --example datacenter_fabric
//! ```

use bneck::prelude::*;

fn main() {
    // A binary tree of depth 3 (15 routers) with 4 hosts per leaf, 1 Gbps
    // core links and 100 Mbps host links: a miniature datacenter fabric.
    let network = synthetic::binary_tree(
        3,
        4,
        Capacity::from_mbps(100.0),
        Capacity::from_gbps(1.0),
        Delay::from_micros(5),
    );
    let hosts: Vec<_> = network.hosts().map(|h| h.id()).collect();
    println!(
        "fabric: {} routers, {} hosts, {} directed links",
        network.router_count(),
        network.host_count(),
        network.link_count()
    );

    let mut sim = BneckSimulation::new(&network, BneckConfig::default());

    // Cross-rack flows: host i sends to the host "opposite" in the tree, so
    // every flow crosses the core. A third of the flows are small (capped),
    // mimicking short RPC-style traffic next to bulk transfers.
    let mut joined = 0u64;
    for (i, &source) in hosts.iter().enumerate() {
        let destination = hosts[(i + hosts.len() / 2) % hosts.len()];
        if source == destination {
            continue;
        }
        let limit = if i % 3 == 0 {
            RateLimit::finite(20e6)
        } else {
            RateLimit::unlimited()
        };
        let at = SimTime::from_micros(10 * i as u64);
        if sim
            .join(at, SessionId(joined), source, destination, limit)
            .is_ok()
        {
            joined += 1;
        }
    }
    println!("{joined} flows joined");

    let report = sim.run_to_quiescence();
    println!(
        "converged in {} us with {} control packets ({:.1} per flow)",
        report.quiescent_at.as_micros(),
        sim.packet_stats().total(),
        sim.packet_stats().total() as f64 / joined as f64
    );

    // Validate against the oracle and show the bottleneck structure.
    let sessions = sim.session_set();
    let solution = CentralizedBneck::new(&network, &sessions).solve_with_bottlenecks();
    compare_allocations(
        &sessions,
        &sim.allocation(),
        &solution.allocation,
        Tolerance::new(1e-6, 1.0),
    )
    .expect("the distributed rates match the centralized oracle");

    println!("\nbottleneck links (links that limit at least one flow):");
    let mut bottlenecks: Vec<_> = solution.bottleneck_links().collect();
    bottlenecks.sort_by(|a, b| {
        a.bottleneck_rate
            .partial_cmp(&b.bottleneck_rate)
            .expect("rates are not NaN")
    });
    for link in bottlenecks.iter().take(8) {
        let l = network.link(link.link);
        println!(
            "  {} -> {}: bottleneck rate {:.1} Mbps, {} flows restricted here, {} restricted elsewhere",
            network.node(l.src()).name(),
            network.node(l.dst()).name(),
            link.bottleneck_rate.unwrap_or(0.0) / 1e6,
            link.restricted.len(),
            link.unrestricted.len()
        );
    }

    // Rate distribution across flows.
    let mut rates: Vec<f64> = sim.allocation().iter().map(|(_, r)| r / 1e6).collect();
    rates.sort_by(|a, b| a.partial_cmp(b).expect("rates are not NaN"));
    println!(
        "\nflow rates: min {:.1} Mbps, median {:.1} Mbps, max {:.1} Mbps",
        rates.first().unwrap(),
        rates[rates.len() / 2],
        rates.last().unwrap()
    );
}
