//! Session churn on a wide-area transit–stub network: sessions join, leave
//! and change their rate requests in waves; after every wave B-Neck
//! re-converges, notifies the affected sessions and goes quiescent again.
//!
//! This is a miniature version of the paper's Experiment 2, run on the WAN
//! flavour of the Small topology (1–10 ms link delays).
//!
//! Run with:
//!
//! ```text
//! cargo run -p bneck --example wan_dynamics
//! ```

use bneck::prelude::*;

fn main() {
    let scenario = NetworkScenario::small_wan(200).with_seed(42);
    let network = scenario.build();
    println!(
        "network: {} ({} routers, {} hosts)",
        scenario.label(),
        network.router_count(),
        network.host_count()
    );

    let mut sim = BneckSimulation::new(&network, BneckConfig::default());
    let mut planner = DynamicsPlanner::new(&network, 7);
    let limits = LimitPolicy::RandomFinite {
        probability: 0.3,
        min_bps: 5e6,
        max_bps: 80e6,
    };

    let waves = [
        ("initial joins", 80usize, 0usize, 0usize),
        ("departures", 0, 20, 0),
        ("rate changes", 0, 0, 20),
        ("more arrivals", 20, 0, 0),
        ("mixed churn", 15, 15, 15),
    ];

    for (name, joins, leaves, changes) in waves {
        let start = if sim.now() == SimTime::ZERO {
            SimTime::ZERO
        } else {
            sim.now() + Delay::from_millis(1)
        };
        let schedule = planner.phase(start, Delay::from_millis(1), joins, leaves, changes, limits);
        let packets_before = sim.packet_stats().total();
        let applied = schedule.apply(&mut sim);
        let report = sim.run_to_quiescence();

        // Cross-check against the centralized oracle after every wave.
        let sessions = sim.session_set();
        let oracle = CentralizedBneck::new(&network, &sessions).solve();
        let ok = compare_allocations(
            &sessions,
            &sim.allocation(),
            &oracle,
            Tolerance::new(1e-6, 10.0),
        )
        .is_ok();

        println!(
            "wave '{name}': {} joins / {} leaves / {} changes -> quiescent after {:.1} ms, \
             {} packets, {} active sessions, oracle match: {ok}",
            applied.joins,
            applied.leaves,
            applied.changes,
            report.quiescent_at.saturating_since(start).as_nanos() as f64 / 1e6,
            sim.packet_stats().total() - packets_before,
            sessions.len(),
        );
    }

    println!(
        "\ntotal control traffic over the whole run: {} packets ({})",
        sim.packet_stats().total(),
        sim.packet_stats()
    );
}
