//! B-Neck versus a non-quiescent baseline (BFYZ) on the same workload: both
//! converge to (nearly) max-min fair rates, but B-Neck stops sending control
//! packets once the rates are computed while BFYZ keeps probing forever.
//!
//! This is a miniature version of the paper's Experiment 3 (Figures 7 and 8).
//!
//! Run with:
//!
//! ```text
//! cargo run -p bneck --example baseline_comparison
//! ```

use bneck::prelude::*;

fn main() {
    let scenario = NetworkScenario::small_lan(160).with_seed(11);
    let network = scenario.build();

    // The same 60-session workload for both protocols.
    let mut planner = SessionPlanner::new(&network, 23);
    let requests = planner.plan(60, LimitPolicy::Unlimited);
    println!(
        "workload: {} sessions on {}",
        requests.len(),
        scenario.label()
    );

    // Reference: the centralized max-min fair allocation.
    let mut router = Router::new(&network);
    let sessions: SessionSet = requests
        .iter()
        .filter_map(|r| {
            let path = router.shortest_path(r.source, r.destination)?;
            Some(Session::new(r.session, path, r.limit))
        })
        .collect();
    let solution = CentralizedBneck::new(&network, &sessions).solve_with_bottlenecks();

    // B-Neck.
    let mut bneck = BneckSimulation::new(&network, BneckConfig::default());
    // BFYZ on the same network and workload.
    let mut bfyz = BaselineSimulation::new(&network, Bfyz::default(), BaselineConfig::default());
    for r in &requests {
        bneck
            .join(SimTime::ZERO, r.session, r.source, r.destination, r.limit)
            .expect("planned sessions are valid");
        bfyz.join(SimTime::ZERO, r.session, r.source, r.destination, r.limit);
    }

    println!(
        "\n   time |        B-Neck mean error |          BFYZ mean error | B-Neck pkts | BFYZ pkts"
    );
    let mut bneck_prev = 0u64;
    let mut bfyz_prev = 0u64;
    for ms in (3..=45u64).step_by(3) {
        let at = SimTime::from_millis(ms);
        bneck.run_until(at);
        bfyz.run_until(at);
        let bneck_err = Summary::of(&rate_errors(&bneck.current_rates(), &solution.allocation));
        let bfyz_err = Summary::of(&rate_errors(&bfyz.current_rates(), &solution.allocation));
        let bneck_pkts = bneck.packet_stats().total() - bneck_prev;
        let bfyz_pkts = bfyz.stats().total() - bfyz_prev;
        bneck_prev = bneck.packet_stats().total();
        bfyz_prev = bfyz.stats().total();
        println!(
            "{:>5} ms | {:>22.2} % | {:>22.2} % | {:>11} | {:>9}",
            ms, bneck_err.mean, bfyz_err.mean, bneck_pkts, bfyz_pkts
        );
    }

    println!(
        "\nB-Neck total control packets: {} (quiescent: {})",
        bneck.packet_stats().total(),
        bneck.is_quiescent()
    );
    println!(
        "BFYZ   total control packets: {} (quiescent: {})",
        bfyz.stats().total(),
        bfyz.is_quiescent()
    );
    println!("\nNote how B-Neck's error approaches 0 from below (conservative transient rates),");
    println!("and how its per-interval traffic drops to 0 once the rates are computed, while");
    println!("the baseline keeps injecting the same amount of control traffic forever.");
}
