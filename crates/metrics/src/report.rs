//! Plain-text table rendering for the experiment binaries.

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::fmt;

/// A simple column-aligned table that can also be emitted as CSV.
///
/// The experiment binaries use it to print, for every figure of the paper, the
/// series of values the figure plots.
///
/// # Example
///
/// ```
/// use bneck_metrics::Table;
/// let mut table = Table::new("figure-5-left", &["sessions", "time_to_quiescence_us"]);
/// table.add_row(&["10".to_string(), "123".to_string()]);
/// let text = table.to_string();
/// assert!(text.contains("sessions"));
/// assert!(table.to_csv().starts_with("sessions,"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// The table's title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row does not have exactly one cell per column.
    pub fn add_row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match the header width"
        );
        self.rows.push(cells.to_vec());
    }

    /// Appends a row of displayable values.
    pub fn push<T: fmt::Display>(&mut self, cells: &[T]) {
        let rendered: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.add_row(&rendered);
    }

    /// Renders the table as CSV (header row first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "# {}", self.title)?;
        let header: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{h:>width$}", width = widths[i]))
            .collect();
        writeln!(f, "{}", header.join("  "))?;
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(f, "{}", rule.join("  "))?;
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
                .collect();
            writeln!(f, "{}", cells.join("  "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_renders() {
        let mut t = Table::new("demo", &["a", "longer_header"]);
        t.push(&[1, 2]);
        t.push(&[300, 4]);
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.title(), "demo");
        let text = t.to_string();
        assert!(text.contains("# demo"));
        assert!(text.contains("longer_header"));
        // Columns are right aligned to the widest cell.
        assert!(text.lines().count() >= 5);
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new("demo", &["x", "y"]);
        t.push(&["1", "2"]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("demo", &["x", "y"]);
        t.push(&[1]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_headers_rejected() {
        let _ = Table::new("demo", &[]);
    }
}
