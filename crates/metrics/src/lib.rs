//! # bneck-metrics
//!
//! Measurement and reporting utilities for the B-Neck experiments:
//!
//! * [`percentile`] — order statistics (10th/90th percentile, median, mean)
//!   used by the error plots of Figure 7;
//! * [`timeseries`] — interval-binned packet counts used by Figures 6 and 8;
//! * [`error`] — relative-error distributions of assigned versus max-min
//!   rates, at the sources and at the bottleneck links (Experiment 3);
//! * [`report`] — plain-text table / CSV rendering used by the experiment
//!   binaries to print the series behind every figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod percentile;
pub mod report;
pub mod timeseries;

pub use error::{link_stress_errors, rate_errors, ErrorSample};
pub use percentile::{percentile, Summary};
pub use report::Table;
pub use timeseries::PacketTimeSeries;

/// Commonly used items, suitable for glob import.
pub mod prelude {
    pub use crate::error::{link_stress_errors, rate_errors, ErrorSample};
    pub use crate::percentile::{percentile, Summary};
    pub use crate::report::Table;
    pub use crate::timeseries::PacketTimeSeries;
}
