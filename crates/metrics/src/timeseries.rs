//! Interval-binned packet counts (Figures 6 and 8 of the paper).

use bneck_core::{PacketKind, PacketStats};
use bneck_net::Delay;
use bneck_sim::SimTime;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Packet counts aggregated in fixed-size time intervals, broken down by
/// packet kind — the data behind Figure 6 ("packets of each type transmitted,
/// aggregated in time intervals of 5 milliseconds") and Figure 8.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct PacketTimeSeries {
    interval: Delay,
    bins: Vec<PacketStats>,
}

impl PacketTimeSeries {
    /// Builds the series from a timestamped packet log (as recorded by
    /// `BneckSimulation` when the packet log is enabled) using the given bin
    /// width.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn from_log(log: &[(SimTime, PacketKind)], interval: Delay) -> Self {
        assert!(interval > Delay::ZERO, "the bin width must be positive");
        let mut bins: Vec<PacketStats> = Vec::new();
        for (at, kind) in log {
            let index = (at.as_nanos() / interval.as_nanos()) as usize;
            if index >= bins.len() {
                bins.resize(index + 1, PacketStats::new());
            }
            bins[index].record(*kind);
        }
        PacketTimeSeries { interval, bins }
    }

    /// Builds a series directly from per-interval snapshots (used by harnesses
    /// that sample cumulative counters between bounded runs instead of logging
    /// every packet).
    pub fn from_bins(interval: Delay, bins: Vec<PacketStats>) -> Self {
        assert!(interval > Delay::ZERO, "the bin width must be positive");
        PacketTimeSeries { interval, bins }
    }

    /// The bin width.
    pub fn interval(&self) -> Delay {
        self.interval
    }

    /// Number of bins (the series covers `len() * interval` of simulated
    /// time).
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// `true` when the series has no bins.
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// The packet counts of bin `index` (empty counts past the end).
    pub fn bin(&self, index: usize) -> PacketStats {
        self.bins.get(index).copied().unwrap_or_default()
    }

    /// Total packets in bin `index`.
    pub fn total_in_bin(&self, index: usize) -> u64 {
        self.bin(index).total()
    }

    /// Total packets across all bins.
    pub fn total(&self) -> u64 {
        self.bins.iter().map(|b| b.total()).sum()
    }

    /// Iterates over `(bin_start_time, counts)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, PacketStats)> + '_ {
        self.bins.iter().enumerate().map(move |(i, stats)| {
            (
                SimTime::from_nanos(i as u64 * self.interval.as_nanos()),
                *stats,
            )
        })
    }

    /// The index of the last bin containing any packet, or `None` when the
    /// series is all-zero. After this bin the protocol was quiescent.
    pub fn last_active_bin(&self) -> Option<usize> {
        self.bins
            .iter()
            .enumerate()
            .rev()
            .find(|(_, b)| b.total() > 0)
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log() -> Vec<(SimTime, PacketKind)> {
        vec![
            (SimTime::from_millis(0), PacketKind::Join),
            (SimTime::from_millis(1), PacketKind::Join),
            (SimTime::from_millis(4), PacketKind::Response),
            (SimTime::from_millis(7), PacketKind::Update),
            (SimTime::from_millis(12), PacketKind::Leave),
        ]
    }

    #[test]
    fn bins_packets_by_interval() {
        let series = PacketTimeSeries::from_log(&log(), Delay::from_millis(5));
        assert_eq!(series.len(), 3);
        assert_eq!(series.total_in_bin(0), 3);
        assert_eq!(series.total_in_bin(1), 1);
        assert_eq!(series.total_in_bin(2), 1);
        assert_eq!(series.total_in_bin(99), 0);
        assert_eq!(series.total(), 5);
        assert_eq!(series.bin(0).count(PacketKind::Join), 2);
        assert_eq!(series.last_active_bin(), Some(2));
        assert_eq!(series.interval(), Delay::from_millis(5));
    }

    #[test]
    fn iter_reports_bin_start_times() {
        let series = PacketTimeSeries::from_log(&log(), Delay::from_millis(5));
        let starts: Vec<u64> = series.iter().map(|(t, _)| t.as_millis()).collect();
        assert_eq!(starts, vec![0, 5, 10]);
    }

    #[test]
    fn empty_log_gives_empty_series() {
        let series = PacketTimeSeries::from_log(&[], Delay::from_millis(5));
        assert!(series.is_empty());
        assert_eq!(series.last_active_bin(), None);
        assert_eq!(series.total(), 0);
    }

    #[test]
    fn from_bins_round_trips() {
        let mut a = PacketStats::new();
        a.record(PacketKind::Probe);
        let series =
            PacketTimeSeries::from_bins(Delay::from_millis(3), vec![a, PacketStats::new()]);
        assert_eq!(series.len(), 2);
        assert_eq!(series.total(), 1);
        assert_eq!(series.last_active_bin(), Some(0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        let _ = PacketTimeSeries::from_log(&[], Delay::ZERO);
    }
}
