//! Relative-error distributions of assigned versus max-min fair rates
//! (Experiment 3, Figure 7 of the paper).

use crate::percentile::Summary;
use bneck_maxmin::{Allocation, CentralizedSolution, SessionId};
use bneck_sim::SimTime;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// One sampling instant of an error distribution: the summary statistics of
/// the per-session (or per-link) relative errors at that time.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct ErrorSample {
    /// When the sample was taken.
    pub at: SimTime,
    /// Summary of the relative errors, in percent.
    pub summary: Summary,
}

/// Per-session relative errors at the sources, in percent:
/// `e = 100 · (a − x) / x` where `a` is the rate currently assigned by the
/// protocol and `x` the max-min fair rate (Figure 7, left side).
///
/// Sessions without a max-min rate (or with a zero one) are skipped. Positive
/// values mean the protocol overestimates the rate; negative values mean it is
/// conservative.
pub fn rate_errors(assigned: &Allocation, fair: &Allocation) -> Vec<f64> {
    fair.iter()
        .filter_map(|(session, x)| {
            if x <= 0.0 {
                return None;
            }
            let a = assigned.rate(session).unwrap_or(0.0);
            Some(100.0 * (a - x) / x)
        })
        .collect()
}

/// Per-bottleneck-link relative errors, in percent:
/// `e = 100 · (sa − sx) / sx` where `sa` is the sum of assigned rates of the
/// sessions crossing the bottleneck link and `sx` the sum of their max-min
/// rates (Figure 7, right side). Positive values mean the link would be
/// overloaded by the current assignment.
pub fn link_stress_errors(assigned: &Allocation, solution: &CentralizedSolution) -> Vec<f64> {
    solution
        .bottleneck_links()
        .filter_map(|link| {
            let crossing: Vec<SessionId> = link
                .restricted
                .iter()
                .chain(link.unrestricted.iter())
                .copied()
                .collect();
            let sx: f64 = crossing
                .iter()
                .filter_map(|s| solution.allocation.rate(*s))
                .sum();
            if sx <= 0.0 {
                return None;
            }
            let sa: f64 = crossing
                .iter()
                .map(|s| assigned.rate(*s).unwrap_or(0.0))
                .sum();
            Some(100.0 * (sa - sx) / sx)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bneck_maxmin::prelude::*;
    use bneck_net::prelude::*;

    fn dumbbell_solution() -> (Allocation, CentralizedSolution) {
        let net = synthetic::dumbbell(
            2,
            Capacity::from_mbps(100.0),
            Capacity::from_mbps(60.0),
            Delay::from_micros(1),
        );
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut router = Router::new(&net);
        let mut sessions = SessionSet::new();
        for i in 0..2 {
            let path = router
                .shortest_path(hosts[2 * i], hosts[2 * i + 1])
                .unwrap();
            sessions.insert(Session::new(
                SessionId(i as u64),
                path,
                RateLimit::unlimited(),
            ));
        }
        let solution = CentralizedBneck::new(&net, &sessions).solve_with_bottlenecks();
        let fair = solution.allocation.clone();
        (fair, solution)
    }

    #[test]
    fn exact_assignment_has_zero_error() {
        let (fair, solution) = dumbbell_solution();
        let errors = rate_errors(&fair, &fair);
        assert_eq!(errors.len(), 2);
        assert!(errors.iter().all(|e| e.abs() < 1e-9));
        let link_errors = link_stress_errors(&fair, &solution);
        assert!(!link_errors.is_empty());
        assert!(link_errors.iter().all(|e| e.abs() < 1e-9));
    }

    #[test]
    fn conservative_assignment_has_negative_error() {
        let (fair, solution) = dumbbell_solution();
        let mut half = Allocation::new();
        for (s, r) in fair.iter() {
            half.set(s, r / 2.0);
        }
        let errors = rate_errors(&half, &fair);
        assert!(errors.iter().all(|e| (*e - (-50.0)).abs() < 1e-9));
        let link_errors = link_stress_errors(&half, &solution);
        assert!(link_errors.iter().all(|e| (*e - (-50.0)).abs() < 1e-9));
    }

    #[test]
    fn overshooting_assignment_has_positive_error() {
        let (fair, solution) = dumbbell_solution();
        let mut over = Allocation::new();
        for (s, r) in fair.iter() {
            over.set(s, r * 1.2);
        }
        assert!(rate_errors(&over, &fair)
            .iter()
            .all(|e| (*e - 20.0).abs() < 1e-9));
        assert!(link_stress_errors(&over, &solution)
            .iter()
            .all(|e| (*e - 20.0).abs() < 1e-9));
    }

    #[test]
    fn missing_sessions_count_as_zero_rate() {
        let (fair, _) = dumbbell_solution();
        let empty = Allocation::new();
        let errors = rate_errors(&empty, &fair);
        assert!(errors.iter().all(|e| (*e - (-100.0)).abs() < 1e-9));
    }

    #[test]
    fn error_sample_is_serializable_summary() {
        let sample = ErrorSample {
            at: SimTime::from_millis(3),
            summary: Summary::of(&[-5.0, 0.0, 5.0]),
        };
        assert_eq!(sample.summary.count, 3);
        assert_eq!(sample.summary.mean, 0.0);
    }
}
