//! Order statistics used by the error-distribution figures.

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Returns the `q`-quantile (0 ≤ q ≤ 1) of `values` using linear
/// interpolation between order statistics, or `None` for an empty slice.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or any value is NaN.
pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile must be within [0, 1]");
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("values must not be NaN"));
    let position = q * (sorted.len() - 1) as f64;
    let low = position.floor() as usize;
    let high = position.ceil() as usize;
    if low == high {
        Some(sorted[low])
    } else {
        let fraction = position - low as f64;
        Some(sorted[low] * (1.0 - fraction) + sorted[high] * fraction)
    }
}

/// The five summary statistics reported for each sample instant in Figure 7:
/// 10th percentile, median, mean, 90th percentile, plus the sample count.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// 10th percentile.
    pub p10: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// 90th percentile.
    pub p90: f64,
}

impl Summary {
    /// Computes the summary of a sample; all fields are zero for an empty
    /// sample.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Summary::default();
        }
        Summary {
            count: values.len(),
            p10: percentile(values, 0.10).expect("non-empty"),
            median: percentile(values, 0.50).expect("non-empty"),
            mean: values.iter().sum::<f64>() / values.len() as f64,
            p90: percentile(values, 0.90).expect("non-empty"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_of_empty_is_none() {
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    fn percentile_interpolates() {
        let values = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&values, 0.0), Some(1.0));
        assert_eq!(percentile(&values, 1.0), Some(5.0));
        assert_eq!(percentile(&values, 0.5), Some(3.0));
        assert_eq!(percentile(&values, 0.25), Some(2.0));
        // Quantile falling between order statistics.
        let values = [0.0, 10.0];
        assert_eq!(percentile(&values, 0.75), Some(7.5));
    }

    #[test]
    fn percentile_is_order_insensitive() {
        let a = [5.0, 1.0, 4.0, 2.0, 3.0];
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&a, 0.9), percentile(&b, 0.9));
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn out_of_range_quantile_panics() {
        let _ = percentile(&[1.0], 1.5);
    }

    #[test]
    fn summary_matches_hand_computation() {
        let values = [-10.0, 0.0, 10.0, 20.0];
        let s = Summary::of(&values);
        assert_eq!(s.count, 4);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.median, 5.0);
        assert!(s.p10 < s.median && s.median < s.p90);
    }

    #[test]
    fn summary_of_empty_is_zero() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }
}
