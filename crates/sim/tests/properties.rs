//! Property-based tests of the discrete-event engine: causality (time never
//! goes backwards), channel FIFO ordering, and conservation of injected
//! events.

use bneck_net::Delay;
use bneck_sim::prelude::*;
use proptest::prelude::*;

/// A world that records every delivery and forwards a configurable number of
/// extra messages through a channel.
struct Recorder {
    deliveries: Vec<(u64, u32)>,
    forwards_left: u32,
    channel: ChannelId,
}

impl World for Recorder {
    type Message = u32;
    fn handle(&mut self, ctx: &mut Context<'_, u32>, _to: Address, msg: u32) {
        self.deliveries.push((ctx.now().as_nanos(), msg));
        if self.forwards_left > 0 {
            self.forwards_left -= 1;
            ctx.send(self.channel, Address(1), msg + 1000);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Deliveries happen in non-decreasing timestamp order and every injected
    /// or forwarded message is delivered exactly once.
    #[test]
    fn causality_and_conservation(
        injections in prop::collection::vec((0u64..1_000_000, 0u32..1000), 1..40),
        forwards in 0u32..20,
        bandwidth_mbps in 1.0f64..1000.0,
        delay_us in 0u64..10_000,
    ) {
        let mut engine = Engine::new();
        let channel = engine.add_channel(ChannelSpec::new(
            bandwidth_mbps * 1e6,
            Delay::from_micros(delay_us),
            512,
        ));
        let mut world = Recorder {
            deliveries: Vec::new(),
            forwards_left: forwards,
            channel,
        };
        for (at, payload) in &injections {
            engine.inject(SimTime::from_nanos(*at), Address(0), *payload);
        }
        let report = engine.run(&mut world);
        prop_assert!(report.quiescent);
        // Conservation: injected + forwarded messages are all delivered.
        let expected = injections.len() as u64 + u64::from(forwards.min(report.events_processed as u32));
        prop_assert_eq!(report.events_processed, expected);
        // Causality: delivery timestamps never decrease.
        for pair in world.deliveries.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0);
        }
        // The reported quiescence time is the last delivery's timestamp.
        prop_assert_eq!(
            report.quiescent_at.as_nanos(),
            world.deliveries.last().map(|d| d.0).unwrap_or(0)
        );
    }

    /// Messages sent back-to-back through one channel arrive in FIFO order and
    /// respect the channel's transmission plus propagation latency.
    #[test]
    fn channels_are_fifo_and_respect_latency(
        count in 1usize..30,
        bandwidth_mbps in 1.0f64..1000.0,
        delay_us in 1u64..5_000,
        packet_bits in 64u64..4096,
    ) {
        struct Burst {
            to_send: u32,
            channel: ChannelId,
            arrivals: Vec<(u64, u32)>,
        }
        impl World for Burst {
            type Message = u32;
            fn handle(&mut self, ctx: &mut Context<'_, u32>, to: Address, msg: u32) {
                if to == Address(0) {
                    for i in 0..self.to_send {
                        ctx.send(self.channel, Address(1), i);
                    }
                } else {
                    self.arrivals.push((ctx.now().as_nanos(), msg));
                }
            }
        }
        let mut engine = Engine::new();
        let spec = ChannelSpec::new(bandwidth_mbps * 1e6, Delay::from_micros(delay_us), packet_bits);
        let channel = engine.add_channel(spec);
        let mut world = Burst { to_send: count as u32, channel, arrivals: Vec::new() };
        engine.inject(SimTime::ZERO, Address(0), 0);
        engine.run(&mut world);

        prop_assert_eq!(world.arrivals.len(), count);
        // FIFO: payloads arrive in the order they were sent.
        for (i, (_, payload)) in world.arrivals.iter().enumerate() {
            prop_assert_eq!(*payload, i as u32);
        }
        // Latency: the i-th packet cannot arrive before (i+1) transmissions
        // plus one propagation delay have elapsed.
        let tx = spec.transmission_delay().as_nanos();
        let prop_delay = Delay::from_micros(delay_us).as_nanos();
        for (i, (at, _)) in world.arrivals.iter().enumerate() {
            let min_arrival = (i as u64 + 1) * tx + prop_delay;
            prop_assert!(*at >= min_arrival,
                "packet {i} arrived at {at} ns, before the physical minimum {min_arrival} ns");
        }
        prop_assert_eq!(engine.channel_sent(channel), count as u64);
    }

    /// Splitting a run at an arbitrary horizon never changes what is delivered
    /// or when.
    #[test]
    fn horizon_splits_are_transparent(
        injections in prop::collection::vec((0u64..500_000, 0u32..100), 1..20),
        split_us in 0u64..600,
    ) {
        let run = |split: Option<SimTime>| {
            let mut engine = Engine::new();
            let channel = engine.add_channel(ChannelSpec::new(1e8, Delay::from_micros(10), 256));
            let mut world = Recorder { deliveries: Vec::new(), forwards_left: 5, channel };
            for (at, payload) in &injections {
                engine.inject(SimTime::from_nanos(*at), Address(0), *payload);
            }
            if let Some(t) = split {
                engine.run_until(&mut world, t);
            }
            engine.run(&mut world);
            world.deliveries
        };
        let whole = run(None);
        let split = run(Some(SimTime::from_micros(split_us)));
        prop_assert_eq!(whole, split);
    }
}
