//! The protocol-world abstraction: one trait every fully-built simulation
//! implements, regardless of which protocol it runs.
//!
//! A *simulation* is an engine already wired to a concrete protocol world
//! (B-Neck, one of the baselines, a test double). The [`Simulation`] trait
//! exposes the engine-level surface the experiment drivers need — stepping,
//! horizon-bounded runs, quiescence detection and the event/message
//! counters — without knowing anything about the protocol inside.
//!
//! `Send` is a supertrait: a fully-built simulation is a unit of work that
//! can be handed to a worker thread, which is what lets the sweep drivers in
//! `bneck-bench` fan independent experiment points across cores.

use crate::engine::RunReport;
use crate::time::SimTime;

/// A fully-built protocol simulation: an engine plus its world, runnable as
/// one `Send` unit.
///
/// The B-Neck harness (`bneck-core`) and the baseline harness
/// (`bneck-baselines`) both implement this trait, so experiment drivers can
/// hold a `&mut dyn Simulation` (or the richer `ProtocolWorld` trait from
/// `bneck-workload`) and drive any protocol through one code path.
pub trait Simulation: Send {
    /// The current simulated time (time of the last processed event).
    fn now(&self) -> SimTime;

    /// `true` when no event is pending: the simulated network is quiescent.
    fn is_quiescent(&self) -> bool;

    /// Number of events waiting in the queue.
    fn pending_events(&self) -> usize;

    /// Processes exactly the next pending event. Returns `false` (and leaves
    /// the clock untouched) when the simulation is quiescent.
    fn step(&mut self) -> bool;

    /// Runs until the event queue is empty or the next event is strictly
    /// after `horizon`; events at exactly `horizon` are processed.
    fn run_to(&mut self, horizon: SimTime) -> RunReport;

    /// Runs until no event remains (quiescence).
    fn run_to_quiescence(&mut self) -> RunReport {
        self.run_to(SimTime::MAX)
    }

    /// Total events processed since the simulation was created.
    fn events_processed(&self) -> u64;

    /// Total messages sent through channels since the simulation was created.
    fn messages_sent(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{ChannelId, ChannelSpec};
    use crate::engine::{Address, Context, Engine, World};
    use bneck_net::Delay;

    /// A minimal simulation: a counter bounced through one channel.
    struct Bounce {
        engine: Engine<u32>,
        world: BounceWorld,
    }

    struct BounceWorld {
        limit: u32,
        channel: ChannelId,
    }

    impl World for BounceWorld {
        type Message = u32;
        fn handle(&mut self, ctx: &mut Context<'_, u32>, _to: Address, msg: u32) {
            if msg < self.limit {
                ctx.send(self.channel, Address(0), msg + 1);
            }
        }
    }

    impl Simulation for Bounce {
        fn now(&self) -> SimTime {
            self.engine.now()
        }
        fn is_quiescent(&self) -> bool {
            self.engine.is_quiescent()
        }
        fn pending_events(&self) -> usize {
            self.engine.pending_events()
        }
        fn step(&mut self) -> bool {
            self.engine.step(&mut self.world)
        }
        fn run_to(&mut self, horizon: SimTime) -> RunReport {
            self.engine.run_until(&mut self.world, horizon)
        }
        fn events_processed(&self) -> u64 {
            self.engine.total_events_processed()
        }
        fn messages_sent(&self) -> u64 {
            self.engine.total_messages_sent()
        }
    }

    fn bounce(limit: u32) -> Bounce {
        let mut engine = Engine::new();
        let channel = engine.add_channel(ChannelSpec::new(1e9, Delay::from_micros(5), 500));
        engine.inject(SimTime::ZERO, Address(0), 0);
        Bounce {
            engine,
            world: BounceWorld { limit, channel },
        }
    }

    #[test]
    fn stepping_matches_a_full_run() {
        let mut stepped = bounce(6);
        let mut steps = 0;
        while stepped.step() {
            steps += 1;
        }
        assert!(
            !stepped.step(),
            "stepping a quiescent simulation is a no-op"
        );

        let mut ran = bounce(6);
        let report = ran.run_to_quiescence();
        assert!(report.quiescent);
        assert_eq!(steps, report.events_processed);
        assert_eq!(stepped.now(), ran.now());
        assert_eq!(stepped.messages_sent(), ran.messages_sent());
        assert!(stepped.is_quiescent() && ran.is_quiescent());
    }

    #[test]
    fn trait_objects_can_drive_a_simulation() {
        let mut sim = bounce(3);
        let dynamic: &mut dyn Simulation = &mut sim;
        assert!(!dynamic.is_quiescent());
        assert!(dynamic.pending_events() > 0);
        let report = dynamic.run_to_quiescence();
        assert!(report.quiescent);
        assert_eq!(dynamic.events_processed(), 4);
    }

    #[test]
    fn simulations_are_send() {
        fn assert_send<T: Send>(_: &T) {}
        let sim = bounce(1);
        assert_send(&sim);
        let boxed: Box<dyn Simulation> = Box::new(bounce(1));
        assert_send(&boxed);
    }
}
