//! Channels: the simulator's model of a directed network link.
//!
//! A channel has a bandwidth and a propagation delay. Messages sent through a
//! channel are serialized FIFO: each message occupies the transmitter for
//! `message_bits / bandwidth` seconds and then propagates for the channel's
//! propagation delay. This mirrors how the paper's modified Peersim models
//! "transmission and propagation times in the network links".

use crate::time::SimTime;
use bneck_net::Delay;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a channel registered with an [`crate::Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct ChannelId(pub u32);

impl ChannelId {
    /// Returns the identifier as an index usable with per-channel vectors.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// Static description of a channel.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct ChannelSpec {
    /// Bandwidth in bits per second used to compute transmission times.
    pub bandwidth_bps: f64,
    /// Propagation delay.
    pub propagation: Delay,
    /// Size, in bits, of a control packet sent over the channel.
    pub packet_bits: u64,
}

impl ChannelSpec {
    /// Creates a channel description.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bps` is not strictly positive.
    pub fn new(bandwidth_bps: f64, propagation: Delay, packet_bits: u64) -> Self {
        assert!(
            bandwidth_bps > 0.0 && bandwidth_bps.is_finite(),
            "channel bandwidth must be positive and finite"
        );
        ChannelSpec {
            bandwidth_bps,
            propagation,
            packet_bits,
        }
    }

    /// The time needed to serialize one control packet onto the channel.
    pub fn transmission_delay(&self) -> Delay {
        let seconds = self.packet_bits as f64 / self.bandwidth_bps;
        Delay::from_nanos((seconds * 1e9).round() as u64)
    }
}

/// Runtime state of a channel (its FIFO transmitter).
#[derive(Debug, Clone)]
pub(crate) struct Channel {
    pub(crate) spec: ChannelSpec,
    /// The per-packet serialization time, precomputed from the spec so the
    /// per-send hot path performs no floating-point division.
    transmission: Delay,
    /// The earliest time at which the transmitter is free again.
    pub(crate) free_at: SimTime,
    /// Number of messages that have been sent through this channel.
    pub(crate) sent: u64,
}

impl Channel {
    pub(crate) fn new(spec: ChannelSpec) -> Self {
        Channel {
            spec,
            transmission: spec.transmission_delay(),
            free_at: SimTime::ZERO,
            sent: 0,
        }
    }

    /// One packet's full flight time (serialization plus propagation) — the
    /// unit of the fault injector's reorder jitter.
    pub(crate) fn flight(&self) -> Delay {
        self.transmission + self.spec.propagation
    }

    /// Computes the arrival time of a packet handed to the channel at `now`,
    /// updating the transmitter occupancy.
    pub(crate) fn accept(&mut self, now: SimTime) -> SimTime {
        let start = if self.free_at > now {
            self.free_at
        } else {
            now
        };
        let done = start + self.transmission;
        self.free_at = done;
        self.sent += 1;
        done + self.spec.propagation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmission_delay_is_bits_over_bandwidth() {
        // 1000 bits at 1 Mbps = 1 ms
        let spec = ChannelSpec::new(1e6, Delay::ZERO, 1000);
        assert_eq!(spec.transmission_delay(), Delay::from_millis(1));
    }

    #[test]
    fn fifo_serialization_backs_up() {
        let spec = ChannelSpec::new(1e6, Delay::from_micros(10), 1000);
        let mut ch = Channel::new(spec);
        // Two packets handed over at the same instant: the second waits for
        // the first to finish transmitting.
        let a = ch.accept(SimTime::ZERO);
        let b = ch.accept(SimTime::ZERO);
        assert_eq!(a, SimTime::from_micros(1_010));
        assert_eq!(b, SimTime::from_micros(2_010));
        assert_eq!(ch.sent, 2);
    }

    #[test]
    fn idle_channel_adds_only_tx_plus_propagation() {
        let spec = ChannelSpec::new(1e9, Delay::from_micros(5), 1000);
        let mut ch = Channel::new(spec);
        let arrival = ch.accept(SimTime::from_micros(100));
        // 1000 bits at 1 Gbps = 1 us
        assert_eq!(arrival, SimTime::from_micros(106));
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = ChannelSpec::new(0.0, Delay::ZERO, 1);
    }

    #[test]
    fn display() {
        assert_eq!(ChannelId(4).to_string(), "ch4");
    }
}
