//! Simulated time.

use bneck_net::Delay;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, with nanosecond resolution.
///
/// Simulated time starts at [`SimTime::ZERO`] and only moves forward. Adding a
/// [`Delay`] (a duration) produces a later `SimTime`; subtracting two
/// `SimTime`s produces the `Delay` between them.
///
/// # Example
///
/// ```
/// use bneck_sim::SimTime;
/// use bneck_net::Delay;
///
/// let t = SimTime::ZERO + Delay::from_millis(3);
/// assert_eq!(t.as_micros(), 3_000);
/// assert_eq!(t - SimTime::from_micros(1_000), Delay::from_millis(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct SimTime(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable time; useful as "never" / horizon sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from nanoseconds since the start of the simulation.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from microseconds since the start of the simulation.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time from milliseconds since the start of the simulation.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from seconds since the start of the simulation.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since the start of the simulation.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since the start of the simulation (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds since the start of the simulation (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since the start of the simulation, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The elapsed time since `earlier`, saturating to zero if `earlier` is
    /// actually later than `self`.
    pub fn saturating_since(self, earlier: SimTime) -> Delay {
        Delay::from_nanos(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == u64::MAX {
            write!(f, "t=inf")
        } else {
            write!(f, "t={:.3}us", self.0 as f64 / 1e3)
        }
    }
}

impl Add<Delay> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Delay) -> SimTime {
        SimTime(self.0 + rhs.as_nanos())
    }
}

impl AddAssign<Delay> for SimTime {
    fn add_assign(&mut self, rhs: Delay) {
        self.0 += rhs.as_nanos();
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Delay;
    fn sub(self, rhs: SimTime) -> Delay {
        assert!(self.0 >= rhs.0, "cannot subtract a later time");
        Delay::from_nanos(self.0 - rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(SimTime::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimTime::from_secs(1).as_millis(), 1_000);
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert!((SimTime::from_millis(250).as_secs_f64() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(10) + Delay::from_micros(5);
        assert_eq!(t, SimTime::from_micros(15));
        assert_eq!(t - SimTime::from_micros(10), Delay::from_micros(5));
        let mut u = SimTime::ZERO;
        u += Delay::from_millis(1);
        assert_eq!(u, SimTime::from_millis(1));
    }

    #[test]
    fn saturating_since_does_not_underflow() {
        let a = SimTime::from_micros(5);
        let b = SimTime::from_micros(9);
        assert_eq!(b.saturating_since(a), Delay::from_micros(4));
        assert_eq!(a.saturating_since(b), Delay::ZERO);
    }

    #[test]
    #[should_panic(expected = "cannot subtract a later time")]
    fn subtracting_later_time_panics() {
        let _ = SimTime::from_micros(1) - SimTime::from_micros(2);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_micros(1500).to_string(), "t=1500.000us");
        assert_eq!(SimTime::MAX.to_string(), "t=inf");
    }
}
