//! # bneck-sim
//!
//! A deterministic discrete-event network simulator, playing the role of the
//! modified Peersim simulator used in the paper's evaluation.
//!
//! The simulator delivers *messages* between *addresses* (opaque endpoints
//! owned by a protocol harness) through *channels* that model a directed
//! network link: a FIFO transmission queue with finite bandwidth plus a
//! propagation delay. The protocol under simulation implements the [`World`]
//! trait; the engine pops events in timestamp order (FIFO among equal
//! timestamps) and hands them to the world, which may send further messages.
//!
//! Quiescence — the property at the heart of the B-Neck paper — maps directly
//! onto the simulator: the network is quiescent when the event queue is empty,
//! and [`Engine::run`] reports the timestamp of the last processed event.
//!
//! ## Example
//!
//! ```
//! use bneck_sim::prelude::*;
//!
//! // A world that forwards a token `hops` times through one channel.
//! struct Relay { hops: u32, delivered: u32, channel: ChannelId }
//! impl World for Relay {
//!     type Message = u32;
//!     fn handle(&mut self, ctx: &mut Context<'_, u32>, _to: Address, msg: u32) {
//!         self.delivered += 1;
//!         if msg < self.hops {
//!             ctx.send(self.channel, Address(0), msg + 1);
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new();
//! let ch = engine.add_channel(ChannelSpec::new(1e6, bneck_net::Delay::from_micros(10), 512));
//! let mut world = Relay { hops: 5, delivered: 0, channel: ch };
//! engine.inject(SimTime::ZERO, Address(0), 1);
//! let report = engine.run(&mut world);
//! assert_eq!(world.delivered, 5);
//! assert!(report.quiescent_at > SimTime::ZERO);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod engine;
pub mod event;
pub mod explore;
pub mod fault;
pub mod par;
pub mod simulation;
pub mod time;

pub use channel::{ChannelId, ChannelSpec};
pub use engine::{Address, Context, Engine, RunReport, World};
pub use explore::{explore_schedules, ExploreStats, ScheduleCursor};
pub use fault::{FaultCounters, FaultPlan};
pub use par::{Partition, ShardedEngine};
pub use simulation::Simulation;
pub use time::SimTime;

/// Commonly used items, suitable for glob import.
pub mod prelude {
    pub use crate::channel::{ChannelId, ChannelSpec};
    pub use crate::engine::{Address, Context, Engine, RunReport, World};
    pub use crate::explore::{explore_schedules, ExploreStats, ScheduleCursor};
    pub use crate::fault::{FaultCounters, FaultPlan};
    pub use crate::par::{Partition, ShardedEngine};
    pub use crate::simulation::Simulation;
    pub use crate::time::SimTime;
}
