//! The discrete-event engine: event loop, scheduling context and run reports.

use crate::channel::{Channel, ChannelId, ChannelSpec};
use crate::event::EventQueue;
use crate::explore::ScheduleCursor;
use crate::fault::{self, FaultCounters, FaultPlan, FaultState};
use crate::time::SimTime;
use bneck_net::Delay;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::fmt;

/// An opaque endpoint that can receive messages.
///
/// The protocol harness decides what addresses mean (in the B-Neck harness,
/// every directed link task and every source/destination task gets one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Address(pub u32);

impl Address {
    /// Returns the address as an index usable with per-address vectors.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// The protocol under simulation.
///
/// The engine calls [`World::handle`] once per delivered message; the handler
/// runs atomically (mirroring the paper's atomic `when` blocks) and may send
/// further messages through the [`Context`].
pub trait World {
    /// The message type exchanged by the protocol.
    type Message;

    /// Handles the delivery of `msg` to `to` at the context's current time.
    fn handle(&mut self, ctx: &mut Context<'_, Self::Message>, to: Address, msg: Self::Message);

    /// Batching hint: messages delivered at the *same instant* that report
    /// the same non-`None` key are handed to [`World::handle_batch`] in one
    /// call, in exact delivery order. Return the destination's identity (the
    /// B-Neck harness keys protocol packets by their target link) so the
    /// engine can drain a same-destination run while that destination's
    /// state is hot in cache. `None` (the default) delivers the message
    /// individually through [`World::handle`].
    ///
    /// Batching is purely a locality optimization: the engine only ever
    /// groups a *prefix* of the globally ordered pending events, so the
    /// sequence of handler invocations — and therefore every observable
    /// outcome — is identical with batching on or off.
    fn batch_key(&self, _msg: &Self::Message) -> Option<u64> {
        None
    }

    /// Warming hint: called by [`Engine::run_until`] with the *next* pending
    /// message right before the current one is handled, so the world can
    /// touch (and thereby start loading) the state that message will need —
    /// a software prefetch by early load that overlaps the next event's
    /// cache misses with the current handler's work. Must not observe
    /// anything: the engine may warm a message that never arrives next (a
    /// handler can still schedule ahead of it). The default does nothing.
    fn warm(&self, _msg: &Self::Message) {}

    /// Handles a batch of same-instant messages that share a
    /// [`World::batch_key`]. Implementations must drain `batch` (the engine
    /// reuses the buffer) and must process the messages in order; the default
    /// simply forwards each message to [`World::handle`].
    fn handle_batch(
        &mut self,
        ctx: &mut Context<'_, Self::Message>,
        batch: &mut Vec<(Address, Self::Message)>,
    ) {
        for (to, msg) in batch.drain(..) {
            self.handle(ctx, to, msg);
        }
    }
}

/// Cross-shard delivery hook used by the parallel engine (see [`crate::par`]).
///
/// When installed on a [`Context`], every channel send is offered to the
/// router first: a send whose destination lives on another shard is diverted
/// to that shard's mailbox (stamped with its arrival time and canonical
/// sequence word) instead of the local queue.
pub(crate) trait MessageRouter<M> {
    /// Returns the message back when its destination is local to this shard;
    /// consumes it (queueing it for its owning shard) and returns `None`
    /// otherwise.
    fn try_route(&mut self, at: SimTime, key: u64, to: Address, msg: M) -> Option<M>;

    /// `true` when `to` is owned by this shard. Backs the debug assertion
    /// that channel-less scheduling ([`Context::schedule_after`],
    /// [`Context::deliver_now`]) stays on the owning shard — such events
    /// bypass routing entirely, so a cross-shard destination would silently
    /// deliver to the wrong replica and diverge.
    fn is_local(&self, _to: Address, _msg: &M) -> bool {
        true
    }
}

/// Reborrows an optional router for one event delivery. The explicit return
/// type is a coercion site that shortens the trait object's lifetime bound,
/// so the per-event borrow does not entangle the caller's longer one.
fn reborrow_route<'s, M>(
    route: &'s mut Option<&mut dyn MessageRouter<M>>,
) -> Option<&'s mut dyn MessageRouter<M>> {
    match route {
        Some(r) => Some(&mut **r),
        None => None,
    }
}

/// Scheduling facilities available to a [`World`] while it handles an event.
pub struct Context<'a, M> {
    now: SimTime,
    queue: &'a mut EventQueue<M>,
    channels: &'a mut Vec<Channel>,
    messages_sent: &'a mut u64,
    /// Active fault injection, if any. `None` in paper mode: the pristine
    /// send path pays one never-taken null check and nothing else.
    faults: Option<&'a mut FaultState<M>>,
    /// Cross-shard routing, if any. `None` on the serial engine: like
    /// `faults`, the single-engine send path pays one null check.
    route: Option<&'a mut dyn MessageRouter<M>>,
}

impl<'a, M> Context<'a, M> {
    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Sends `msg` to `to` through `channel`, modeling the channel's FIFO
    /// transmission and propagation delays.
    ///
    /// # Panics
    ///
    /// Panics if `channel` was not registered with the engine.
    pub fn send(&mut self, channel: ChannelId, to: Address, msg: M) {
        if self.faults.is_some() {
            return self.send_faulty(channel, to, msg);
        }
        let ch = &mut self.channels[channel.index()];
        let arrival = ch.accept(self.now);
        let key = crate::event::channel_seq(channel.0, ch.sent);
        *self.messages_sent += 1;
        self.push_routed(arrival, key, to, msg);
    }

    /// Hands a channel delivery to the local queue, or to the cross-shard
    /// router when one is installed and the destination lives elsewhere.
    fn push_routed(&mut self, at: SimTime, key: u64, to: Address, msg: M) {
        let msg = match self.route.as_mut() {
            Some(r) => match r.try_route(at, key, to, msg) {
                Some(m) => m,
                None => return,
            },
            None => msg,
        };
        self.queue.push_channel(at, key, to, msg);
    }

    /// The faulty arm of [`Context::send`]: rolls the message against the
    /// active [`FaultPlan`]. Kept out of line so paper-mode runs carry none
    /// of this code on the send path.
    #[cold]
    #[inline(never)]
    fn send_faulty(&mut self, channel: ChannelId, to: Address, msg: M) {
        let faults = self.faults.as_deref_mut().expect("checked by the caller");
        let plan = faults.plan;
        let ch = &mut self.channels[channel.index()];
        let arrival = ch.accept(self.now);
        *self.messages_sent += 1;
        // The channel's send counter is the per-packet nonce: deterministic,
        // thread-independent, unique per (channel, transmission). It is also
        // the event's canonical sequence word, so fault decisions and
        // delivery order survive sharding unchanged.
        let send = ch.sent;
        let key = crate::event::channel_seq(channel.0, send);
        let flight_ns = ch.flight().as_nanos().max(1);
        let dropped = plan.drop > 0.0
            && fault::roll(plan.seed, channel.0, send, fault::SALT_DROP) < plan.drop;
        let duplicated = plan.duplicate > 0.0
            && fault::roll(plan.seed, channel.0, send, fault::SALT_DUP) < plan.duplicate;
        let jitter_ns = if plan.reorder > 0.0
            && fault::roll(plan.seed, channel.0, send, fault::SALT_REORDER) < plan.reorder
        {
            fault::roll_window(plan.seed, channel.0, send, plan.reorder_window) * flight_ns
        } else {
            0
        };
        let counters = faults.counters_mut(channel.index());
        if dropped {
            counters.dropped += 1;
        }
        if duplicated {
            counters.duplicated += 1;
        }
        if !dropped && jitter_ns > 0 {
            counters.delayed += 1;
        }
        let copy = duplicated.then(|| (faults.clone)(&msg));
        if let Some(copy) = copy {
            // The copy is serialized right behind the original, so it always
            // arrives strictly later (a retransmitting NIC, not magic); the
            // second `accept` gives it its own transmission number and key.
            let ch = &mut self.channels[channel.index()];
            let dup_arrival = ch.accept(self.now);
            let dup_key = crate::event::channel_seq(channel.0, ch.sent);
            *self.messages_sent += 1;
            self.push_routed(dup_arrival, dup_key, to, copy);
        }
        if !dropped {
            let at = SimTime::from_nanos(arrival.as_nanos() + jitter_ns);
            self.push_routed(at, key, to, msg);
        }
    }

    /// Schedules `msg` for delivery to `to` after `delay`, without involving
    /// any channel (used for timers and locally generated events). In a
    /// sharded run `to` must be owned by the handling shard: timers bypass
    /// the cross-shard router (they have no channel, hence no lookahead).
    pub fn schedule_after(&mut self, delay: Delay, to: Address, msg: M) {
        debug_assert!(
            self.route.as_ref().map_or(true, |r| r.is_local(to, &msg)),
            "schedule_after must target the handling shard; {to} is remote"
        );
        self.queue.push_timer(self.now + delay, to, msg);
    }

    /// Delivers `msg` to `to` at the current time, after all events already
    /// scheduled for this instant. In a sharded run `to` must be owned by
    /// the handling shard, like [`Context::schedule_after`].
    pub fn deliver_now(&mut self, to: Address, msg: M) {
        debug_assert_eq!(self.now, self.queue.now_time());
        debug_assert!(
            self.route.as_ref().map_or(true, |r| r.is_local(to, &msg)),
            "deliver_now must target the handling shard; {to} is remote"
        );
        self.queue.push_now(to, msg);
    }
}

/// Summary of an [`Engine::run`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct RunReport {
    /// Number of events delivered to the world during this run.
    pub events_processed: u64,
    /// Number of messages sent through channels during this run.
    pub messages_sent: u64,
    /// Time of the last processed event; if no event was processed this is
    /// the time the run started at.
    pub quiescent_at: SimTime,
    /// `true` if the run ended because the event queue drained (quiescence),
    /// `false` if it stopped at a time horizon with work still pending.
    pub quiescent: bool,
}

/// The discrete-event simulation engine.
///
/// See the crate-level documentation for an end-to-end example.
#[derive(Debug)]
pub struct Engine<M> {
    now: SimTime,
    queue: EventQueue<M>,
    channels: Vec<Channel>,
    messages_sent: u64,
    events_processed: u64,
    /// Fault injection state; `None` (paper mode) keeps the send path
    /// pristine. Boxed so the engine itself stays small and the faulty
    /// state is one pointer away only when a plan is installed.
    faults: Option<Box<FaultState<M>>>,
}

impl<M> Default for Engine<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Engine<M> {
    /// Creates an engine at time zero with no channels and no pending events.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: EventQueue::default(),
            // xlint: allow(HOT001, reason = "engine construction, runs once before any event")
            channels: Vec::new(),
            messages_sent: 0,
            events_processed: 0,
            faults: None,
        }
    }

    /// Installs a seeded fault plan: every subsequent channel send rolls
    /// against it (drop, duplicate, delay jitter). Runs are bit-identical
    /// given the same `(seed, plan)` — decisions are a stateless hash of the
    /// plan seed, the channel and the channel's send counter. Timers and
    /// injected events are never perturbed.
    pub fn set_fault_plan(&mut self, plan: FaultPlan)
    where
        M: Clone,
    {
        // xlint: allow(HOT001, reason = "fault-plan installation, once per run before any event")
        self.faults = Some(Box::new(FaultState {
            plan,
            // xlint: allow(HOT001, reason = "fault-plan installation, once per run before any event")
            counters: Vec::new(),
            // xlint: allow(HOT001, reason = "defines the clone hook; only a rolled duplicate fault invokes it")
            clone: |m| m.clone(),
        }));
    }

    /// The active fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_deref().map(|f| &f.plan)
    }

    /// Faults injected on one channel so far (zero when no plan is active or
    /// the channel never rolled a fault).
    pub fn fault_counters(&self, channel: ChannelId) -> FaultCounters {
        self.faults
            .as_deref()
            .and_then(|f| f.counters.get(channel.index()).copied())
            .unwrap_or_default()
    }

    /// Sum of the injected-fault counters over every channel.
    pub fn fault_totals(&self) -> FaultCounters {
        let mut total = FaultCounters::default();
        if let Some(f) = self.faults.as_deref() {
            for c in &f.counters {
                total.absorb(*c);
            }
        }
        total
    }

    /// Per-channel injected-fault counters, restricted to channels that saw
    /// at least one fault (the diagnosable artifact for reports).
    pub fn fault_breakdown(&self) -> Vec<(ChannelId, FaultCounters)> {
        match self.faults.as_deref() {
            // xlint: allow(HOT001, reason = "post-run report assembly, off the per-event path")
            None => Vec::new(),
            Some(f) => f
                .counters
                .iter()
                .enumerate()
                .filter(|(_, c)| c.total() > 0)
                .map(|(i, c)| (ChannelId(i as u32), *c))
                .collect(),
        }
    }

    /// Registers a channel and returns its identifier.
    ///
    /// # Panics
    ///
    /// Panics if 2^30 channels are already registered: channel identifiers
    /// must fit the 30-bit field of the canonical sequence word (see
    /// [`crate::event`]), and aliased identifiers would corrupt the
    /// deterministic same-instant delivery order.
    pub fn add_channel(&mut self, spec: ChannelSpec) -> ChannelId {
        assert!(
            self.channels.len() < (1 << 30),
            "channel identifiers overflow the 30-bit sequence-key field"
        );
        let id = ChannelId(self.channels.len() as u32);
        self.channels.push(Channel::new(spec));
        id
    }

    /// Number of registered channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Total messages sent through a specific channel so far.
    pub fn channel_sent(&self, channel: ChannelId) -> u64 {
        self.channels[channel.index()].sent
    }

    /// The current simulated time (time of the last processed event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting in the queue.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// `true` when no event is pending: the simulated network is quiescent.
    pub fn is_quiescent(&self) -> bool {
        self.queue.is_empty()
    }

    /// Total messages sent through channels since the engine was created.
    pub fn total_messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Total events processed since the engine was created.
    pub fn total_events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Injects an external event (for example an `API.Join` call from the
    /// workload) for delivery to `to` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the simulated past.
    pub fn inject(&mut self, at: SimTime, to: Address, msg: M) {
        assert!(at >= self.now, "cannot inject an event in the past");
        self.queue.push_injected(at, to, msg);
    }

    /// Injects an event under a caller-assigned [`crate::event::CLASS_INJECT`]
    /// sequence word. The sharded engine numbers injections with one global
    /// counter so the canonical order is independent of the shard count.
    pub(crate) fn inject_keyed(&mut self, at: SimTime, seq: u64, to: Address, msg: M) {
        assert!(at >= self.now, "cannot inject an event in the past");
        self.queue.push_injected_keyed(at, seq, to, msg);
    }

    /// Timestamp of the next pending event, if any (the shard-local lower
    /// bound of the parallel engine's horizon computation).
    pub(crate) fn next_event_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Enqueues a channel delivery that was accepted on another shard; its
    /// arrival time and canonical sequence word were computed by the sender.
    pub(crate) fn enqueue_remote(&mut self, at: SimTime, key: u64, to: Address, msg: M) {
        self.queue.push_channel(at, key, to, msg);
    }

    /// Re-synchronizes the clock after a sharded run: while a shard waits for
    /// global termination its clock creeps ahead of the last real event, so
    /// the parallel driver rewinds (or advances) every shard to one fleet-wide
    /// end time — matching the serial contract that `now` is the last event
    /// time after a quiescent run, or the horizon after a bounded one.
    ///
    /// Only sound when no pending event precedes `at`.
    pub(crate) fn set_clock(&mut self, at: SimTime) {
        debug_assert!(
            self.queue.peek_time().map_or(true, |head| head >= at),
            "cannot move the clock past a pending event"
        );
        self.now = at;
    }

    /// Runs until the event queue is empty, returning a report whose
    /// `quiescent_at` is the timestamp of the last processed event.
    pub fn run<W: World<Message = M>>(&mut self, world: &mut W) -> RunReport {
        self.run_until(world, SimTime::MAX)
    }

    /// Processes exactly the next pending event, advancing the clock to its
    /// timestamp. Returns `false` (leaving the clock untouched) when the
    /// queue is empty.
    pub fn step<W: World<Message = M>>(&mut self, world: &mut W) -> bool {
        match self.queue.pop_at_most(SimTime::MAX) {
            Some(event) => {
                self.process(world, event, None);
                true
            }
            None => false,
        }
    }

    /// Delivers one popped event: advances the clock and hands the message to
    /// the world with a scheduling context (shared by [`Engine::step`] and
    /// [`Engine::run_until`], so the two can never diverge).
    fn process<W: World<Message = M>>(
        &mut self,
        world: &mut W,
        event: crate::event::Event<M>,
        mut route: Option<&mut dyn MessageRouter<M>>,
    ) {
        debug_assert!(event.at >= self.now, "time must not go backwards");
        self.now = event.at;
        self.events_processed += 1;
        let mut ctx = Context {
            now: self.now,
            queue: &mut self.queue,
            channels: &mut self.channels,
            messages_sent: &mut self.messages_sent,
            faults: self.faults.as_deref_mut(),
            route: reborrow_route(&mut route),
        };
        world.handle(&mut ctx, event.to, event.msg);
    }

    /// Delivers the next pending event *chosen by the cursor* among the
    /// same-instant head group: where [`Engine::step`] always takes the
    /// canonical FIFO head, this hands every event scheduled at the head
    /// timestamp to the [`ScheduleCursor`] as one choice point and delivers
    /// the member it picks (the rest keep their relative order). Driving a
    /// whole run this way executes one *schedule* of the interleaving
    /// explorer (see [`crate::explore`]). Returns `false` when quiescent.
    pub fn step_explored<W: World<Message = M>>(
        &mut self,
        world: &mut W,
        cursor: &mut ScheduleCursor,
    ) -> bool {
        // xlint: allow(HOT001, reason = "interleaving-explorer stepping, not the production run loop")
        let mut group: Vec<(Address, M)> = Vec::new();
        self.queue.drain_head_group(&mut group);
        if group.is_empty() {
            return false;
        }
        let pick = if group.len() > 1 {
            cursor.choose(group.len())
        } else {
            0
        };
        let at = self.queue.now_time();
        let (to, msg) = group.remove(pick);
        for (to, msg) in group {
            // Re-pushed at the current instant: fresh `CLASS_NOW` words
            // preserve the group's relative order, and anything a handler
            // then schedules at the instant sorts behind them.
            self.queue.push_now(to, msg);
        }
        self.process(
            world,
            crate::event::Event {
                at,
                seq: 0,
                to,
                msg,
            },
            None,
        );
        true
    }

    /// Runs until the event queue is empty or the next event is strictly after
    /// `horizon`. Events at exactly `horizon` are processed. When the run
    /// stops at the horizon, the engine's clock is advanced to `horizon` so a
    /// subsequent run continues from there.
    ///
    /// Consecutive events at the same instant whose messages share a
    /// [`World::batch_key`] are drained in one [`World::handle_batch`] call,
    /// so a burst of packets to one destination runs with that destination's
    /// state hot in cache. The grouping never reorders deliveries (only a
    /// prefix of the already-ordered pending events is grouped, and anything
    /// a handler schedules carries a later sequence number), so a batched
    /// run and a [`Engine::step`]-by-step run are indistinguishable.
    pub fn run_until<W: World<Message = M>>(
        &mut self,
        world: &mut W,
        horizon: SimTime,
    ) -> RunReport {
        self.run_until_inner(world, horizon, None)
    }

    /// [`Engine::run_until`] with a cross-shard router installed: every
    /// channel send is offered to `route` first. The parallel engine drives
    /// each shard through this entry point so the batched-delivery/warm hot
    /// path is shared with the serial engine, not duplicated.
    pub(crate) fn run_until_routed<W: World<Message = M>>(
        &mut self,
        world: &mut W,
        horizon: SimTime,
        route: &mut dyn MessageRouter<M>,
    ) -> RunReport {
        self.run_until_inner(world, horizon, Some(route))
    }

    fn run_until_inner<W: World<Message = M>>(
        &mut self,
        world: &mut W,
        horizon: SimTime,
        mut route: Option<&mut dyn MessageRouter<M>>,
    ) -> RunReport {
        /// Upper bound on one batch, so the reusable buffer stays small and a
        /// mega-burst cannot starve the clock of progress bookkeeping.
        const MAX_BATCH: usize = 128;
        let start_events = self.events_processed;
        let start_messages = self.messages_sent;
        let mut last_event_time = self.now;
        // xlint: allow(HOT001, reason = "one reusable batch buffer per run_until call; drained in place, never reallocated per event")
        let mut batch: Vec<(Address, M)> = Vec::new();
        while let Some(event) = self.queue.pop_at_most(horizon) {
            last_event_time = event.at;
            let Some(key) = world.batch_key(&event.msg) else {
                if let Some(next) = self.queue.peek_msg() {
                    world.warm(next);
                }
                self.process(world, event, reborrow_route(&mut route));
                continue;
            };
            let at = event.at;
            batch.push((event.to, event.msg));
            while batch.len() < MAX_BATCH {
                let Some(follow) = self
                    .queue
                    .pop_if_at(at, |_, msg| world.batch_key(msg) == Some(key))
                else {
                    break;
                };
                batch.push((follow.to, follow.msg));
            }
            // Start loading the state the *next* event will touch while this
            // one is handled (its cache misses overlap the handler's work).
            if let Some(next) = self.queue.peek_msg() {
                world.warm(next);
            }
            debug_assert!(at >= self.now, "time must not go backwards");
            self.now = at;
            self.events_processed += batch.len() as u64;
            let mut ctx = Context {
                now: self.now,
                queue: &mut self.queue,
                channels: &mut self.channels,
                messages_sent: &mut self.messages_sent,
                faults: self.faults.as_deref_mut(),
                route: reborrow_route(&mut route),
            };
            world.handle_batch(&mut ctx, &mut batch);
            debug_assert!(batch.is_empty(), "handle_batch must drain the batch");
            batch.clear();
        }
        let quiescent = self.queue.is_empty();
        if !quiescent && horizon != SimTime::MAX && horizon > self.now {
            self.now = horizon;
        }
        RunReport {
            events_processed: self.events_processed - start_events,
            messages_sent: self.messages_sent - start_messages,
            quiescent_at: last_event_time,
            quiescent,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ping-pongs a counter between two addresses over two channels until it
    /// reaches a limit.
    struct PingPong {
        limit: u32,
        log: Vec<(u64, Address, u32)>,
        forward: ChannelId,
        backward: ChannelId,
    }

    impl World for PingPong {
        type Message = u32;
        fn handle(&mut self, ctx: &mut Context<'_, u32>, to: Address, msg: u32) {
            self.log.push((ctx.now().as_nanos(), to, msg));
            if msg >= self.limit {
                return;
            }
            let (ch, next) = if to == Address(0) {
                (self.forward, Address(1))
            } else {
                (self.backward, Address(0))
            };
            ctx.send(ch, next, msg + 1);
        }
    }

    fn engine_with_two_channels() -> (Engine<u32>, ChannelId, ChannelId) {
        let mut engine = Engine::new();
        let spec = ChannelSpec::new(1e9, Delay::from_micros(10), 1000);
        let f = engine.add_channel(spec);
        let b = engine.add_channel(spec);
        (engine, f, b)
    }

    #[test]
    fn runs_to_quiescence_and_reports_time() {
        let (mut engine, f, b) = engine_with_two_channels();
        let mut world = PingPong {
            limit: 4,
            log: Vec::new(),
            forward: f,
            backward: b,
        };
        engine.inject(SimTime::ZERO, Address(0), 0);
        let report = engine.run(&mut world);
        assert!(report.quiescent);
        assert_eq!(report.events_processed, 5); // msgs 0..=4 delivered
        assert_eq!(report.messages_sent, 4);
        // Each hop takes 1 us transmission + 10 us propagation.
        assert_eq!(report.quiescent_at, SimTime::from_micros(44));
        assert!(engine.is_quiescent());
        assert_eq!(engine.channel_sent(f), 2);
        assert_eq!(engine.channel_sent(b), 2);
    }

    #[test]
    fn horizon_stops_and_resumes() {
        let (mut engine, f, b) = engine_with_two_channels();
        let mut world = PingPong {
            limit: 4,
            log: Vec::new(),
            forward: f,
            backward: b,
        };
        engine.inject(SimTime::ZERO, Address(0), 0);
        let first = engine.run_until(&mut world, SimTime::from_micros(20));
        assert!(!first.quiescent);
        assert!(engine.pending_events() > 0);
        assert_eq!(engine.now(), SimTime::from_micros(20));
        let second = engine.run(&mut world);
        assert!(second.quiescent);
        assert_eq!(
            first.events_processed + second.events_processed,
            5,
            "split runs must process the same events as a single run"
        );
    }

    #[test]
    fn timers_do_not_use_channels() {
        struct Timers {
            fired: Vec<u64>,
        }
        impl World for Timers {
            type Message = &'static str;
            fn handle(
                &mut self,
                ctx: &mut Context<'_, &'static str>,
                _to: Address,
                msg: &'static str,
            ) {
                self.fired.push(ctx.now().as_micros());
                if msg == "start" {
                    ctx.schedule_after(Delay::from_micros(7), Address(0), "later");
                    ctx.deliver_now(Address(0), "now");
                }
            }
        }
        let mut engine: Engine<&'static str> = Engine::new();
        let mut world = Timers { fired: Vec::new() };
        engine.inject(SimTime::from_micros(1), Address(0), "start");
        let report = engine.run(&mut world);
        assert_eq!(world.fired, vec![1, 1, 8]);
        assert_eq!(report.messages_sent, 0);
        assert_eq!(report.events_processed, 3);
    }

    #[test]
    fn empty_run_is_quiescent_immediately() {
        let mut engine: Engine<()> = Engine::new();
        struct Nop;
        impl World for Nop {
            type Message = ();
            fn handle(&mut self, _ctx: &mut Context<'_, ()>, _to: Address, _msg: ()) {}
        }
        let report = engine.run(&mut Nop);
        assert!(report.quiescent);
        assert_eq!(report.events_processed, 0);
        assert_eq!(report.quiescent_at, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn injecting_in_the_past_panics() {
        let (mut engine, f, b) = engine_with_two_channels();
        let mut world = PingPong {
            limit: 1,
            log: Vec::new(),
            forward: f,
            backward: b,
        };
        engine.inject(SimTime::from_micros(100), Address(0), 0);
        engine.run(&mut world);
        engine.inject(SimTime::from_micros(1), Address(0), 0);
    }

    /// A world that batches messages by destination address and logs every
    /// delivery plus the batch boundaries.
    struct Batcher {
        log: Vec<(u64, u32, u32)>,
        batch_sizes: Vec<usize>,
        forward: ChannelId,
    }

    impl World for Batcher {
        type Message = u32;
        fn handle(&mut self, ctx: &mut Context<'_, u32>, to: Address, msg: u32) {
            self.log.push((ctx.now().as_nanos(), to.0, msg));
            // The first generation fans out same-instant follow-ups: the
            // first five to one destination, the next five to another, so
            // the engine sees two same-key runs to batch.
            if msg < 10 {
                ctx.deliver_now(Address(msg / 5), msg + 10);
                ctx.send(self.forward, Address(2), msg + 100);
            }
        }
        fn batch_key(&self, msg: &u32) -> Option<u64> {
            // Group everything but the seed generation.
            (*msg >= 10).then(|| ((*msg - 10) / 5) as u64)
        }
        fn handle_batch(&mut self, ctx: &mut Context<'_, u32>, batch: &mut Vec<(Address, u32)>) {
            self.batch_sizes.push(batch.len());
            for (to, msg) in batch.drain(..) {
                self.handle(ctx, to, msg);
            }
        }
    }

    #[test]
    fn batched_runs_deliver_in_the_exact_step_by_step_order() {
        let build = || {
            let mut engine = Engine::new();
            let forward = engine.add_channel(ChannelSpec::new(1e9, Delay::from_micros(10), 1000));
            let world = Batcher {
                log: Vec::new(),
                batch_sizes: Vec::new(),
                forward,
            };
            (engine, world)
        };
        // Reference order: step() never batches.
        let (mut engine, mut stepped) = build();
        for i in 0..10u32 {
            engine.inject(SimTime::from_micros(1), Address(9), i);
        }
        let mut steps = 0u64;
        while engine.step(&mut stepped) {
            steps += 1;
        }
        assert!(stepped.batch_sizes.is_empty(), "step() must not batch");

        // Batched run: identical log, same event count, and the same-instant
        // same-key runs actually grouped.
        let (mut engine, mut batched) = build();
        for i in 0..10u32 {
            engine.inject(SimTime::from_micros(1), Address(9), i);
        }
        let report = engine.run(&mut batched);
        assert_eq!(batched.log, stepped.log);
        assert_eq!(report.events_processed, steps);
        assert!(
            batched.batch_sizes.iter().any(|&n| n > 1),
            "expected at least one multi-event batch, got {:?}",
            batched.batch_sizes
        );
        assert_eq!(
            batched.batch_sizes.iter().sum::<usize>() as u64 + 10,
            steps,
            "every non-seed event flows through handle_batch"
        );
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let run = || {
            let (mut engine, f, b) = engine_with_two_channels();
            let mut world = PingPong {
                limit: 10,
                log: Vec::new(),
                forward: f,
                backward: b,
            };
            engine.inject(SimTime::ZERO, Address(0), 0);
            engine.run(&mut world);
            world.log
        };
        assert_eq!(run(), run());
    }

    /// A world that floods one channel with `count` messages and records
    /// every delivery (for fault-injection assertions).
    struct Flood {
        count: u32,
        channel: ChannelId,
        delivered: Vec<(u64, u32)>,
    }

    impl World for Flood {
        type Message = u32;
        fn handle(&mut self, ctx: &mut Context<'_, u32>, to: Address, msg: u32) {
            if to == Address(0) {
                for i in 0..self.count {
                    ctx.send(self.channel, Address(1), i);
                }
            } else {
                self.delivered.push((ctx.now().as_nanos(), msg));
            }
        }
    }

    fn faulty_flood(plan: Option<FaultPlan>, count: u32) -> (Engine<u32>, Flood) {
        let mut engine = Engine::new();
        let channel = engine.add_channel(ChannelSpec::new(1e9, Delay::from_micros(10), 1000));
        if let Some(plan) = plan {
            engine.set_fault_plan(plan);
        }
        let mut world = Flood {
            count,
            channel,
            delivered: Vec::new(),
        };
        engine.inject(SimTime::ZERO, Address(0), 0);
        engine.run(&mut world);
        (engine, world)
    }

    #[test]
    fn a_noop_plan_changes_nothing() {
        let (_, clean) = faulty_flood(None, 50);
        let (engine, faulted) = faulty_flood(Some(FaultPlan::new(1, 0.0, 0.0, 0.0, 0)), 50);
        assert_eq!(clean.delivered, faulted.delivered);
        assert_eq!(engine.fault_totals(), FaultCounters::default());
        assert!(engine.fault_plan().is_some());
    }

    #[test]
    fn drops_remove_deliveries_and_are_counted() {
        let plan = FaultPlan::new(7, 0.3, 0.0, 0.0, 0);
        let (engine, world) = faulty_flood(Some(plan), 200);
        let totals = engine.fault_totals();
        assert!(totals.dropped > 0, "a 30% plan over 200 sends drops some");
        assert_eq!(world.delivered.len() as u64, 200 - totals.dropped);
        assert_eq!(engine.fault_counters(ChannelId(0)).dropped, totals.dropped);
        assert_eq!(engine.fault_breakdown().len(), 1);
        // Dropped messages still occupied the transmitter.
        assert_eq!(engine.channel_sent(ChannelId(0)), 200);
    }

    #[test]
    fn duplicates_add_deliveries_and_are_counted() {
        let plan = FaultPlan::new(7, 0.0, 0.25, 0.0, 0);
        let (engine, world) = faulty_flood(Some(plan), 200);
        let totals = engine.fault_totals();
        assert!(totals.duplicated > 0);
        assert_eq!(world.delivered.len() as u64, 200 + totals.duplicated);
    }

    #[test]
    fn reorder_jitter_lets_later_packets_overtake() {
        let plan = FaultPlan::new(11, 0.0, 0.0, 0.5, 4);
        let (engine, world) = faulty_flood(Some(plan), 200);
        let totals = engine.fault_totals();
        assert!(totals.delayed > 0);
        assert_eq!(world.delivered.len(), 200, "jitter never loses a message");
        let payloads: Vec<u32> = world.delivered.iter().map(|&(_, m)| m).collect();
        assert!(
            payloads.windows(2).any(|w| w[0] > w[1]),
            "with heavy jitter some packet overtakes another"
        );
    }

    #[test]
    fn faulty_runs_are_bit_identical_for_the_same_seed_and_plan() {
        let plan = FaultPlan::new(42, 0.05, 0.01, 0.1, 4);
        let (_, a) = faulty_flood(Some(plan), 300);
        let (_, b) = faulty_flood(Some(plan), 300);
        assert_eq!(a.delivered, b.delivered);
        let other = FaultPlan::new(43, 0.05, 0.01, 0.1, 4);
        let (_, c) = faulty_flood(Some(other), 300);
        assert_ne!(a.delivered, c.delivered, "a different seed perturbs runs");
    }

    #[test]
    fn timers_and_injected_events_are_never_perturbed() {
        struct Timers {
            fired: u32,
        }
        impl World for Timers {
            type Message = &'static str;
            fn handle(
                &mut self,
                ctx: &mut Context<'_, &'static str>,
                _to: Address,
                msg: &'static str,
            ) {
                self.fired += 1;
                if msg == "start" {
                    ctx.schedule_after(Delay::from_micros(3), Address(0), "timer");
                    ctx.deliver_now(Address(0), "now");
                }
            }
        }
        let mut engine: Engine<&'static str> = Engine::new();
        engine.set_fault_plan(FaultPlan::new(1, 1.0, 0.0, 0.0, 0));
        let mut world = Timers { fired: 0 };
        engine.inject(SimTime::ZERO, Address(0), "start");
        engine.run(&mut world);
        assert_eq!(world.fired, 3, "a drop-everything plan spares timers");
        assert_eq!(engine.fault_totals(), FaultCounters::default());
    }
}
