//! Seeded channel fault injection: drops, duplicates and delay jitter.
//!
//! The paper's correctness argument assumes reliable FIFO delivery between
//! tasks. A [`FaultPlan`] breaks that assumption on purpose: every message a
//! world sends through a channel rolls against seeded per-channel
//! probabilities and may be dropped, duplicated, or delayed by a bounded
//! jitter that lets later packets overtake it. The decisions are a stateless
//! hash of `(plan seed, channel id, per-channel send counter)` — no global
//! RNG, no wall clock — so a faulty run is bit-identical given the same
//! `(seed, plan)` regardless of thread count or repetition, and any single
//! packet's fate can be replayed exactly.
//!
//! Faults apply only to channel sends ([`crate::Context::send`]): timers and
//! externally injected API events model local computation, not network
//! delivery, and are never perturbed.

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// A seeded description of how unreliable every channel is.
///
/// Probabilities are per-send and independent; `reorder_window` bounds the
/// delay jitter in units of one packet flight time (transmission +
/// propagation), so a delayed packet can be overtaken by at most roughly
/// `reorder_window` later packets on the same channel.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct FaultPlan {
    /// Seed from which every per-packet decision is derived.
    pub seed: u64,
    /// Probability that a sent message is silently dropped (it still occupies
    /// the transmitter — the model is corruption at the receiver).
    pub drop: f64,
    /// Probability that a sent message is delivered twice (the copy is
    /// serialized again, so it arrives later than the original).
    pub duplicate: f64,
    /// Probability that a delivered message is held back by a jitter of
    /// 1..=`reorder_window` flight times, letting later traffic overtake it.
    pub reorder: f64,
    /// Upper bound of the delay jitter, in packet flight times.
    pub reorder_window: u32,
}

impl FaultPlan {
    /// Creates a plan, validating every probability.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]` or not finite, or if
    /// `reorder > 0` with a zero window.
    pub fn new(seed: u64, drop: f64, duplicate: f64, reorder: f64, reorder_window: u32) -> Self {
        for (name, p) in [
            ("drop", drop),
            ("duplicate", duplicate),
            ("reorder", reorder),
        ] {
            assert!(
                p.is_finite() && (0.0..=1.0).contains(&p),
                "{name} probability must be within [0, 1], got {p}"
            );
        }
        assert!(
            reorder == 0.0 || reorder_window > 0,
            "a non-zero reorder probability needs a non-zero window"
        );
        FaultPlan {
            seed,
            drop,
            duplicate,
            reorder,
            reorder_window,
        }
    }

    /// `true` when the plan can never perturb a delivery.
    pub fn is_noop(&self) -> bool {
        self.drop == 0.0 && self.duplicate == 0.0 && self.reorder == 0.0
    }
}

/// Per-channel counters of the faults actually injected, for reports: a
/// failing faulty run must be diagnosable from its artifacts alone.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct FaultCounters {
    /// Messages accepted by the transmitter but never delivered.
    pub dropped: u64,
    /// Extra copies delivered beyond the original send.
    pub duplicated: u64,
    /// Deliveries held back by a reorder jitter.
    pub delayed: u64,
}

impl FaultCounters {
    /// Sums another counter set into this one.
    pub fn absorb(&mut self, other: FaultCounters) {
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.delayed += other.delayed;
    }

    /// Total injected faults of any kind.
    pub fn total(&self) -> u64 {
        self.dropped + self.duplicated + self.delayed
    }
}

/// Distinct decision streams derived from one `(seed, channel, send)` triple,
/// so the drop, duplicate and jitter rolls of one packet are independent.
pub(crate) const SALT_DROP: u64 = 0x9E6D;
pub(crate) const SALT_DUP: u64 = 0xC2B2;
pub(crate) const SALT_REORDER: u64 = 0x1656;
pub(crate) const SALT_JITTER: u64 = 0x27D4;

/// A uniform draw in `[0, 1)` from a stateless splitmix64-style mix of the
/// plan seed, the channel and the channel's send counter.
pub(crate) fn roll(seed: u64, channel: u32, send: u64, salt: u64) -> f64 {
    (mix(seed, channel, send, salt) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A uniform draw in `1..=bound` for the jitter magnitude.
pub(crate) fn roll_window(seed: u64, channel: u32, send: u64, bound: u32) -> u64 {
    1 + mix(seed, channel, send, SALT_JITTER) % bound as u64
}

fn mix(seed: u64, channel: u32, send: u64, salt: u64) -> u64 {
    let mut x = seed
        ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (channel as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ send.wrapping_mul(0x94D0_49BB_1331_11EB);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The engine-side state of an active plan: the plan, the per-channel
/// injection counters, and the message clone function captured when the plan
/// was installed (so the engine's send path needs no `Clone` bound).
pub(crate) struct FaultState<M> {
    pub(crate) plan: FaultPlan,
    pub(crate) counters: Vec<FaultCounters>,
    pub(crate) clone: fn(&M) -> M,
}

impl<M> std::fmt::Debug for FaultState<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultState")
            .field("plan", &self.plan)
            .field("counters", &self.counters)
            .finish()
    }
}

impl<M> FaultState<M> {
    pub(crate) fn counters_mut(&mut self, channel: usize) -> &mut FaultCounters {
        if channel >= self.counters.len() {
            self.counters.resize(channel + 1, FaultCounters::default());
        }
        &mut self.counters[channel]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolls_are_deterministic_and_uniform_ish() {
        let a = roll(7, 3, 42, SALT_DROP);
        assert_eq!(a, roll(7, 3, 42, SALT_DROP));
        assert_ne!(a, roll(7, 3, 42, SALT_DUP), "salts decorrelate decisions");
        assert_ne!(a, roll(7, 3, 43, SALT_DROP), "sends decorrelate decisions");
        assert_ne!(a, roll(8, 3, 42, SALT_DROP), "seeds decorrelate decisions");
        let mean: f64 = (0..10_000).map(|i| roll(1, 0, i, SALT_DROP)).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} is far from 0.5");
        assert!((0..10_000).all(|i| (0.0..1.0).contains(&roll(1, 0, i, SALT_DROP))));
    }

    #[test]
    fn window_rolls_stay_in_range() {
        for i in 0..1_000 {
            let w = roll_window(5, 2, i, 4);
            assert!((1..=4).contains(&w));
        }
        assert!((0..1_000).any(|i| roll_window(5, 2, i, 4) == 4));
    }

    #[test]
    fn plan_validation() {
        let plan = FaultPlan::new(1, 0.05, 0.01, 0.1, 4);
        assert!(!plan.is_noop());
        assert!(FaultPlan::new(1, 0.0, 0.0, 0.0, 0).is_noop());
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn out_of_range_probability_is_rejected() {
        let _ = FaultPlan::new(1, 1.5, 0.0, 0.0, 0);
    }

    #[test]
    #[should_panic(expected = "non-zero window")]
    fn reorder_without_window_is_rejected() {
        let _ = FaultPlan::new(1, 0.0, 0.0, 0.5, 0);
    }

    #[test]
    fn counters_absorb_and_total() {
        let mut a = FaultCounters {
            dropped: 1,
            duplicated: 2,
            delayed: 3,
        };
        a.absorb(FaultCounters {
            dropped: 10,
            duplicated: 20,
            delayed: 30,
        });
        assert_eq!(a.total(), 66);
    }
}
