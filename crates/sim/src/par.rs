//! Conservative (lookahead-based) parallel discrete-event engine.
//!
//! [`ShardedEngine`] runs one simulation across several [`Engine`]s, each
//! owning a disjoint slice of the world (a set of routers plus their attached
//! hosts, in the B-Neck partition) and its own calendar queue. Shards run as
//! `Send` units on `std::thread::scope` threads and exchange cross-shard
//! channel deliveries through mailboxes stamped with `(arrival time,
//! canonical sequence word)`.
//!
//! ## The horizon rule
//!
//! This is the classic Chandy–Misra–Bryant conservative scheme: physical link
//! latency is the lookahead. Every channel's flight time (transmission +
//! propagation) is strictly positive, so a message sent by shard `p` at its
//! clock `c_p` cannot arrive before `c_p + L(p, k)`, where `L(p, k)` is the
//! minimum flight time over channels crossing from `p` into `k`. Shard `k`
//! may therefore safely process every event strictly below
//!
//! ```text
//! safe(k) = min over peers p of ( clock(p) + L(p, k) )
//! ```
//!
//! Each worker loops: read peer clocks, drain inbound mailboxes, run the
//! shard's serial engine up to `safe(k) - 1` (the batched-delivery/warm hot
//! path of [`Engine::run_until`], shared, not duplicated), flush outbound
//! sends, then publish its own clock `min(local head, safe(k))`. Clocks are
//! monotone and every publish happens after the matching mailbox flush, so a
//! reader that observes a clock value also observes every message sent before
//! it — arrivals never land in a shard's past.
//!
//! ## Determinism contract
//!
//! Events are globally ordered by `(timestamp, canonical sequence word)`
//! (see [`crate::event`]): channel deliveries are keyed by
//! `(channel, transmission number)` — a property of the simulated network,
//! not of which queue or thread carried them — and injections by one global
//! counter. Same-instant cross-shard deliveries therefore merge back into
//! exactly the serial order, and a run is bit-identical at any shard count.
//!
//! Mailbox occupancy is bounded by the lookahead window itself: a sender can
//! only run `L` nanoseconds ahead of its slowest peer, so at most one
//! window's worth of cross-shard sends is ever in flight.

use crate::channel::ChannelId;
use crate::engine::{Address, Engine, MessageRouter, RunReport, World};
use crate::event::{CLASS_INJECT, CLASS_MASK};
use crate::fault::{FaultCounters, FaultPlan};
use crate::time::SimTime;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// A static partition of the simulated world over shards.
///
/// The implementor owns the address → shard and channel-topology knowledge;
/// the engine only needs destinations resolved and inter-shard lookahead
/// bounds. Implementations must be pure functions of the topology (queried
/// concurrently from every worker).
pub trait Partition<M>: Sync {
    /// Number of shards. Stable for the lifetime of the run.
    fn shards(&self) -> usize;

    /// The shard owning the destination of a message. Every sender of a
    /// given channel must resolve all its deliveries to one shard, and the
    /// answer must be identical from any shard (it is consulted on the
    /// sender's thread).
    fn shard_of(&self, to: Address, msg: &M) -> usize;

    /// Minimum flight time in nanoseconds over channels whose sender lives
    /// on shard `from` and whose receiver lives on shard `to`; `None` when
    /// no channel crosses that pair (the pair then never constrains the
    /// horizon).
    fn lookahead_ns(&self, from: usize, to: usize) -> Option<u64>;
}

/// One cross-shard channel delivery: arrival time and canonical sequence
/// word were computed on the sending shard (the channel's owner).
struct Remote<M> {
    at: SimTime,
    key: u64,
    to: Address,
    msg: M,
}

/// The per-worker cross-shard send collector, installed on the engine as its
/// [`MessageRouter`]: local sends pass through, remote sends accumulate in
/// per-peer outbound buffers flushed once per window.
struct ShardRouter<'a, M, P> {
    me: usize,
    partition: &'a P,
    outbound: Vec<Vec<Remote<M>>>,
}

impl<M, P: Partition<M>> MessageRouter<M> for ShardRouter<'_, M, P> {
    fn try_route(&mut self, at: SimTime, key: u64, to: Address, msg: M) -> Option<M> {
        let shard = self.partition.shard_of(to, &msg);
        if shard == self.me {
            return Some(msg);
        }
        self.outbound[shard].push(Remote { at, key, to, msg });
        None
    }

    fn is_local(&self, to: Address, msg: &M) -> bool {
        self.partition.shard_of(to, msg) == self.me
    }
}

/// Termination-detection ledger, written only under its mutex. A worker
/// claims idleness together with its message totals, and *retracts* the
/// claim (clearing its idle bit) the moment it drains new work; the run is
/// over exactly when every worker's claim stands and the fleet-wide pushed
/// and drained totals agree. An idle bit that is set therefore vouches that
/// its shard has neither drained nor pushed since the matching totals were
/// written — so any in-flight or not-yet-accounted message shows up as a
/// sum mismatch (its push is claimed by the sender, its drain by nobody),
/// and the check can never declare done early.
struct TermState {
    idle: Vec<bool>,
    pushed: Vec<u64>,
    drained: Vec<u64>,
}

/// State shared by all shard workers for one run.
struct Shared<'a, M, P> {
    partition: &'a P,
    /// Published per-shard lower bounds (ns): shard `k` will never again
    /// send a message arriving before `clocks[k] + L(k, ·)`. Monotone.
    clocks: Vec<AtomicU64>,
    /// `mailboxes[to][from]`: single-producer/single-consumer by
    /// construction; the mutex is uncontended except when both endpoints
    /// touch the same box at once.
    mailboxes: Vec<Vec<Mutex<Vec<Remote<M>>>>>,
    term: Mutex<TermState>,
    done: AtomicBool,
    horizon: SimTime,
}

/// A conservative parallel driver over per-shard [`Engine`]s.
///
/// Construction registers the same channel table on every shard (identifiers
/// are global); each channel's transmitter state is only ever touched by the
/// one shard that owns all its senders. Injections are numbered by one
/// global counter so the canonical event order is independent of the shard
/// count; `shards == 1` runs the serial engine directly.
pub struct ShardedEngine<M> {
    engines: Vec<Engine<M>>,
    inject_seq: u64,
}

impl<M> ShardedEngine<M> {
    /// Creates an engine with `shards` empty shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "at least one shard");
        let engines = (0..shards).map(|_| Engine::new()).collect();
        ShardedEngine {
            engines,
            inject_seq: 0,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.engines.len()
    }

    /// The serial engine of one shard (counters, channel state).
    pub fn shard(&self, shard: usize) -> &Engine<M> {
        &self.engines[shard]
    }

    /// Mutable access to one shard's engine, for world construction
    /// (channel registration must happen identically on every shard).
    pub fn shard_mut(&mut self, shard: usize) -> &mut Engine<M> {
        &mut self.engines[shard]
    }

    /// Injects an external event into the shard owning `to`, stamped by the
    /// global injection counter (the canonical order is then independent of
    /// the shard count).
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the simulated past of the target shard.
    pub fn inject(&mut self, shard: usize, at: SimTime, to: Address, msg: M) {
        let seq = CLASS_INJECT | self.inject_seq;
        debug_assert_eq!(seq & CLASS_MASK, CLASS_INJECT, "injection counter overflow");
        self.inject_seq += 1;
        self.engines[shard].inject_keyed(at, seq, to, msg);
    }

    /// Installs the same fault plan on every shard. Fault decisions hash the
    /// `(seed, channel, transmission)` triple, so they are identical at any
    /// shard count.
    pub fn set_fault_plan(&mut self, plan: FaultPlan)
    where
        M: Clone,
    {
        for engine in &mut self.engines {
            engine.set_fault_plan(plan);
        }
    }

    /// The active fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.engines.first().and_then(|e| e.fault_plan())
    }

    /// Fleet-wide injected-fault totals (channels are owned by exactly one
    /// shard, so per-shard counters are disjoint).
    pub fn fault_totals(&self) -> FaultCounters {
        let mut total = FaultCounters::default();
        for engine in &self.engines {
            total.absorb(engine.fault_totals());
        }
        total
    }

    /// Per-channel injected-fault counters over all shards, sorted by
    /// channel (each channel rolls faults on its owning shard only).
    pub fn fault_breakdown(&self) -> Vec<(ChannelId, FaultCounters)> {
        // xlint: allow(HOT001, reason = "post-run fault-report assembly, off the per-event path")
        let mut all: Vec<(ChannelId, FaultCounters)> = Vec::new();
        for engine in &self.engines {
            all.extend(engine.fault_breakdown());
        }
        all.sort_by_key(|(id, _)| *id);
        all
    }

    /// Faults injected on one channel so far.
    pub fn fault_counters(&self, channel: ChannelId) -> FaultCounters {
        let mut total = FaultCounters::default();
        for engine in &self.engines {
            total.absorb(engine.fault_counters(channel));
        }
        total
    }

    /// Total messages sent through one channel (non-zero on its owning shard
    /// only).
    pub fn channel_sent(&self, channel: ChannelId) -> u64 {
        self.engines.iter().map(|e| e.channel_sent(channel)).sum()
    }

    /// Events waiting across all shards.
    pub fn pending_events(&self) -> usize {
        self.engines.iter().map(Engine::pending_events).sum()
    }

    /// `true` when every shard's queue is empty.
    pub fn is_quiescent(&self) -> bool {
        self.engines.iter().all(Engine::is_quiescent)
    }

    /// The current simulated time: the furthest shard clock (all shards are
    /// re-synchronized to one clock at the end of every run).
    pub fn now(&self) -> SimTime {
        self.engines
            .iter()
            .map(Engine::now)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Total events processed across all shards since construction.
    pub fn total_events_processed(&self) -> u64 {
        self.engines
            .iter()
            .map(Engine::total_events_processed)
            .sum()
    }

    /// Total messages sent across all shards since construction.
    pub fn total_messages_sent(&self) -> u64 {
        self.engines.iter().map(Engine::total_messages_sent).sum()
    }

    /// Events processed per shard since construction (the load-balance
    /// diagnostic recorded in scale reports).
    pub fn shard_events(&self) -> Vec<u64> {
        self.engines
            .iter()
            .map(Engine::total_events_processed)
            .collect()
    }

    /// Runs all shards until every queue is empty or holds only events
    /// strictly after `horizon` (events at exactly `horizon` are processed,
    /// matching [`Engine::run_until`]).
    ///
    /// `worlds[k]` is shard `k`'s slice of the world; `partition` resolves
    /// message destinations and lookahead bounds. With one shard this is
    /// exactly the serial engine — no threads, no mailboxes.
    ///
    /// # Panics
    ///
    /// Panics if `worlds` and shards disagree in number, the partition
    /// reports a different shard count, or a shard worker panics.
    pub fn run<W, P>(&mut self, worlds: &mut [W], partition: &P, horizon: SimTime) -> RunReport
    where
        M: Send,
        W: World<Message = M> + Send,
        P: Partition<M> + Sync,
    {
        assert_eq!(worlds.len(), self.engines.len(), "one world per shard");
        assert_eq!(partition.shards(), self.engines.len(), "partition agrees");
        let shards = self.engines.len();
        if shards == 1 {
            return self.engines[0].run_until(&mut worlds[0], horizon);
        }
        let start_events = self.total_events_processed();
        let start_messages = self.total_messages_sent();
        let shared = Shared {
            partition,
            clocks: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            mailboxes: (0..shards)
                // xlint: allow(HOT001, reason = "per-run shared-state setup, not the per-event path")
                .map(|_| (0..shards).map(|_| Mutex::new(Vec::new())).collect())
                .collect(),
            term: Mutex::new(TermState {
                // xlint: allow(HOT001, reason = "per-run shared-state setup, not the per-event path")
                idle: vec![false; shards],
                // xlint: allow(HOT001, reason = "per-run shared-state setup, not the per-event path")
                pushed: vec![0; shards],
                // xlint: allow(HOT001, reason = "per-run shared-state setup, not the per-event path")
                drained: vec![0; shards],
            }),
            done: AtomicBool::new(false),
            horizon,
        };
        let last_event = std::thread::scope(|scope| {
            // xlint: allow(HOT001, reason = "per-run thread spawning, not the per-event path")
            let mut handles = Vec::with_capacity(shards);
            for (me, (engine, world)) in self.engines.iter_mut().zip(worlds.iter_mut()).enumerate()
            {
                let shared = &shared;
                handles.push(scope.spawn(move || worker(me, engine, world, shared)));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .max()
                .unwrap_or(SimTime::ZERO)
        });
        // Re-synchronize the shard clocks: while waiting for termination a
        // shard's clock creeps past the last event (null-message exchange),
        // and the serial engine's contract is `now == last event time` after
        // a quiescent run and `now == horizon` after a bounded one.
        let quiescent = self.is_quiescent();
        let end = if quiescent { last_event } else { horizon };
        for engine in &mut self.engines {
            engine.set_clock(end);
        }
        RunReport {
            events_processed: self.total_events_processed() - start_events,
            messages_sent: self.total_messages_sent() - start_messages,
            quiescent_at: last_event,
            quiescent,
        }
    }
}

/// One shard's event loop: drain, run to the safe horizon, flush, publish,
/// repeat until global termination.
fn worker<M, W, P>(
    me: usize,
    engine: &mut Engine<M>,
    world: &mut W,
    shared: &Shared<'_, M, P>,
) -> SimTime
where
    M: Send,
    W: World<Message = M>,
    P: Partition<M>,
{
    let shards = shared.clocks.len();
    // Lookahead into this shard from each peer; `None` peers can never send
    // here directly and so never constrain the horizon.
    let inbound: Vec<Option<u64>> = (0..shards)
        .map(|p| {
            if p == me {
                None
            } else {
                shared.partition.lookahead_ns(p, me)
            }
        })
        .collect();
    let mut route = ShardRouter {
        me,
        partition: shared.partition,
        // xlint: allow(HOT001, reason = "per-run worker setup; the buffers are reused across events")
        outbound: (0..shards).map(|_| Vec::new()).collect(),
    };
    let mut pushed_total = 0u64;
    let mut drained_total = 0u64;
    let mut last_event = engine.now();
    // The last ledger entry written, to skip the mutex while nothing changed.
    let mut claimed: Option<(u64, u64)> = None;
    // Whether our idle claim currently stands in the ledger. Local mirror of
    // `term.idle[me]` (we are its only writer), so the busy path skips the
    // termination mutex when there is nothing to retract.
    let mut idle_standing = false;
    loop {
        if shared.done.load(Ordering::SeqCst) {
            break;
        }
        // 1. Read peer clocks *before* draining: every message sent before a
        //    clock value was published is visible to the drain below, so the
        //    bound derived from these reads covers everything still in
        //    flight afterwards.
        let mut safe = u64::MAX;
        for (p, lookahead) in inbound.iter().enumerate() {
            if let Some(l) = lookahead {
                let c = shared.clocks[p].load(Ordering::SeqCst);
                safe = safe.min(c.saturating_add((*l).max(1)));
            }
        }
        // 2. Drain inbound mailboxes into the local calendar. (No worker
        //    ever holds a mailbox guard while taking the termination mutex,
        //    so the done check below — which locks mailboxes *while* holding
        //    the termination mutex — cannot deadlock.)
        let mut drained_now = 0u64;
        for (p, boxes) in shared.mailboxes[me].iter().enumerate() {
            if p == me {
                continue;
            }
            let mut mailbox = boxes.lock().expect("mailbox lock poisoned");
            drained_now += mailbox.len() as u64;
            for r in mailbox.drain(..) {
                engine.enqueue_remote(r.at, r.key, r.to, r.msg);
            }
        }
        if drained_now > 0 {
            drained_total += drained_now;
            if idle_standing {
                // The shard is active again: retract the standing idle claim
                // *before* processing the new events. Without this, the stale
                // ledger entry (missing both this drain and the pushes the new
                // events are about to fan out) could balance the fleet-wide
                // sums and declare the run over with a message still in flight.
                let mut term = shared.term.lock().expect("termination lock poisoned");
                term.idle[me] = false;
                idle_standing = false;
            }
        }
        // 3. Run the serial hot path up to the safe horizon (exclusive: we
        //    may process events strictly below `safe`, and `run_until` is
        //    inclusive, hence `safe - 1`).
        let run_to = SimTime::from_nanos(safe.saturating_sub(1).min(shared.horizon.as_nanos()));
        let head = engine.next_event_time();
        let mut processed_now = 0u64;
        if head.is_some_and(|h| h <= run_to) {
            let report = engine.run_until_routed(world, run_to, &mut route);
            processed_now = report.events_processed;
            if report.events_processed > 0 {
                last_event = last_event.max(report.quiescent_at);
            }
        }
        // 4. Flush outbound sends *before* publishing the new clock, so any
        //    reader observing the clock also finds the messages.
        for (p, out) in route.outbound.iter_mut().enumerate() {
            if out.is_empty() {
                continue;
            }
            pushed_total += out.len() as u64;
            let mut mailbox = shared.mailboxes[p][me]
                .lock()
                .expect("mailbox lock poisoned");
            mailbox.append(out);
        }
        // 5. Publish this shard's lower bound: nothing will ever again be
        //    sent from here arriving before `min(local head, safe)` plus the
        //    outgoing lookahead. Monotone by construction; single writer.
        let head_ns = engine.next_event_time().map_or(u64::MAX, |t| t.as_nanos());
        let clock = head_ns.min(safe);
        debug_assert!(
            clock >= shared.clocks[me].load(Ordering::SeqCst),
            "shard clocks must be monotone"
        );
        shared.clocks[me].store(clock, Ordering::SeqCst);
        // 6. Termination: claim idleness (with message totals) when nothing
        //    at or below the horizon remains; the last claimer whose totals
        //    balance the fleet declares the run over.
        let idle = engine
            .next_event_time()
            .map_or(true, |t| t > shared.horizon);
        if idle && claimed != Some((pushed_total, drained_total)) {
            // The totals are monotone, so any drain since the last claim
            // (which retracted the idle bit above) re-enters here and
            // re-claims with current numbers — a retracted bit can never
            // get stuck clear.
            claimed = Some((pushed_total, drained_total));
            idle_standing = true;
            let mut term = shared.term.lock().expect("termination lock poisoned");
            term.idle[me] = true;
            term.pushed[me] = pushed_total;
            term.drained[me] = drained_total;
            if term.idle.iter().all(|&b| b)
                && term.pushed.iter().sum::<u64>() == term.drained.iter().sum::<u64>()
                // Belt and braces behind the accounting argument: an empty
                // fleet of mailboxes is cheap to confirm here (the sums
                // balance at most once per claim) and makes "done with a
                // message in flight" structurally impossible.
                && shared
                    .mailboxes
                    .iter()
                    .flatten()
                    .all(|m| m.lock().expect("mailbox lock poisoned").is_empty())
            {
                shared.done.store(true, Ordering::SeqCst);
                break;
            }
        }
        // A pass that moved nothing — idle, or blocked on a peer's clock
        // below our head — would otherwise spin on the atomics at full
        // speed and starve co-scheduled shards when shards exceed cores.
        if drained_now == 0 && processed_now == 0 {
            std::thread::yield_now();
        }
    }
    last_event
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelSpec;
    use crate::engine::Context;
    use bneck_net::Delay;

    /// A ring of `n` addresses: address `a` relays a decrementing token to
    /// `(a + 1) % n` over channel `a`. Sharded runs place address `a` on
    /// shard `a % shards`, so every hop crosses shards when `shards > 1`.
    struct Ring {
        n: u32,
        channels: Vec<ChannelId>,
        log: Vec<(u64, u32, u32)>,
    }

    impl World for Ring {
        type Message = u32;
        fn handle(&mut self, ctx: &mut Context<'_, u32>, to: Address, msg: u32) {
            self.log.push((ctx.now().as_nanos(), to.0, msg));
            if msg > 0 {
                let next = (to.0 + 1) % self.n;
                ctx.send(self.channels[to.index()], Address(next), msg - 1);
            }
        }
    }

    struct RingPartition {
        shards: usize,
        n: u32,
        /// flight (ns) of channel `a`, whose sender is address `a`.
        flights: Vec<u64>,
    }

    impl Partition<u32> for RingPartition {
        fn shards(&self) -> usize {
            self.shards
        }
        fn shard_of(&self, to: Address, _msg: &u32) -> usize {
            to.index() % self.shards
        }
        fn lookahead_ns(&self, from: usize, to: usize) -> Option<u64> {
            (0..self.n as usize)
                .filter(|&a| {
                    a % self.shards == from && (a + 1) % self.n as usize % self.shards == to
                })
                .map(|a| self.flights[a])
                .min()
        }
    }

    /// Registers the ring's channels (same order on every engine given).
    fn ring_channels(engine: &mut Engine<u32>, n: u32) -> Vec<ChannelId> {
        (0..n)
            .map(|a| {
                // Varied rates and delays so flights differ per hop.
                let spec = ChannelSpec::new(
                    1e9,
                    Delay::from_micros(5 + u64::from(a % 3) * 7),
                    1000 + u64::from(a % 2) * 500,
                );
                engine.add_channel(spec)
            })
            .collect()
    }

    fn serial_run(
        n: u32,
        token: u32,
        plan: Option<FaultPlan>,
    ) -> (Vec<(u64, u32, u32)>, RunReport) {
        let mut engine = Engine::new();
        let channels = ring_channels(&mut engine, n);
        if let Some(plan) = plan {
            engine.set_fault_plan(plan);
        }
        let mut world = Ring {
            n,
            channels,
            log: Vec::new(),
        };
        engine.inject(SimTime::ZERO, Address(0), token);
        engine.inject(SimTime::from_micros(3), Address(2), token / 2);
        let report = engine.run(&mut world);
        (world.log, report)
    }

    fn sharded_run(
        n: u32,
        token: u32,
        shards: usize,
        plan: Option<FaultPlan>,
    ) -> (Vec<(u64, u32, u32)>, RunReport) {
        let mut engine = ShardedEngine::new(shards);
        let mut worlds: Vec<Ring> = (0..shards)
            .map(|k| {
                let channels = ring_channels(engine.shard_mut(k), n);
                Ring {
                    n,
                    channels,
                    log: Vec::new(),
                }
            })
            .collect();
        if let Some(plan) = plan {
            engine.set_fault_plan(plan);
        }
        let flights = (0..n)
            .map(|a| {
                let spec = ChannelSpec::new(
                    1e9,
                    Delay::from_micros(5 + u64::from(a % 3) * 7),
                    1000 + u64::from(a % 2) * 500,
                );
                spec.transmission_delay().as_nanos() + spec.propagation.as_nanos()
            })
            .collect();
        let partition = RingPartition { shards, n, flights };
        engine.inject(0, SimTime::ZERO, Address(0), token);
        engine.inject(2 % shards, SimTime::from_micros(3), Address(2), token / 2);
        let report = engine.run(&mut worlds, &partition, SimTime::MAX);
        let mut merged: Vec<(u64, u32, u32)> = Vec::new();
        for w in worlds {
            merged.extend(w.log);
        }
        merged.sort_unstable();
        (merged, report)
    }

    #[test]
    fn sharded_runs_match_serial_at_every_shard_count() {
        let (mut serial_log, serial_report) = serial_run(6, 40, None);
        serial_log.sort_unstable();
        for shards in [1usize, 2, 3, 6] {
            let (log, report) = sharded_run(6, 40, shards, None);
            assert_eq!(log, serial_log, "{shards} shards diverged");
            assert_eq!(report.events_processed, serial_report.events_processed);
            assert_eq!(report.messages_sent, serial_report.messages_sent);
            assert_eq!(report.quiescent_at, serial_report.quiescent_at);
            assert!(report.quiescent);
        }
    }

    #[test]
    fn per_address_delivery_order_is_exactly_serial() {
        let (serial_log, _) = serial_run(6, 40, None);
        let (merged, _) = sharded_run(6, 40, 3, None);
        for addr in 0..6u32 {
            let s: Vec<_> = serial_log.iter().filter(|e| e.1 == addr).collect();
            let p: Vec<_> = merged.iter().filter(|e| e.1 == addr).collect();
            assert_eq!(s, p, "address {addr} saw a different history");
        }
    }

    #[test]
    fn faulted_sharded_runs_match_serial() {
        let plan = FaultPlan::new(42, 0.1, 0.05, 0.2, 2);
        let (mut serial_log, serial_report) = serial_run(6, 60, Some(plan));
        serial_log.sort_unstable();
        for shards in [2usize, 3] {
            let (log, report) = sharded_run(6, 60, shards, Some(plan));
            assert_eq!(log, serial_log, "{shards} shards diverged under faults");
            assert_eq!(report.messages_sent, serial_report.messages_sent);
        }
    }

    /// A fan-out mesh: address `a` relays a decrementing token to *two*
    /// successors over dedicated channels, so one drained event pushes more
    /// cross-shard messages than it consumed. This is the load pattern that
    /// could trick the termination ledger through a stale idle entry —
    /// fan-out 1 (the ring) can never make pushes outrun drains between
    /// claims, so these runs are the regression guard for early termination.
    struct Fanout {
        n: u32,
        /// `channels[2a]` targets `a+1`, `channels[2a+1]` targets `a+2`.
        channels: Vec<ChannelId>,
        log: Vec<(u64, u32, u32)>,
    }

    impl World for Fanout {
        type Message = u32;
        fn handle(&mut self, ctx: &mut Context<'_, u32>, to: Address, msg: u32) {
            self.log.push((ctx.now().as_nanos(), to.0, msg));
            if msg > 0 {
                let a = to.0;
                let near = self.channels[2 * a as usize];
                let far = self.channels[2 * a as usize + 1];
                ctx.send(near, Address((a + 1) % self.n), msg - 1);
                ctx.send(far, Address((a + 2) % self.n), msg - 1);
            }
        }
    }

    fn fanout_spec(i: u32) -> ChannelSpec {
        ChannelSpec::new(
            1e9,
            Delay::from_micros(4 + u64::from(i % 5) * 3),
            800 + u64::from(i % 3) * 400,
        )
    }

    fn fanout_channels(engine: &mut Engine<u32>, n: u32) -> Vec<ChannelId> {
        (0..2 * n)
            .map(|i| engine.add_channel(fanout_spec(i)))
            .collect()
    }

    struct FanoutPartition {
        shards: usize,
        n: u32,
        flights: Vec<u64>,
    }

    impl Partition<u32> for FanoutPartition {
        fn shards(&self) -> usize {
            self.shards
        }
        fn shard_of(&self, to: Address, _msg: &u32) -> usize {
            to.index() % self.shards
        }
        fn lookahead_ns(&self, from: usize, to: usize) -> Option<u64> {
            let n = self.n as usize;
            (0..n)
                .flat_map(|a| [(2 * a, a, (a + 1) % n), (2 * a + 1, a, (a + 2) % n)])
                .filter(|&(_, src, dst)| src % self.shards == from && dst % self.shards == to)
                .map(|(c, _, _)| self.flights[c])
                .min()
        }
    }

    fn fanout_serial(n: u32, token: u32) -> (Vec<(u64, u32, u32)>, RunReport) {
        let mut engine = Engine::new();
        let channels = fanout_channels(&mut engine, n);
        let mut world = Fanout {
            n,
            channels,
            log: Vec::new(),
        };
        engine.inject(SimTime::ZERO, Address(0), token);
        let report = engine.run(&mut world);
        (world.log, report)
    }

    fn fanout_sharded(n: u32, token: u32, shards: usize) -> (Vec<(u64, u32, u32)>, RunReport) {
        let mut engine = ShardedEngine::new(shards);
        let mut worlds: Vec<Fanout> = (0..shards)
            .map(|k| {
                let channels = fanout_channels(engine.shard_mut(k), n);
                Fanout {
                    n,
                    channels,
                    log: Vec::new(),
                }
            })
            .collect();
        let flights = (0..2 * n)
            .map(|i| {
                let spec = fanout_spec(i);
                spec.transmission_delay().as_nanos() + spec.propagation.as_nanos()
            })
            .collect();
        let partition = FanoutPartition { shards, n, flights };
        engine.inject(0, SimTime::ZERO, Address(0), token);
        let report = engine.run(&mut worlds, &partition, SimTime::MAX);
        let mut merged: Vec<(u64, u32, u32)> = Vec::new();
        for w in worlds {
            merged.extend(w.log);
        }
        merged.sort_unstable();
        (merged, report)
    }

    #[test]
    fn fanout_runs_lose_no_event_and_match_serial() {
        let (mut serial_log, serial_report) = fanout_serial(6, 9);
        serial_log.sort_unstable();
        // 2^10 - 1 deliveries: every level of the fan-out tree doubles.
        assert_eq!(serial_log.len(), (1 << 10) - 1);
        // Repeat the racy shard counts: a lost in-flight message (early
        // termination) would surface as a shorter merged log.
        for round in 0..10 {
            for shards in [2usize, 3, 6] {
                let (log, report) = fanout_sharded(6, 9, shards);
                assert_eq!(log, serial_log, "{shards} shards diverged (round {round})");
                assert_eq!(report.events_processed, serial_report.events_processed);
                assert_eq!(report.messages_sent, serial_report.messages_sent);
                assert!(report.quiescent);
            }
        }
    }

    #[test]
    fn horizon_bounded_runs_stop_and_resume() {
        let shards = 3;
        let (serial_log, _) = serial_run(6, 40, None);
        let mut engine = ShardedEngine::new(shards);
        let mut worlds: Vec<Ring> = (0..shards)
            .map(|k| {
                let channels = ring_channels(engine.shard_mut(k), 6);
                Ring {
                    n: 6,
                    channels,
                    log: Vec::new(),
                }
            })
            .collect();
        let flights = (0..6u32)
            .map(|a| {
                let spec = ChannelSpec::new(
                    1e9,
                    Delay::from_micros(5 + u64::from(a % 3) * 7),
                    1000 + u64::from(a % 2) * 500,
                );
                spec.transmission_delay().as_nanos() + spec.propagation.as_nanos()
            })
            .collect();
        let partition = RingPartition {
            shards,
            n: 6,
            flights,
        };
        engine.inject(0, SimTime::ZERO, Address(0), 40);
        engine.inject(2 % shards, SimTime::from_micros(3), Address(2), 20);
        let first = engine.run(&mut worlds, &partition, SimTime::from_micros(150));
        assert!(!first.quiescent);
        assert_eq!(engine.now(), SimTime::from_micros(150));
        let second = engine.run(&mut worlds, &partition, SimTime::MAX);
        assert!(second.quiescent);
        assert_eq!(
            first.events_processed + second.events_processed,
            serial_log.len() as u64,
            "split runs process the same events as one run"
        );
        let mut merged: Vec<(u64, u32, u32)> = Vec::new();
        for w in worlds {
            merged.extend(w.log);
        }
        merged.sort_unstable();
        let mut serial_sorted = serial_log;
        serial_sorted.sort_unstable();
        assert_eq!(merged, serial_sorted);
    }
}
