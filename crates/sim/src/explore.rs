//! Systematic exploration of same-instant event orderings.
//!
//! The engine's calendar queue is deterministic: events carrying the same
//! timestamp are delivered FIFO in scheduling order. That is *one* of the
//! orderings a real distributed system could exhibit — messages that arrive
//! at the same instant at different tasks have no causal order, so a correct
//! protocol must produce the same outcome under every permutation of each
//! same-instant group. The explorer enumerates those permutations with a
//! bounded depth-first search, in the spirit of systematic concurrency
//! model checking: each *schedule* is one complete run of the simulation in
//! which every same-instant group was delivered in a prescribed order.
//!
//! Exploration is stateless re-execution: the driver rebuilds the simulation
//! from scratch for every schedule and steps it with
//! [`Engine::step_explored`](crate::Engine::step_explored), which consults a
//! [`ScheduleCursor`]. The cursor replays a prescribed prefix of choices and
//! extends it canonically (choice 0 = the engine's native FIFO order); after
//! the run, [`ScheduleCursor::next_schedule`] advances to the
//! lexicographically next unexplored schedule, exactly like incrementing a
//! mixed-radix counter whose digit arities were recorded during the run.
//!
//! ```
//! use bneck_sim::prelude::*;
//! use bneck_sim::explore::{explore_schedules, ScheduleCursor};
//!
//! struct Last(u32);
//! impl World for Last {
//!     type Message = u32;
//!     fn handle(&mut self, _ctx: &mut Context<'_, u32>, _to: Address, msg: u32) {
//!         self.0 = msg;
//!     }
//! }
//!
//! let stats = explore_schedules(100, |cursor| {
//!     let mut engine = Engine::new();
//!     let mut world = Last(0);
//!     for i in 0..3 {
//!         engine.inject(SimTime::from_micros(1), Address(0), i);
//!     }
//!     while engine.step_explored(&mut world, cursor) {}
//! });
//! assert!(stats.exhausted);
//! assert_eq!(stats.schedules, 6); // 3! orderings of one 3-event group
//! ```

/// Summary of one [`explore_schedules`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Complete schedules executed.
    pub schedules: u64,
    /// `true` when every schedule within the choice space was executed;
    /// `false` when the budget ran out first.
    pub exhausted: bool,
    /// The largest number of non-trivial choice points seen in one schedule.
    pub max_choice_points: usize,
}

/// The per-schedule choice oracle handed to
/// [`Engine::step_explored`](crate::Engine::step_explored).
///
/// During a run it answers "which of the `arity` same-instant events goes
/// first?" by replaying a prescribed prefix and defaulting to 0 (the native
/// FIFO order) beyond it, while recording the arity of every non-trivial
/// choice point it passes.
#[derive(Debug, Default)]
pub struct ScheduleCursor {
    /// The choice to make at each recorded choice point of this schedule.
    prescribed: Vec<usize>,
    /// The arity observed at each choice point (recorded on first visit,
    /// checked on replay — a mismatch means the world is not deterministic).
    arities: Vec<usize>,
    /// The next choice point index within the current run.
    depth: usize,
}

impl ScheduleCursor {
    /// A cursor positioned at the all-canonical (native FIFO) schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Picks which of `arity` same-instant events is delivered next.
    /// Called by the engine; `arity >= 2` (unique heads are not choices).
    pub(crate) fn choose(&mut self, arity: usize) -> usize {
        debug_assert!(arity >= 2, "a single head is not a choice point");
        let d = self.depth;
        self.depth += 1;
        if d < self.prescribed.len() {
            debug_assert_eq!(
                self.arities[d], arity,
                "replayed run diverged: the world is not deterministic"
            );
            self.prescribed[d]
        } else {
            self.prescribed.push(0);
            self.arities.push(arity);
            0
        }
    }

    /// Number of non-trivial choice points the current run has passed.
    pub fn choice_points(&self) -> usize {
        self.depth
    }

    /// Advances to the next unexplored schedule, returning `false` when the
    /// whole choice space has been covered. Must be called between runs;
    /// it also rewinds the cursor for the next run.
    pub fn next_schedule(&mut self) -> bool {
        // Truncate the recording to what the *current* run actually visited
        // (an earlier, longer run may have recorded deeper points that this
        // branch never reaches).
        self.prescribed.truncate(self.depth);
        self.arities.truncate(self.depth);
        self.depth = 0;
        // Mixed-radix increment: bump the deepest incrementable choice and
        // drop everything after it (to be re-recorded canonically).
        while let (Some(&c), Some(&a)) = (self.prescribed.last(), self.arities.last()) {
            if c + 1 < a {
                *self.prescribed.last_mut().expect("non-empty") = c + 1;
                return true;
            }
            self.prescribed.pop();
            self.arities.pop();
        }
        false
    }
}

/// Runs `run` once per schedule until the same-instant choice space is
/// exhausted or `budget` schedules have executed, whichever comes first.
///
/// `run` must rebuild its simulation from scratch and drive it to completion
/// with [`Engine::step_explored`](crate::Engine::step_explored), passing the
/// given cursor to every step; any other source of nondeterminism (wall
/// clock, global RNG) breaks the replay.
pub fn explore_schedules<F>(budget: u64, mut run: F) -> ExploreStats
where
    F: FnMut(&mut ScheduleCursor),
{
    assert!(budget > 0, "the schedule budget must be positive");
    let mut cursor = ScheduleCursor::new();
    let mut stats = ExploreStats::default();
    loop {
        run(&mut cursor);
        stats.schedules += 1;
        stats.max_choice_points = stats.max_choice_points.max(cursor.choice_points());
        if !cursor.next_schedule() {
            stats.exhausted = true;
            return stats;
        }
        if stats.schedules >= budget {
            return stats;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Address, Context, Engine, World};
    use crate::time::SimTime;
    use std::collections::BTreeSet;

    /// Logs delivery order of plain integer messages.
    struct Logger {
        log: Vec<u32>,
    }

    impl World for Logger {
        type Message = u32;
        fn handle(&mut self, _ctx: &mut Context<'_, u32>, _to: Address, msg: u32) {
            self.log.push(msg);
        }
    }

    fn run_one_group(cursor: &mut ScheduleCursor, group: u32) -> Vec<u32> {
        let mut engine = Engine::new();
        let mut world = Logger { log: Vec::new() };
        for i in 0..group {
            engine.inject(SimTime::from_micros(1), Address(i), i);
        }
        while engine.step_explored(&mut world, cursor) {}
        world.log
    }

    #[test]
    fn explores_every_permutation_of_one_group() {
        for n in 1..=4u32 {
            let mut seen = BTreeSet::new();
            let stats = explore_schedules(1_000, |cursor| {
                seen.insert(run_one_group(cursor, n));
            });
            let fact: u64 = (1..=n as u64).product();
            assert!(stats.exhausted);
            assert_eq!(stats.schedules, fact, "{n} events explore {n}!");
            assert_eq!(seen.len() as u64, fact, "every permutation is distinct");
        }
    }

    #[test]
    fn first_schedule_is_the_native_fifo_order() {
        let mut first = None;
        explore_schedules(1, |cursor| {
            first = Some(run_one_group(cursor, 3));
        });
        assert_eq!(first.unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn budget_caps_the_search() {
        let stats = explore_schedules(3, |cursor| {
            run_one_group(cursor, 4);
        });
        assert_eq!(stats.schedules, 3);
        assert!(!stats.exhausted);
    }

    #[test]
    fn multiple_groups_multiply() {
        // Two independent same-instant groups of 2 and 3 events → 2! * 3!.
        let mut seen = BTreeSet::new();
        let stats = explore_schedules(1_000, |cursor| {
            let mut engine = Engine::new();
            let mut world = Logger { log: Vec::new() };
            for i in 0..2 {
                engine.inject(SimTime::from_micros(1), Address(i), i);
            }
            for i in 0..3 {
                engine.inject(SimTime::from_micros(2), Address(i), 10 + i);
            }
            while engine.step_explored(&mut world, cursor) {}
            seen.insert(world.log);
        });
        assert!(stats.exhausted);
        assert_eq!(stats.schedules, 12);
        assert_eq!(seen.len(), 12);
        assert_eq!(stats.max_choice_points, 2 + 1, "2-group + 3-group choices");
    }

    #[test]
    fn cascades_created_by_handlers_are_explored_too() {
        // Each delivered message fans out two same-instant follow-ups; the
        // explorer must treat the growing group as new choice points.
        struct Fanout {
            log: Vec<u32>,
        }
        impl World for Fanout {
            type Message = u32;
            fn handle(&mut self, ctx: &mut Context<'_, u32>, _to: Address, msg: u32) {
                self.log.push(msg);
                if msg < 2 {
                    ctx.deliver_now(Address(0), msg * 10 + 11);
                    ctx.deliver_now(Address(1), msg * 10 + 12);
                }
            }
        }
        let mut seen = BTreeSet::new();
        let stats = explore_schedules(10_000, |cursor| {
            let mut engine = Engine::new();
            let mut world = Fanout { log: Vec::new() };
            engine.inject(SimTime::ZERO, Address(0), 0);
            engine.inject(SimTime::ZERO, Address(1), 1);
            while engine.step_explored(&mut world, cursor) {}
            assert_eq!(world.log.len(), 6, "every schedule delivers all events");
            seen.insert(world.log);
        });
        assert!(stats.exhausted);
        assert!(stats.schedules > 2, "cascade orderings multiply schedules");
        assert_eq!(stats.schedules, seen.len() as u64);
    }
}
