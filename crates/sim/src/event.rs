//! The time-ordered event queue: a calendar queue (bucket ring) with a
//! same-instant FIFO fast path and a far-future overflow heap.

use crate::engine::Address;
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// One scheduled delivery.
#[derive(Debug, Clone)]
pub(crate) struct Event<M> {
    pub(crate) at: SimTime,
    /// Canonical tie-break among equal timestamps: a partition-independent
    /// sequence word whose top two bits carry the event class (see the
    /// `CLASS_*` constants). Channel deliveries are keyed by
    /// `(channel, transmission)` — a property of the send itself, not of
    /// which queue it was pushed through — so the same workload produces the
    /// same global order whether one engine or many shards run it.
    pub(crate) seq: u64,
    pub(crate) to: Address,
    pub(crate) msg: M,
}

/// Mask of the class bits in a sequence word.
pub(crate) const CLASS_MASK: u64 = 0b11 << 62;
/// Externally injected events (workload API calls), numbered by one
/// injection counter in submission order.
pub(crate) const CLASS_INJECT: u64 = 0b00 << 62;
/// Timer events scheduled at a future instant.
pub(crate) const CLASS_TIMER: u64 = 0b01 << 62;
/// Channel deliveries, keyed by `(channel, transmission number)`.
pub(crate) const CLASS_CHANNEL: u64 = 0b10 << 62;
/// Events scheduled *at the current instant* (`deliver_now` and zero-delay
/// timers). This is the top class so that such events sort after everything
/// already scheduled for the instant, which is the documented `deliver_now`
/// contract.
pub(crate) const CLASS_NOW: u64 = 0b11 << 62;

/// The canonical sequence word of a channel delivery: the channel identifier
/// in bits 32..62 and the 1-based transmission number in the low 32 bits.
/// Both are properties of the simulated network, so the key is identical at
/// any shard count.
///
/// The transmission-number bound is a hard assert even in release builds: a
/// channel past 2^32 sends would silently alias sequence words (fault rolls
/// use the full counter but ordering keys would not), corrupting same-instant
/// order with no diagnostic. The channel-id bound stays a debug assert — it
/// is enforced once at registration by `Engine::add_channel`.
pub(crate) fn channel_seq(channel: u32, sent: u64) -> u64 {
    debug_assert!(u64::from(channel) < (1 << 30), "channel id fits the key");
    assert!(
        sent <= u64::from(u32::MAX),
        "per-channel transmission numbers overflow the 32-bit sequence-key field"
    );
    CLASS_CHANNEL | (u64::from(channel) << 32) | sent
}

impl<M> Event<M> {
    fn key(&self) -> u128 {
        key(self.at, self.seq)
    }
}

/// `(at, seq)` packed into one integer: the timestamp in the high 64 bits,
/// the sequence number in the low 64 bits, so a single `u128` comparison
/// orders events globally.
fn key(at: SimTime, seq: u64) -> u128 {
    ((at.as_nanos() as u128) << 64) | seq as u128
}

/// Which tier of the queue holds the head event (see [`EventQueue::head`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HeadSource {
    /// Front of the same-instant FIFO bucket.
    Fifo,
    /// Back of the sorted cursor bucket of the calendar ring.
    Ring,
    /// Head of the far-future overflow heap (only while the ring is empty).
    Far,
}

impl HeadSource {
    fn calendar(in_ring: bool) -> Self {
        if in_ring {
            HeadSource::Ring
        } else {
            HeadSource::Far
        }
    }
}

/// log2 of the bucket width in nanoseconds (512 ns buckets).
const BUCKET_BITS: u32 = 9;
/// log2 of the ring length (8192 buckets → a ~4.2 ms horizon).
const RING_BITS: u32 = 13;
const RING_LEN: usize = 1 << RING_BITS;

/// A deterministic min-priority queue of events.
///
/// Three tiers, always popped in globally increasing `(at, seq)` order:
///
/// * a FIFO bucket for events scheduled at the *current* instant (the
///   dominant pattern of same-timestamp handler cascades) — O(1);
/// * a calendar ring of 512 ns buckets covering the next ~4 ms of simulated
///   time — O(1) push, amortized O(1) pop. Each bucket is sorted (descending,
///   so the minimum pops from the back) when the clock reaches it; network
///   delays exceed the bucket width, so events essentially never land in the
///   bucket being drained. An occupancy bitmap finds the next non-empty
///   bucket without walking empty ones one by one;
/// * a binary heap over packed `(at, seq)` keys for events beyond the ring
///   horizon (WAN-scale timers and widely spaced workload phases). Before
///   every calendar pop the overflow head is compared against the ring head
///   and migrated into the ring when it is due first, so cross-tier order is
///   exact.
///
/// This is the classic calendar-queue design of packet-level simulators; the
/// binary heap it replaces cost `O(log n)` sifts of event-sized elements on
/// every send and delivery, which dominated the per-event budget of the
/// protocol experiments.
#[derive(Debug)]
pub(crate) struct EventQueue<M> {
    /// Calendar ring; bucket `b` holds events with
    /// `(at >> BUCKET_BITS) % RING_LEN == b` within the current span,
    /// sorted descending by key once the cursor reaches the bucket.
    ring: Box<[Vec<Event<M>>]>,
    /// Occupancy bitmap over `ring` (one bit per bucket).
    occupied: [u64; RING_LEN / 64],
    /// Number of events currently stored in the ring.
    ring_len: usize,
    /// Bucket number (unwrapped: `at >> BUCKET_BITS`) the drain cursor is at.
    /// All ring/overflow events live at buckets `>= cursor`.
    cursor: u64,
    /// Whether `ring[cursor % RING_LEN]` is currently sorted (descending).
    cursor_sorted: bool,
    /// Events beyond the ring horizon, as packed keys over a payload slab.
    overflow: BinaryHeap<Reverse<(u128, u32)>>,
    /// Payload slab for `overflow`; `None` marks a vacant slot.
    slab: Vec<Option<(Address, M)>>,
    /// Vacant slab slots.
    free: Vec<u32>,
    /// Memoized result of [`EventQueue::head`]: `Some(answer)` while no
    /// mutation happened since it was computed, `None` when it must be
    /// recomputed. The engine locates the head up to three times per
    /// delivery (pop, batch probe, prefetch peek); the memo makes every
    /// repeat after the last mutation free.
    head_cache: Option<Option<(u128, HeadSource)>>,
    /// FIFO bucket of events at `now_time`.
    now: VecDeque<Event<M>>,
    /// The current instant: timestamp of the last event popped from the
    /// calendar (`SimTime::ZERO` before the first pop, matching the engine's
    /// clock).
    now_time: SimTime,
    /// Counter behind [`CLASS_INJECT`] sequence words.
    inject_seq: u64,
    /// Counter behind [`CLASS_TIMER`] sequence words.
    timer_seq: u64,
    /// Counter behind [`CLASS_NOW`] sequence words.
    now_seq: u64,
    len: usize,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        // xlint: allow(HOT001, reason = "calendar-ring construction, once per queue lifetime")
        let mut ring = Vec::with_capacity(RING_LEN);
        // xlint: allow(HOT001, reason = "calendar-ring construction, once per queue lifetime")
        ring.resize_with(RING_LEN, Vec::new);
        EventQueue {
            ring: ring.into_boxed_slice(),
            occupied: [0; RING_LEN / 64],
            ring_len: 0,
            cursor: 0,
            cursor_sorted: true,
            overflow: BinaryHeap::new(),
            // xlint: allow(HOT001, reason = "queue construction, once per queue lifetime")
            slab: Vec::new(),
            // xlint: allow(HOT001, reason = "queue construction, once per queue lifetime")
            free: Vec::new(),
            head_cache: None,
            now: VecDeque::new(),
            now_time: SimTime::ZERO,
            inject_seq: 0,
            timer_seq: 0,
            now_seq: 0,
            len: 0,
        }
    }
}

impl<M> EventQueue<M> {
    /// Schedules an externally injected event (workload API calls); the
    /// per-queue injection counter numbers them in submission order.
    pub(crate) fn push_injected(&mut self, at: SimTime, to: Address, msg: M) {
        let seq = CLASS_INJECT | self.inject_seq;
        self.inject_seq += 1;
        self.push_with(at, seq, to, msg);
    }

    /// Schedules an injected event carrying a caller-assigned sequence word
    /// (the sharded engine numbers injections with one *global* counter so
    /// every shard count sees the same canonical order).
    pub(crate) fn push_injected_keyed(&mut self, at: SimTime, seq: u64, to: Address, msg: M) {
        debug_assert_eq!(seq & CLASS_MASK, CLASS_INJECT);
        self.push_with(at, seq, to, msg);
    }

    /// Schedules a timer. A zero-delay timer lands at the current instant and
    /// takes a [`CLASS_NOW`] word (it must sort after everything already
    /// scheduled for the instant, like any other same-instant push).
    pub(crate) fn push_timer(&mut self, at: SimTime, to: Address, msg: M) {
        let seq = if at == self.now_time {
            let s = CLASS_NOW | self.now_seq;
            self.now_seq += 1;
            s
        } else {
            let s = CLASS_TIMER | self.timer_seq;
            self.timer_seq += 1;
            s
        };
        self.push_with(at, seq, to, msg);
    }

    /// Schedules a delivery at the current instant, after all events already
    /// scheduled for it.
    pub(crate) fn push_now(&mut self, to: Address, msg: M) {
        let seq = CLASS_NOW | self.now_seq;
        self.now_seq += 1;
        self.push_with(self.now_time, seq, to, msg);
    }

    /// Schedules a channel delivery under its canonical
    /// `(channel, transmission)` sequence word — computed by the sender,
    /// possibly on another shard.
    pub(crate) fn push_channel(&mut self, at: SimTime, seq: u64, to: Address, msg: M) {
        debug_assert_eq!(seq & CLASS_MASK, CLASS_CHANNEL);
        debug_assert!(at > self.now_time, "channel flight times are positive");
        self.push_with(at, seq, to, msg);
    }

    fn push_with(&mut self, at: SimTime, seq: u64, to: Address, msg: M) {
        // A push can only change the head when it lands *before* it; handler
        // sends — future deliveries behind the imminent next event — leave
        // the memo valid, so steady state recomputes the head once per pop.
        match self.head_cache {
            Some(Some((k, _))) if key(at, seq) >= k => {}
            _ => self.head_cache = None,
        }
        self.len += 1;
        // The engine never schedules into the simulated past, so `at` is
        // either exactly the current instant (fast path) or in the future.
        // FIFO order is positional, which equals key order: same-instant
        // pushes carry ascending counter words of one class per run phase
        // (injections before a run, `CLASS_NOW` words during it).
        if at == self.now_time {
            self.now.push_back(Event { at, seq, to, msg });
            return;
        }
        debug_assert!(
            at > self.now_time,
            "events must not be scheduled in the past"
        );
        // The ring window is anchored at the current instant: every ring
        // event lives in [floor(now), floor(now) + RING_LEN) buckets, so two
        // ring events can never collide modulo the ring length.
        let bucket = at.as_nanos() >> BUCKET_BITS;
        if bucket >= (self.now_time.as_nanos() >> BUCKET_BITS) + RING_LEN as u64 {
            // Beyond the ring horizon: park in the overflow heap.
            let idx = match self.free.pop() {
                Some(idx) => {
                    self.slab[idx as usize] = Some((to, msg));
                    idx
                }
                None => {
                    self.slab.push(Some((to, msg)));
                    (self.slab.len() - 1) as u32
                }
            };
            self.overflow.push(Reverse((key(at, seq), idx)));
            return;
        }
        self.ring_insert(bucket, Event { at, seq, to, msg });
    }

    /// Inserts an event into its ring bucket, preserving the sortedness of
    /// the bucket currently being drained. The drain cursor moves *back* when
    /// the event lands before it (possible because the cursor may have
    /// skipped ahead over empty buckets while the clock — and thus new
    /// pushes — trails behind at the FIFO bucket's instant).
    fn ring_insert(&mut self, bucket: u64, event: Event<M>) {
        debug_assert!({
            let floor = self.now_time.as_nanos() >> BUCKET_BITS;
            bucket >= floor && bucket < floor + RING_LEN as u64
        });
        let slot = (bucket & (RING_LEN as u64 - 1)) as usize;
        if bucket < self.cursor {
            // Every bucket behind the cursor has been drained empty.
            debug_assert!(self.ring[slot].is_empty());
            self.cursor = bucket;
            self.cursor_sorted = true;
        }
        if bucket == self.cursor && self.cursor_sorted {
            // Insertion into the bucket currently being drained (only
            // possible for sub-bucket-width delays or overflow migration):
            // keep it sorted descending.
            let v = &mut self.ring[slot];
            let k = event.key();
            let pos = v.partition_point(|e| e.key() > k);
            v.insert(pos, event);
        } else {
            self.ring[slot].push(event);
            if bucket == self.cursor {
                self.cursor_sorted = false;
            }
        }
        self.occupied[slot / 64] |= 1 << (slot % 64);
        self.ring_len += 1;
    }

    /// Advances `cursor` to the next non-empty ring bucket (itself included).
    /// Only called while `ring_len > 0`, so a set bit always exists.
    fn advance_to_occupied(&mut self) {
        let start = (self.cursor & (RING_LEN as u64 - 1)) as usize;
        if self.occupied[start / 64] >> (start % 64) & 1 == 1 {
            return;
        }
        let words = RING_LEN / 64;
        let mut word_i = start / 64;
        // Bits strictly above `start` in its word.
        let mut word = self.occupied[word_i] & (u64::MAX << (start % 64)) & !(1 << (start % 64));
        let mut scanned = 0usize;
        loop {
            if word != 0 {
                let next_slot = word_i * 64 + word.trailing_zeros() as usize;
                let delta = (next_slot + RING_LEN - start) % RING_LEN;
                self.cursor += delta as u64;
                self.cursor_sorted = false;
                return;
            }
            word_i = (word_i + 1) % words;
            word = self.occupied[word_i];
            scanned += 1;
            debug_assert!(scanned <= words, "occupancy bitmap empty with ring_len > 0");
        }
    }

    /// Key of the next calendar event, migrating near-due overflow events
    /// into the ring. `(key, true)` means the sorted cursor bucket's back
    /// holds the event; `(key, false)` means the overflow head is next (a
    /// far-future event served straight from the heap, which only happens
    /// while the ring is empty).
    fn calendar_peek(&mut self) -> Option<(u128, bool)> {
        loop {
            let ring_head = if self.ring_len > 0 {
                self.advance_to_occupied();
                let slot = (self.cursor & (RING_LEN as u64 - 1)) as usize;
                if !self.cursor_sorted {
                    self.ring[slot].sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
                    self.cursor_sorted = true;
                }
                Some(self.ring[slot].last().expect("occupied bucket").key())
            } else {
                None
            };
            match (ring_head, self.overflow.peek()) {
                // An overflow event due before the ring head always fits the
                // ring window (its bucket is at most the ring head's).
                (Some(r), Some(&Reverse((k, _)))) if k < r => self.migrate_overflow_head(),
                (Some(r), _) => return Some((r, true)),
                (None, Some(&Reverse((k, _)))) => {
                    let bucket = ((k >> 64) as u64) >> BUCKET_BITS;
                    if bucket < (self.now_time.as_nanos() >> BUCKET_BITS) + RING_LEN as u64 {
                        self.migrate_overflow_head();
                    } else {
                        return Some((k, false));
                    }
                }
                (None, None) => return None,
            }
        }
    }

    /// Moves the overflow head into the ring (caller ensures it fits the
    /// current window).
    fn migrate_overflow_head(&mut self) {
        let Reverse((k, idx)) = self.overflow.pop().expect("caller checked the head");
        let (to, msg) = self.slab[idx as usize].take().expect("slab slot occupied");
        self.free.push(idx);
        let at_ns = (k >> 64) as u64;
        self.ring_insert(
            at_ns >> BUCKET_BITS,
            Event {
                at: SimTime::from_nanos(at_ns),
                seq: k as u64,
                to,
                msg,
            },
        );
    }

    #[cfg(test)]
    pub(crate) fn pop(&mut self) -> Option<Event<M>> {
        self.pop_at_most(SimTime::MAX)
    }

    /// Locates the globally next event: its packed `(at, seq)` key and which
    /// tier holds it. Migrates due overflow events as a side effect (via
    /// [`EventQueue::calendar_peek`]); the returned source stays valid until
    /// the next mutation.
    fn head(&mut self) -> Option<(u128, HeadSource)> {
        if let Some(cached) = self.head_cache {
            return cached;
        }
        let calendar = self.calendar_peek();
        let answer = match (self.now.front(), calendar) {
            (Some(f), None) => Some((f.key(), HeadSource::Fifo)),
            (None, Some((k, in_ring))) => Some((k, HeadSource::calendar(in_ring))),
            (Some(f), Some((k, in_ring))) => {
                let fk = f.key();
                if fk < k {
                    Some((fk, HeadSource::Fifo))
                } else {
                    Some((k, HeadSource::calendar(in_ring)))
                }
            }
            (None, None) => None,
        };
        self.head_cache = Some(answer);
        answer
    }

    /// Removes and returns the head event located by [`EventQueue::head`].
    fn take(&mut self, src: HeadSource) -> Event<M> {
        self.head_cache = None;
        self.len -= 1;
        match src {
            HeadSource::Fifo => self.now.pop_front().expect("peeked FIFO head"),
            HeadSource::Ring => {
                // The sorted cursor bucket's back holds the next event.
                let slot = (self.cursor & (RING_LEN as u64 - 1)) as usize;
                let event = self.ring[slot].pop().expect("peeked ring head");
                if self.ring[slot].is_empty() {
                    self.occupied[slot / 64] &= !(1 << (slot % 64));
                }
                self.ring_len -= 1;
                self.now_time = event.at;
                event
            }
            HeadSource::Far => {
                // Far-future overflow head with an empty ring: serve it
                // directly.
                let Reverse((k, idx)) = self.overflow.pop().expect("peeked overflow head");
                let (to, msg) = self.slab[idx as usize].take().expect("slab slot occupied");
                self.free.push(idx);
                let at = SimTime::from_nanos((k >> 64) as u64);
                self.now_time = at;
                // The cursor trails the clock so future near pushes re-anchor
                // it.
                self.cursor = at.as_nanos() >> BUCKET_BITS;
                self.cursor_sorted = true;
                Event {
                    at,
                    seq: k as u64,
                    to,
                    msg,
                }
            }
        }
    }

    /// Pops the next event if its timestamp is at or before `horizon`; the
    /// head is located once and taken directly.
    pub(crate) fn pop_at_most(&mut self, horizon: SimTime) -> Option<Event<M>> {
        let (head_key, src) = self.head()?;
        if (head_key >> 64) as u64 > horizon.as_nanos() {
            return None;
        }
        Some(self.take(src))
    }

    /// Pops the next event only when it is scheduled at exactly `at` (the
    /// current instant) *and* its message satisfies `matches` — the engine's
    /// same-destination batch collector. One head location serves both the
    /// peek and the take, so a declined event costs one key comparison.
    pub(crate) fn pop_if_at(
        &mut self,
        at: SimTime,
        matches: impl FnOnce(Address, &M) -> bool,
    ) -> Option<Event<M>> {
        let (head_key, src) = self.head()?;
        if (head_key >> 64) as u64 != at.as_nanos() {
            return None;
        }
        let ok = match src {
            HeadSource::Fifo => {
                let f = self.now.front().expect("peeked FIFO head");
                matches(f.to, &f.msg)
            }
            HeadSource::Ring => {
                let slot = (self.cursor & (RING_LEN as u64 - 1)) as usize;
                let e = self.ring[slot].last().expect("peeked ring head");
                matches(e.to, &e.msg)
            }
            // A far head due at the current instant would have been migrated
            // into the ring by `calendar_peek`; never batch across it.
            HeadSource::Far => false,
        };
        if ok {
            Some(self.take(src))
        } else {
            None
        }
    }

    /// Pops *every* event scheduled at the head timestamp into `buf`, in the
    /// canonical FIFO order — the whole same-instant group, across tiers.
    /// Used by the interleaving explorer: the caller delivers one member and
    /// re-pushes the rest (fresh sequence numbers preserve their relative
    /// order, and anything a handler then schedules at the same instant
    /// sorts behind them, exactly as in an unexplored run).
    pub(crate) fn drain_head_group(&mut self, buf: &mut Vec<(Address, M)>) {
        buf.clear();
        let Some((head_key, src)) = self.head() else {
            return;
        };
        let t = (head_key >> 64) as u64;
        let first = self.take(src);
        self.now_time = first.at;
        buf.push((first.to, first.msg));
        while let Some((k, src)) = self.head() {
            if (k >> 64) as u64 != t {
                break;
            }
            let e = self.take(src);
            buf.push((e.to, e.msg));
        }
    }

    /// The timestamp of the head-group events most recently drained (the
    /// queue's current instant).
    pub(crate) fn now_time(&self) -> SimTime {
        self.now_time
    }

    /// The message of the globally next event, without popping it. Used by
    /// the engine to warm the next event's destination state while the
    /// current handler runs; like every peek, it may sort the cursor bucket
    /// and migrate due overflow events as a side effect.
    pub(crate) fn peek_msg(&mut self) -> Option<&M> {
        let (_, src) = self.head()?;
        Some(match src {
            HeadSource::Fifo => &self.now.front().expect("peeked FIFO head").msg,
            HeadSource::Ring => {
                let slot = (self.cursor & (RING_LEN as u64 - 1)) as usize;
                &self.ring[slot].last().expect("peeked ring head").msg
            }
            HeadSource::Far => {
                let &Reverse((_, idx)) = self.overflow.peek().expect("peeked overflow head");
                &self.slab[idx as usize]
                    .as_ref()
                    .expect("slab slot occupied")
                    .1
            }
        })
    }

    /// The timestamp of the globally next event, without popping it. The
    /// sharded engine uses this as a shard's local lower bound when
    /// computing its safe horizon.
    pub(crate) fn peek_time(&mut self) -> Option<SimTime> {
        let calendar = self.calendar_peek();
        match (self.now.front(), calendar) {
            (Some(f), None) => Some(f.at),
            (None, Some((k, _))) => Some(SimTime::from_nanos((k >> 64) as u64)),
            (Some(f), Some((k, _))) => Some(SimTime::from_nanos((k.min(f.key()) >> 64) as u64)),
            (None, None) => None,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::default();
        q.push_timer(SimTime::from_micros(5), Address(0), "b");
        q.push_timer(SimTime::from_micros(1), Address(0), "a");
        q.push_timer(SimTime::from_micros(9), Address(0), "c");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().msg, "a");
        assert_eq!(q.pop().unwrap().msg, "b");
        assert_eq!(q.pop().unwrap().msg, "c");
        assert!(q.is_empty());
    }

    #[test]
    fn equal_timestamps_are_fifo() {
        let mut q = EventQueue::default();
        let t = SimTime::from_micros(3);
        for i in 0..10 {
            q.push_timer(t, Address(i), i);
        }
        for i in 0..10 {
            let e = q.pop().unwrap();
            assert_eq!(e.msg, i);
            assert_eq!(e.to, Address(i));
        }
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::default();
        assert_eq!(q.peek_time(), None);
        q.push_timer(SimTime::from_micros(8), Address(0), ());
        q.push_timer(SimTime::from_micros(2), Address(0), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(2)));
    }

    #[test]
    fn far_future_events_cross_the_overflow_boundary() {
        let mut q = EventQueue::default();
        // Beyond the ~4.2 ms ring horizon: lands in the overflow heap.
        q.push_timer(SimTime::from_millis(50), Address(1), "far");
        q.push_timer(SimTime::from_millis(200), Address(2), "farther");
        q.push_timer(SimTime::from_micros(1), Address(0), "near");
        assert_eq!(q.len(), 3);
        let a = q.pop().unwrap();
        assert_eq!(a.msg, "near");
        let b = q.pop().unwrap();
        assert_eq!((b.msg, b.at), ("far", SimTime::from_millis(50)));
        let c = q.pop().unwrap();
        assert_eq!((c.msg, c.at), ("farther", SimTime::from_millis(200)));
        assert!(q.is_empty());
        assert_eq!(q.pop().map(|e| e.msg), None);
    }

    #[test]
    fn overflow_events_are_not_leapfrogged_by_ring_traffic() {
        // Keep the ring busy while an overflow event's due time approaches;
        // the overflow event must pop exactly in order.
        let mut q = EventQueue::default();
        // Overflow event at 6 ms (beyond the 4.19 ms horizon from t=0).
        q.push_timer(SimTime::from_micros(6_000), Address(9), u64::MAX);
        // A chain of ring events marching right past 6 ms.
        for i in 0..1_000u64 {
            q.push_timer(SimTime::from_micros(i * 10 + 1), Address(0), i);
        }
        let mut last = 0u128;
        let mut seen_overflow_after = None;
        let mut popped = 0;
        while let Some(e) = q.pop() {
            let k = key(e.at, e.seq);
            assert!(k >= last, "events popped out of order");
            last = k;
            if e.msg == u64::MAX {
                seen_overflow_after = Some(popped);
            }
            popped += 1;
        }
        assert_eq!(popped, 1_001);
        // 6 ms lands between ring events 599 (5.991 ms) and 600 (6.001 ms).
        assert_eq!(seen_overflow_after, Some(600));
    }

    #[test]
    fn interleaved_pushes_and_pops_stay_ordered() {
        // Mimics a protocol run: every pop triggers pushes a short delay
        // ahead, with occasional long timers; the popped sequence must be
        // globally non-decreasing in (at, seq).
        let mut q = EventQueue::default();
        q.push_timer(SimTime::from_nanos(1), Address(0), 0u64);
        let mut popped = 0u64;
        let mut last_key = 0u128;
        let mut rng: u64 = 0x243F_6A88_85A3_08D3;
        while let Some(e) = q.pop() {
            let k = key(e.at, e.seq);
            assert!(k >= last_key, "events popped out of order");
            last_key = k;
            popped += 1;
            if popped > 20_000 {
                continue;
            }
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // 0–3 successor events at mixed near/far delays.
            for j in 0..(rng >> 61).min(3) {
                let r = rng.rotate_left(11 * (j as u32 + 1));
                let delay_ns = match r % 5 {
                    0 => 0,                          // same instant (FIFO path)
                    1 => 1 + r % 300,                // sub-bucket
                    2 => 1_000 + r % 3_000,          // LAN-ish
                    3 => 100_000 + r % 1_000_000,    // WAN-ish
                    _ => 5_000_000 + r % 20_000_000, // beyond the ring span
                };
                q.push_timer(
                    SimTime::from_nanos(e.at.as_nanos() + delay_ns),
                    Address(j as u32),
                    popped,
                );
            }
        }
        assert!(popped > 20_000);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn now_bucket_and_calendar_interleave_deterministically() {
        let mut q = EventQueue::default();
        // Advance the queue's notion of "now" to 5 µs.
        q.push_timer(SimTime::from_micros(5), Address(0), 0u32);
        assert_eq!(q.pop().unwrap().msg, 0);
        // Same-instant events (FIFO bucket) plus later calendar events.
        q.push_timer(SimTime::from_micros(5), Address(0), 1);
        q.push_timer(SimTime::from_micros(6), Address(0), 3);
        q.push_timer(SimTime::from_micros(5), Address(0), 2);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|e| e.msg)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }
}
