//! The time-ordered event queue.

use crate::engine::Address;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled delivery.
#[derive(Debug, Clone)]
pub(crate) struct Event<M> {
    pub(crate) at: SimTime,
    /// Tie-break so that events scheduled earlier (in wall-clock order of
    /// scheduling) are processed first among equal timestamps, giving the
    /// simulator deterministic FIFO semantics.
    pub(crate) seq: u64,
    pub(crate) to: Address,
    pub(crate) msg: M,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}

impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want the earliest event on
        // top.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-priority queue of events.
#[derive(Debug)]
pub(crate) struct EventQueue<M> {
    heap: BinaryHeap<Event<M>>,
    next_seq: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<M> EventQueue<M> {
    pub(crate) fn push(&mut self, at: SimTime, to: Address, msg: M) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, seq, to, msg });
    }

    pub(crate) fn pop(&mut self) -> Option<Event<M>> {
        self.heap.pop()
    }

    pub(crate) fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::default();
        q.push(SimTime::from_micros(5), Address(0), "b");
        q.push(SimTime::from_micros(1), Address(0), "a");
        q.push(SimTime::from_micros(9), Address(0), "c");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().msg, "a");
        assert_eq!(q.pop().unwrap().msg, "b");
        assert_eq!(q.pop().unwrap().msg, "c");
        assert!(q.is_empty());
    }

    #[test]
    fn equal_timestamps_are_fifo() {
        let mut q = EventQueue::default();
        let t = SimTime::from_micros(3);
        for i in 0..10 {
            q.push(t, Address(i), i);
        }
        for i in 0..10 {
            let e = q.pop().unwrap();
            assert_eq!(e.msg, i);
            assert_eq!(e.to, Address(i));
        }
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::default();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_micros(8), Address(0), ());
        q.push(SimTime::from_micros(2), Address(0), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(2)));
    }
}
