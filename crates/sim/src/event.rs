//! The time-ordered event queue.

use crate::engine::Address;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// One scheduled delivery.
#[derive(Debug, Clone)]
pub(crate) struct Event<M> {
    pub(crate) at: SimTime,
    /// Tie-break so that events scheduled earlier (in wall-clock order of
    /// scheduling) are processed first among equal timestamps, giving the
    /// simulator deterministic FIFO semantics.
    pub(crate) seq: u64,
    pub(crate) to: Address,
    pub(crate) msg: M,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}

impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want the earliest event on
        // top.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-priority queue of events.
///
/// Events scheduled for the *current* instant bypass the binary heap: they go
/// into a FIFO bucket (`now`) keyed by `now_time`, the timestamp of the most
/// recent heap transition. Protocols that churn through long same-timestamp
/// cascades — the B-Neck quiescence experiments deliver most events at the
/// instant they are sent plus a fixed delay pattern — pay `O(1)` per such
/// event instead of `O(log n)` heap reshuffles.
///
/// Determinism is unchanged: events are delivered in globally increasing
/// `(at, seq)` order. The bucket only ever holds events with `at == now_time`
/// and monotonically increasing `seq`, and a `(at, seq)` comparison against
/// the heap head decides which side pops next, so events that reached the
/// heap earlier (smaller `seq`) still win ties.
#[derive(Debug)]
pub(crate) struct EventQueue<M> {
    heap: BinaryHeap<Event<M>>,
    /// FIFO bucket of events at `now_time`.
    now: VecDeque<Event<M>>,
    /// The current instant: timestamp of the last event popped from the heap
    /// (`SimTime::ZERO` before the first pop, matching the engine's clock).
    now_time: SimTime,
    next_seq: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: VecDeque::new(),
            now_time: SimTime::ZERO,
            next_seq: 0,
        }
    }
}

impl<M> EventQueue<M> {
    pub(crate) fn push(&mut self, at: SimTime, to: Address, msg: M) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let event = Event { at, seq, to, msg };
        // The engine never schedules into the simulated past, so `at` is
        // either exactly the current instant (fast path) or in the future.
        if at == self.now_time {
            self.now.push_back(event);
        } else {
            debug_assert!(
                at > self.now_time,
                "events must not be scheduled in the past"
            );
            self.heap.push(event);
        }
    }

    pub(crate) fn pop(&mut self) -> Option<Event<M>> {
        let from_now = match (self.now.front(), self.heap.peek()) {
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(f), Some(h)) => (f.at, f.seq) < (h.at, h.seq),
            (None, None) => return None,
        };
        if from_now {
            self.now.pop_front()
        } else {
            let event = self.heap.pop();
            if let Some(e) = &event {
                debug_assert!(e.at >= self.now_time, "time must not go backwards");
                self.now_time = e.at;
            }
            event
        }
    }

    pub(crate) fn peek_time(&self) -> Option<SimTime> {
        match (self.now.front(), self.heap.peek()) {
            (Some(f), None) => Some(f.at),
            (None, Some(h)) => Some(h.at),
            (Some(f), Some(h)) => Some(f.at.min(h.at)),
            (None, None) => None,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.heap.len() + self.now.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty() && self.now.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::default();
        q.push(SimTime::from_micros(5), Address(0), "b");
        q.push(SimTime::from_micros(1), Address(0), "a");
        q.push(SimTime::from_micros(9), Address(0), "c");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().msg, "a");
        assert_eq!(q.pop().unwrap().msg, "b");
        assert_eq!(q.pop().unwrap().msg, "c");
        assert!(q.is_empty());
    }

    #[test]
    fn equal_timestamps_are_fifo() {
        let mut q = EventQueue::default();
        let t = SimTime::from_micros(3);
        for i in 0..10 {
            q.push(t, Address(i), i);
        }
        for i in 0..10 {
            let e = q.pop().unwrap();
            assert_eq!(e.msg, i);
            assert_eq!(e.to, Address(i));
        }
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::default();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_micros(8), Address(0), ());
        q.push(SimTime::from_micros(2), Address(0), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(2)));
    }
}
