//! The classic progressive-filling (Water-Filling) algorithm.
//!
//! Water-Filling raises the rate of every session simultaneously until a link
//! saturates or a session reaches its requested maximum; saturated sessions
//! are frozen and the process repeats with the remaining ones. It computes the
//! same allocation as [`crate::centralized::CentralizedBneck`] and is kept as
//! an independent implementation so the two can cross-validate each other in
//! property tests (mirroring how the paper validates B-Neck against "a
//! centralized algorithm similar to the Water-Filling algorithm").

use crate::rate::{Rate, Tolerance};
use crate::session::{Allocation, SessionSet};
use crate::workspace::{SolverWorkspace, NONE};
use bneck_net::Network;

/// Progressive-filling max-min solver.
///
/// # Example
///
/// ```
/// use bneck_net::prelude::*;
/// use bneck_maxmin::prelude::*;
///
/// let net = synthetic::dumbbell(2, Capacity::from_mbps(100.0),
///                               Capacity::from_mbps(60.0), Delay::from_micros(1));
/// let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
/// let mut router = Router::new(&net);
/// let mut sessions = SessionSet::new();
/// for i in 0..2 {
///     let path = router.shortest_path(hosts[2 * i], hosts[2 * i + 1]).unwrap();
///     sessions.insert(Session::new(SessionId(i as u64), path, RateLimit::unlimited()));
/// }
/// let allocation = WaterFilling::new(&net, &sessions).solve();
/// // The 60 Mbps bottleneck is split evenly.
/// assert!((allocation.rate(SessionId(0)).unwrap() - 30e6).abs() < 1.0);
/// ```
#[derive(Debug)]
pub struct WaterFilling<'a> {
    network: &'a Network,
    sessions: &'a SessionSet,
    tolerance: Tolerance,
}

impl<'a> WaterFilling<'a> {
    /// Creates a solver for the given network and session set.
    pub fn new(network: &'a Network, sessions: &'a SessionSet) -> Self {
        WaterFilling {
            network,
            sessions,
            tolerance: Tolerance::default(),
        }
    }

    /// Overrides the comparison tolerance.
    pub fn with_tolerance(mut self, tolerance: Tolerance) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Computes the max-min fair allocation.
    ///
    /// Allocates a fresh [`SolverWorkspace`] internally; callers solving
    /// repeatedly should use [`WaterFilling::solve_in`].
    pub fn solve(&self) -> Allocation {
        self.solve_in(&mut SolverWorkspace::new())
    }

    /// Computes the max-min fair allocation using the caller's scratch
    /// buffers, so repeated solves allocate (almost) nothing per call.
    ///
    /// The water level rises round by round; each round freezes the sessions
    /// that sit on a link saturated at the new level or that reached their
    /// own requested maximum. Per-link active counts and frozen-capacity sums
    /// are maintained incrementally — freezing a session only touches the
    /// links on its path — instead of rescanning every link × session pair.
    pub fn solve_in(&self, ws: &mut SolverWorkspace) -> Allocation {
        let tol = self.tolerance;
        let mut allocation = Allocation::new();
        if self.sessions.is_empty() {
            return allocation;
        }

        ws.init_link_constraints(self.network, self.sessions);

        // Rate-limited sessions sorted by limit: since the water level only
        // rises, a cursor over this list yields the smallest unfrozen limit
        // in O(1) per round.
        ws.by_limit.clear();
        let mut remaining = 0usize;
        for (slot, session) in self.sessions.iter_with_slots() {
            remaining += 1;
            if !session.limit().is_unlimited() {
                ws.by_limit.push((session.limit().as_bps(), slot));
            }
        }
        ws.by_limit.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("rate limits are never NaN")
                .then(a.1.cmp(&b.1))
        });
        let mut limit_cursor = 0usize;
        let mut level: Rate = 0.0;

        while remaining > 0 {
            while limit_cursor < ws.by_limit.len()
                && !ws.rate[ws.by_limit[limit_cursor].1 as usize].is_nan()
            {
                limit_cursor += 1;
            }
            // The highest level each link allows for its active sessions,
            // capped by the smallest limit an active session could hit.
            let mut next_level: Rate = f64::INFINITY;
            for i in 0..ws.link_ids.len() {
                let active = ws.active[i];
                if active == 0 {
                    continue;
                }
                let allowed = (ws.cap[i] - ws.granted[i]).max(0.0) / active as f64;
                next_level = next_level.min(allowed);
            }
            if limit_cursor < ws.by_limit.len() {
                next_level = next_level.min(ws.by_limit[limit_cursor].0);
            }
            level = next_level.max(level);

            // Links saturated at the new level, decided before any freeze
            // mutates the counts.
            ws.saturated.clear();
            for i in 0..ws.link_ids.len() {
                let active = ws.active[i];
                if active == 0 {
                    continue;
                }
                if tol.ge(ws.granted[i] + active as f64 * level, ws.cap[i]) {
                    ws.saturated.push(i as u32);
                }
            }
            let mut frozen_this_round = 0usize;
            for k in 0..ws.saturated.len() {
                let link = ws.link_ids[ws.saturated[k] as usize];
                for &slot in self.sessions.slots_on_link(link) {
                    if ws.rate[slot as usize].is_nan() {
                        freeze(ws, self.sessions, slot, level);
                        frozen_this_round += 1;
                    }
                }
            }
            // Sessions frozen by their own limit rather than by a link.
            while limit_cursor < ws.by_limit.len() {
                let (limit, slot) = ws.by_limit[limit_cursor];
                if !ws.rate[slot as usize].is_nan() {
                    limit_cursor += 1;
                    continue;
                }
                if tol.ge(level, limit) {
                    freeze(ws, self.sessions, slot, level);
                    frozen_this_round += 1;
                    limit_cursor += 1;
                } else {
                    break;
                }
            }
            assert!(
                frozen_this_round > 0,
                "progressive filling must freeze at least one session per round"
            );
            remaining -= frozen_this_round;
        }

        for (slot, session) in self.sessions.iter_with_slots() {
            allocation.set(session.id(), ws.rate[slot as usize]);
        }
        allocation
    }
}

/// Freezes `slot` at `level`, updating only the links on its path.
fn freeze(ws: &mut SolverWorkspace, sessions: &SessionSet, slot: u32, level: Rate) {
    ws.rate[slot as usize] = level;
    let session = sessions.session_at(slot).expect("frozen session exists");
    for &link in session.path().links() {
        let i = ws.link_pos[link.index()];
        debug_assert!(i != NONE, "session paths only cross used links");
        ws.active[i as usize] -= 1;
        ws.granted[i as usize] += level;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate::RateLimit;
    use crate::session::{Session, SessionId};
    use bneck_net::prelude::*;

    fn mbps(x: f64) -> Capacity {
        Capacity::from_mbps(x)
    }
    fn us(x: u64) -> Delay {
        Delay::from_micros(x)
    }

    /// Builds sessions pairing host 2i -> 2i+1 on a dumbbell.
    fn dumbbell_sessions(pairs: usize, bottleneck_mbps: f64) -> (Network, SessionSet) {
        let net = synthetic::dumbbell(pairs, mbps(100.0), mbps(bottleneck_mbps), us(1));
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut router = Router::new(&net);
        let mut set = SessionSet::new();
        for i in 0..pairs {
            let path = router
                .shortest_path(hosts[2 * i], hosts[2 * i + 1])
                .unwrap();
            set.insert(Session::new(
                SessionId(i as u64),
                path,
                RateLimit::unlimited(),
            ));
        }
        (net, set)
    }

    #[test]
    fn empty_session_set_yields_empty_allocation() {
        let (net, _) = dumbbell_sessions(1, 50.0);
        let empty = SessionSet::new();
        let alloc = WaterFilling::new(&net, &empty).solve();
        assert!(alloc.is_empty());
    }

    #[test]
    fn equal_split_on_shared_bottleneck() {
        let (net, sessions) = dumbbell_sessions(4, 80.0);
        let alloc = WaterFilling::new(&net, &sessions).solve();
        for i in 0..4 {
            assert!((alloc.rate(SessionId(i)).unwrap() - 20e6).abs() < 1.0);
        }
    }

    #[test]
    fn access_links_bound_when_bottleneck_is_wide() {
        // Bottleneck of 1 Gbps: each of the 3 sessions is limited by its
        // 100 Mbps access link instead.
        let (net, sessions) = dumbbell_sessions(3, 1000.0);
        let alloc = WaterFilling::new(&net, &sessions).solve();
        for i in 0..3 {
            assert!((alloc.rate(SessionId(i)).unwrap() - 100e6).abs() < 1.0);
        }
    }

    #[test]
    fn rate_limits_release_bandwidth_to_others() {
        let (net, mut sessions) = dumbbell_sessions(3, 90.0);
        sessions.change_limit(SessionId(0), RateLimit::finite(10e6));
        let alloc = WaterFilling::new(&net, &sessions).solve();
        assert!((alloc.rate(SessionId(0)).unwrap() - 10e6).abs() < 1.0);
        assert!((alloc.rate(SessionId(1)).unwrap() - 40e6).abs() < 1.0);
        assert!((alloc.rate(SessionId(2)).unwrap() - 40e6).abs() < 1.0);
    }

    #[test]
    fn parking_lot_long_session_gets_the_min_share() {
        // Parking lot with 2 segments: hosts h0..h2 on routers r0..r2.
        // Long session: h0 -> h2 (both segments); short sessions h0->h1 is not
        // possible (one source per host), so use h1 -> h2 and h2 -> h1 style
        // crossings instead: s0: h0->h2 (long), s1: h1->h2 (segment 1).
        let net = synthetic::parking_lot(2, mbps(100.0), mbps(60.0), us(1));
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut router = Router::new(&net);
        let mut sessions = SessionSet::new();
        let long = router.shortest_path(hosts[0], hosts[2]).unwrap();
        let short = router.shortest_path(hosts[1], hosts[2]).unwrap();
        sessions.insert(Session::new(SessionId(0), long, RateLimit::unlimited()));
        sessions.insert(Session::new(SessionId(1), short, RateLimit::unlimited()));
        let alloc = WaterFilling::new(&net, &sessions).solve();
        // Both cross the r1->r2 segment (60 Mbps): 30/30.
        assert!((alloc.rate(SessionId(0)).unwrap() - 30e6).abs() < 1.0);
        assert!((alloc.rate(SessionId(1)).unwrap() - 30e6).abs() < 1.0);
    }

    #[test]
    fn unused_capacity_goes_to_unrestricted_sessions() {
        // Classic 3-session example: s0 and s1 share link A (cap 100),
        // s1 and s2 share link B (cap 40). Max-min: s1 = 20, s2 = 20, s0 = 80.
        let mut b = NetworkBuilder::new();
        let r0 = b.add_router("r0");
        let r1 = b.add_router("r1");
        let r2 = b.add_router("r2");
        b.connect(r0, r1, mbps(100.0), us(1)); // link A
        b.connect(r1, r2, mbps(40.0), us(1)); // link B
        let h0 = b.add_host("h0", r0, mbps(1000.0), us(1));
        let h1 = b.add_host("h1", r0, mbps(1000.0), us(1));
        let h2 = b.add_host("h2", r1, mbps(1000.0), us(1));
        let d1 = b.add_host("d1", r1, mbps(1000.0), us(1));
        let d2 = b.add_host("d2", r2, mbps(1000.0), us(1));
        let net = b.build();
        let mut router = Router::new(&net);
        let mut sessions = SessionSet::new();
        // s0: h0 -> d1 over link A only.
        sessions.insert(Session::new(
            SessionId(0),
            router.shortest_path(h0, d1).unwrap(),
            RateLimit::unlimited(),
        ));
        // s1: h1 -> d2 over links A and B.
        sessions.insert(Session::new(
            SessionId(1),
            router.shortest_path(h1, d2).unwrap(),
            RateLimit::unlimited(),
        ));
        // s2: h2 -> d2 over link B only.
        sessions.insert(Session::new(
            SessionId(2),
            router.shortest_path(h2, d2).unwrap(),
            RateLimit::unlimited(),
        ));
        let alloc = WaterFilling::new(&net, &sessions).solve();
        assert!((alloc.rate(SessionId(1)).unwrap() - 20e6).abs() < 1.0);
        assert!((alloc.rate(SessionId(2)).unwrap() - 20e6).abs() < 1.0);
        assert!((alloc.rate(SessionId(0)).unwrap() - 80e6).abs() < 1.0);
    }
}
