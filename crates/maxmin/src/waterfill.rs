//! The classic progressive-filling (Water-Filling) algorithm.
//!
//! Water-Filling raises the rate of every session simultaneously until a link
//! saturates or a session reaches its requested maximum; saturated sessions
//! are frozen and the process repeats with the remaining ones. It computes the
//! same allocation as [`crate::centralized::CentralizedBneck`] and is kept as
//! an independent implementation so the two can cross-validate each other in
//! property tests (mirroring how the paper validates B-Neck against "a
//! centralized algorithm similar to the Water-Filling algorithm").

use crate::rate::{Rate, Tolerance};
use crate::session::{Allocation, SessionId, SessionSet};
use bneck_net::{LinkId, Network};
use std::collections::HashMap;

/// Progressive-filling max-min solver.
///
/// # Example
///
/// ```
/// use bneck_net::prelude::*;
/// use bneck_maxmin::prelude::*;
///
/// let net = synthetic::dumbbell(2, Capacity::from_mbps(100.0),
///                               Capacity::from_mbps(60.0), Delay::from_micros(1));
/// let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
/// let mut router = Router::new(&net);
/// let mut sessions = SessionSet::new();
/// for i in 0..2 {
///     let path = router.shortest_path(hosts[2 * i], hosts[2 * i + 1]).unwrap();
///     sessions.insert(Session::new(SessionId(i as u64), path, RateLimit::unlimited()));
/// }
/// let allocation = WaterFilling::new(&net, &sessions).solve();
/// // The 60 Mbps bottleneck is split evenly.
/// assert!((allocation.rate(SessionId(0)).unwrap() - 30e6).abs() < 1.0);
/// ```
#[derive(Debug)]
pub struct WaterFilling<'a> {
    network: &'a Network,
    sessions: &'a SessionSet,
    tolerance: Tolerance,
}

impl<'a> WaterFilling<'a> {
    /// Creates a solver for the given network and session set.
    pub fn new(network: &'a Network, sessions: &'a SessionSet) -> Self {
        WaterFilling {
            network,
            sessions,
            tolerance: Tolerance::default(),
        }
    }

    /// Overrides the comparison tolerance.
    pub fn with_tolerance(mut self, tolerance: Tolerance) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Computes the max-min fair allocation.
    pub fn solve(&self) -> Allocation {
        let tol = self.tolerance;
        let mut allocation = Allocation::new();
        if self.sessions.is_empty() {
            return allocation;
        }

        // Active sessions all share the same current "water level".
        let mut active: Vec<SessionId> = self.sessions.iter().map(|s| s.id()).collect();
        let mut frozen_rate: HashMap<SessionId, Rate> = HashMap::new();
        // Per used link: capacity and the number of active sessions on it.
        let used_links: Vec<LinkId> = self.sessions.used_links().collect();
        let mut level: Rate = 0.0;

        while !active.is_empty() {
            // The highest level each link allows for its active sessions.
            let mut next_level: Rate = f64::INFINITY;
            for &link in &used_links {
                let on_link = self.sessions.sessions_on_link(link);
                let active_count = on_link
                    .iter()
                    .filter(|s| !frozen_rate.contains_key(s))
                    .count();
                if active_count == 0 {
                    continue;
                }
                let frozen_sum: Rate = on_link.iter().filter_map(|s| frozen_rate.get(s)).sum();
                let cap = self.network.link(link).capacity().as_bps();
                let allowed = (cap - frozen_sum).max(0.0) / active_count as f64;
                next_level = next_level.min(allowed);
            }
            // Sessions may also freeze because they reach their own limit.
            for id in &active {
                let limit = self
                    .sessions
                    .get(*id)
                    .expect("active session exists")
                    .limit();
                next_level = next_level.min(limit.as_bps());
            }

            level = next_level.max(level);

            // Freeze sessions that hit their limit or sit on a saturated link.
            let mut saturated_links: Vec<LinkId> = Vec::new();
            for &link in &used_links {
                let on_link = self.sessions.sessions_on_link(link);
                let active_count = on_link
                    .iter()
                    .filter(|s| !frozen_rate.contains_key(s))
                    .count();
                if active_count == 0 {
                    continue;
                }
                let frozen_sum: Rate = on_link.iter().filter_map(|s| frozen_rate.get(s)).sum();
                let cap = self.network.link(link).capacity().as_bps();
                let total = frozen_sum + active_count as f64 * level;
                if tol.ge(total, cap) {
                    saturated_links.push(link);
                }
            }
            let mut newly_frozen: Vec<SessionId> = Vec::new();
            for id in &active {
                let session = self.sessions.get(*id).expect("active session exists");
                let at_limit = tol.ge(level, session.limit().as_bps());
                let on_saturated = session
                    .path()
                    .links()
                    .iter()
                    .any(|l| saturated_links.contains(l));
                if at_limit || on_saturated {
                    newly_frozen.push(*id);
                }
            }
            assert!(
                !newly_frozen.is_empty(),
                "progressive filling must freeze at least one session per round"
            );
            for id in newly_frozen {
                frozen_rate.insert(id, level);
                active.retain(|s| *s != id);
            }
        }

        for (id, rate) in frozen_rate {
            allocation.set(id, rate);
        }
        allocation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate::RateLimit;
    use crate::session::Session;
    use bneck_net::prelude::*;

    fn mbps(x: f64) -> Capacity {
        Capacity::from_mbps(x)
    }
    fn us(x: u64) -> Delay {
        Delay::from_micros(x)
    }

    /// Builds sessions pairing host 2i -> 2i+1 on a dumbbell.
    fn dumbbell_sessions(pairs: usize, bottleneck_mbps: f64) -> (Network, SessionSet) {
        let net = synthetic::dumbbell(pairs, mbps(100.0), mbps(bottleneck_mbps), us(1));
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut router = Router::new(&net);
        let mut set = SessionSet::new();
        for i in 0..pairs {
            let path = router
                .shortest_path(hosts[2 * i], hosts[2 * i + 1])
                .unwrap();
            set.insert(Session::new(
                SessionId(i as u64),
                path,
                RateLimit::unlimited(),
            ));
        }
        (net, set)
    }

    #[test]
    fn empty_session_set_yields_empty_allocation() {
        let (net, _) = dumbbell_sessions(1, 50.0);
        let empty = SessionSet::new();
        let alloc = WaterFilling::new(&net, &empty).solve();
        assert!(alloc.is_empty());
    }

    #[test]
    fn equal_split_on_shared_bottleneck() {
        let (net, sessions) = dumbbell_sessions(4, 80.0);
        let alloc = WaterFilling::new(&net, &sessions).solve();
        for i in 0..4 {
            assert!((alloc.rate(SessionId(i)).unwrap() - 20e6).abs() < 1.0);
        }
    }

    #[test]
    fn access_links_bound_when_bottleneck_is_wide() {
        // Bottleneck of 1 Gbps: each of the 3 sessions is limited by its
        // 100 Mbps access link instead.
        let (net, sessions) = dumbbell_sessions(3, 1000.0);
        let alloc = WaterFilling::new(&net, &sessions).solve();
        for i in 0..3 {
            assert!((alloc.rate(SessionId(i)).unwrap() - 100e6).abs() < 1.0);
        }
    }

    #[test]
    fn rate_limits_release_bandwidth_to_others() {
        let (net, mut sessions) = dumbbell_sessions(3, 90.0);
        sessions.change_limit(SessionId(0), RateLimit::finite(10e6));
        let alloc = WaterFilling::new(&net, &sessions).solve();
        assert!((alloc.rate(SessionId(0)).unwrap() - 10e6).abs() < 1.0);
        assert!((alloc.rate(SessionId(1)).unwrap() - 40e6).abs() < 1.0);
        assert!((alloc.rate(SessionId(2)).unwrap() - 40e6).abs() < 1.0);
    }

    #[test]
    fn parking_lot_long_session_gets_the_min_share() {
        // Parking lot with 2 segments: hosts h0..h2 on routers r0..r2.
        // Long session: h0 -> h2 (both segments); short sessions h0->h1 is not
        // possible (one source per host), so use h1 -> h2 and h2 -> h1 style
        // crossings instead: s0: h0->h2 (long), s1: h1->h2 (segment 1).
        let net = synthetic::parking_lot(2, mbps(100.0), mbps(60.0), us(1));
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut router = Router::new(&net);
        let mut sessions = SessionSet::new();
        let long = router.shortest_path(hosts[0], hosts[2]).unwrap();
        let short = router.shortest_path(hosts[1], hosts[2]).unwrap();
        sessions.insert(Session::new(SessionId(0), long, RateLimit::unlimited()));
        sessions.insert(Session::new(SessionId(1), short, RateLimit::unlimited()));
        let alloc = WaterFilling::new(&net, &sessions).solve();
        // Both cross the r1->r2 segment (60 Mbps): 30/30.
        assert!((alloc.rate(SessionId(0)).unwrap() - 30e6).abs() < 1.0);
        assert!((alloc.rate(SessionId(1)).unwrap() - 30e6).abs() < 1.0);
    }

    #[test]
    fn unused_capacity_goes_to_unrestricted_sessions() {
        // Classic 3-session example: s0 and s1 share link A (cap 100),
        // s1 and s2 share link B (cap 40). Max-min: s1 = 20, s2 = 20, s0 = 80.
        let mut b = NetworkBuilder::new();
        let r0 = b.add_router("r0");
        let r1 = b.add_router("r1");
        let r2 = b.add_router("r2");
        b.connect(r0, r1, mbps(100.0), us(1)); // link A
        b.connect(r1, r2, mbps(40.0), us(1)); // link B
        let h0 = b.add_host("h0", r0, mbps(1000.0), us(1));
        let h1 = b.add_host("h1", r0, mbps(1000.0), us(1));
        let h2 = b.add_host("h2", r1, mbps(1000.0), us(1));
        let d1 = b.add_host("d1", r1, mbps(1000.0), us(1));
        let d2 = b.add_host("d2", r2, mbps(1000.0), us(1));
        let net = b.build();
        let mut router = Router::new(&net);
        let mut sessions = SessionSet::new();
        // s0: h0 -> d1 over link A only.
        sessions.insert(Session::new(
            SessionId(0),
            router.shortest_path(h0, d1).unwrap(),
            RateLimit::unlimited(),
        ));
        // s1: h1 -> d2 over links A and B.
        sessions.insert(Session::new(
            SessionId(1),
            router.shortest_path(h1, d2).unwrap(),
            RateLimit::unlimited(),
        ));
        // s2: h2 -> d2 over link B only.
        sessions.insert(Session::new(
            SessionId(2),
            router.shortest_path(h2, d2).unwrap(),
            RateLimit::unlimited(),
        ));
        let alloc = WaterFilling::new(&net, &sessions).solve();
        assert!((alloc.rate(SessionId(1)).unwrap() - 20e6).abs() < 1.0);
        assert!((alloc.rate(SessionId(2)).unwrap() - 20e6).abs() < 1.0);
        assert!((alloc.rate(SessionId(0)).unwrap() - 80e6).abs() < 1.0);
    }
}
