//! A fast, non-cryptographic hasher for the protocol hot paths.
//!
//! The simulation engines resolve a session identifier to a dense slot once
//! per packet (and once per emitted action). The standard library's default
//! SipHash is DoS-resistant but costs tens of nanoseconds per lookup, which
//! is pure overhead for simulator-internal maps whose keys are chosen by the
//! workload generator, not by an adversary. [`FastHasher`] is a Fibonacci
//! multiply-xor hash in the spirit of `fxhash`/`ahash`-fallback: a couple of
//! arithmetic instructions per integer key.

// xlint: allow(DET001, reason = "re-exported only with the fixed Fibonacci hasher below: iteration order is a pure function of the op sequence")
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher for integer-like keys. Not DoS resistant — use only
/// for maps whose keys are not attacker controlled.
#[derive(Debug, Default, Clone, Copy)]
pub struct FastHasher(u64);

/// `2^64 / φ`, the classic Fibonacci hashing multiplier.
const PHI: u64 = 0x9E37_79B9_7F4A_7C15;

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (FNV-style); the integer fast paths below cover
        // the hot keys (`SessionId`, `LinkId`, `NodeId` all hash one int).
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        let h = (self.0 ^ n).wrapping_mul(PHI);
        // Mix the high bits down: HashMap derives the bucket from the low
        // bits of `finish()`.
        self.0 = h ^ (h >> 32);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

/// The [`std::hash::BuildHasher`] for [`FastHasher`].
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` using [`FastHasher`].
// xlint: allow(DET001, reason = "FastBuildHasher is stateless and unseeded: same inserts, same order, every process")
pub type FastMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// A `HashSet` using [`FastHasher`].
// xlint: allow(DET001, reason = "FastBuildHasher is stateless and unseeded: same inserts, same order, every process")
pub type FastSet<K> = HashSet<K, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionId;

    #[test]
    fn map_roundtrips_integer_keys() {
        let mut map: FastMap<SessionId, u32> = FastMap::default();
        for i in 0..10_000u64 {
            map.insert(SessionId(i), i as u32);
        }
        assert_eq!(map.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(map.get(&SessionId(i)), Some(&(i as u32)));
        }
        for i in (0..10_000u64).step_by(2) {
            assert_eq!(map.remove(&SessionId(i)), Some(i as u32));
        }
        assert_eq!(map.len(), 5_000);
    }

    #[test]
    fn consecutive_keys_spread_across_buckets() {
        // Fibonacci hashing must not map consecutive integers to consecutive
        // low bits only; check that the low byte takes many distinct values.
        let mut low = FastSet::default();
        for i in 0..256u64 {
            let mut h = FastHasher::default();
            h.write_u64(i);
            low.insert(h.finish() & 0xFF);
        }
        assert!(low.len() > 128, "low bits too clustered: {}", low.len());
    }

    #[test]
    fn string_keys_still_work() {
        let mut map: FastMap<String, usize> = FastMap::default();
        map.insert("alpha".into(), 1);
        map.insert("beta".into(), 2);
        assert_eq!(map["alpha"], 1);
        assert_eq!(map["beta"], 2);
    }
}
