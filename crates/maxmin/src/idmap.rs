//! An inline open-addressing id → slot table for the per-link hot path.
//!
//! [`FastMap`](crate::fastmap::FastMap) already removed the SipHash cost from
//! the id → dense-slot lookups, but a `HashMap` still routes every probe
//! through its own heap allocation (SwissTable control bytes plus a separate
//! entry array), which is one dependent cache miss per packet on top of the
//! member record itself. [`IdSlotMap`] flattens the table into a single boxed
//! slice of 16-byte entries — key, value and occupancy state share one entry,
//! four entries share one cache line — probed linearly from a Fibonacci-hash
//! bucket, so a lookup touches one or two *predictable* cache lines and the
//! owning struct (e.g. `RouterLink`) needs no second pointer chase.
//!
//! Deletions leave tombstones so probe chains stay intact; the table rehashes
//! in place (same capacity) when tombstones crowd it and doubles when it is
//! genuinely full, keeping the load factor at or below 1/2 — linear probing
//! (unlike SwissTable's 16-way SIMD groups) degrades steeply past that, and
//! on the heavily shared backbone links the table is lookup-dominated, so
//! short probe chains are worth the doubled (still 32 bytes per live entry)
//! footprint. Iteration order
//! is unspecified — callers that need a deterministic order (the protocol
//! engines do) must keep their own dense array and use the map only for id →
//! index resolution.

use crate::session::SessionId;

/// `2^64 / φ`, the Fibonacci hashing multiplier (same constant as
/// [`crate::fastmap::FastHasher`]).
const PHI: u64 = 0x9E37_79B9_7F4A_7C15;

const EMPTY: u8 = 0;
const FULL: u8 = 1;
const TOMB: u8 = 2;

/// One table slot: the key, its value and the occupancy state, padded to 16
/// bytes so four entries tile a cache line exactly.
#[derive(Debug, Clone, Copy)]
struct Entry {
    key: u64,
    val: u32,
    state: u8,
}

const VACANT: Entry = Entry {
    key: 0,
    val: 0,
    state: EMPTY,
};

/// An open-addressing `SessionId → u32` map with inline 16-byte entries.
///
/// Semantically a subset of `HashMap<SessionId, u32>`: insert, lookup,
/// remove, length and (unordered) iteration. A fresh map holds no heap
/// allocation at all; the first insert allocates the minimum table.
#[derive(Debug, Clone, Default)]
pub struct IdSlotMap {
    /// Power-of-two table (empty before the first insert).
    entries: Box<[Entry]>,
    /// Number of occupied (`FULL`) entries.
    len: usize,
    /// Number of tombstones (`TOMB` entries).
    tombs: usize,
}

impl IdSlotMap {
    /// Smallest non-empty table; with the 1/2 load-factor bound it always
    /// keeps at least one `EMPTY` entry, which probe loops rely on to
    /// terminate.
    const MIN_CAPACITY: usize = 8;

    /// Creates an empty map (no allocation).
    pub fn new() -> Self {
        IdSlotMap::default()
    }

    /// Number of entries in the map.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The current table capacity (for load-factor tests; 0 before the first
    /// insert).
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    #[inline]
    fn bucket(&self, key: u64) -> usize {
        // Multiply spreads the key into the high bits; folding them down
        // makes the low bits (the bucket index) depend on all of the key.
        let h = key.wrapping_mul(PHI);
        ((h ^ (h >> 32)) as usize) & (self.entries.len() - 1)
    }

    /// The value of `session`, if present.
    #[inline]
    pub fn get(&self, session: SessionId) -> Option<u32> {
        if self.len == 0 {
            return None;
        }
        let mask = self.entries.len() - 1;
        let mut i = self.bucket(session.0);
        loop {
            let e = &self.entries[i];
            if e.state == EMPTY {
                return None;
            }
            if e.state == FULL && e.key == session.0 {
                return Some(e.val);
            }
            i = (i + 1) & mask;
        }
    }

    /// Inserts or updates `session → val`; returns the previous value if the
    /// key was present.
    pub fn insert(&mut self, session: SessionId, val: u32) -> Option<u32> {
        self.reserve_one();
        let mask = self.entries.len() - 1;
        let mut i = self.bucket(session.0);
        // First tombstone of the probe chain: the insertion point if the key
        // turns out to be absent (reusing it keeps chains short).
        let mut grave: Option<usize> = None;
        loop {
            let e = self.entries[i];
            match e.state {
                EMPTY => {
                    let at = grave.unwrap_or(i);
                    if self.entries[at].state == TOMB {
                        self.tombs -= 1;
                    }
                    self.entries[at] = Entry {
                        key: session.0,
                        val,
                        state: FULL,
                    };
                    self.len += 1;
                    return None;
                }
                FULL if e.key == session.0 => {
                    let old = e.val;
                    self.entries[i].val = val;
                    return Some(old);
                }
                TOMB if grave.is_none() => {
                    grave = Some(i);
                }
                _ => {}
            }
            i = (i + 1) & mask;
        }
    }

    /// Removes `session`, returning its value if it was present. The entry
    /// becomes a tombstone; in-place rehashes reclaim tombstones once they
    /// crowd the table.
    pub fn remove(&mut self, session: SessionId) -> Option<u32> {
        if self.len == 0 {
            return None;
        }
        let mask = self.entries.len() - 1;
        let mut i = self.bucket(session.0);
        loop {
            let e = self.entries[i];
            match e.state {
                EMPTY => return None,
                FULL if e.key == session.0 => {
                    self.entries[i].state = TOMB;
                    self.len -= 1;
                    self.tombs += 1;
                    return Some(e.val);
                }
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// Iterates over the entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (SessionId, u32)> + '_ {
        self.entries
            .iter()
            .filter(|e| e.state == FULL)
            .map(|e| (SessionId(e.key), e.val))
    }

    /// Makes room for one more entry, growing (or compacting tombstones away)
    /// whenever occupied + dead entries would exceed 1/2 of the table.
    fn reserve_one(&mut self) {
        let cap = self.entries.len();
        if cap == 0 {
            // xlint: allow(HOT001, reason = "first-insert table allocation, amortized over all later lookups")
            self.entries = vec![VACANT; Self::MIN_CAPACITY].into_boxed_slice();
            return;
        }
        if (self.len + self.tombs + 1) * 2 <= cap {
            return;
        }
        // Double only when live entries genuinely need it; otherwise rehash
        // at the same capacity, which exists purely to clear tombstones (the
        // churn workloads remove as many sessions as they add).
        let new_cap = if (self.len + 1) * 2 > cap {
            cap * 2
        } else {
            cap
        };
        // xlint: allow(HOT001, reason = "table growth/tombstone compaction, amortized O(1) per insert")
        let old = std::mem::replace(&mut self.entries, vec![VACANT; new_cap].into_boxed_slice());
        self.tombs = 0;
        let mask = new_cap - 1;
        for e in old.iter().filter(|e| e.state == FULL) {
            let mut i = self.bucket(e.key);
            while self.entries[i].state == FULL {
                i = (i + 1) & mask;
            }
            self.entries[i] = *e;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_is_sixteen_bytes() {
        assert_eq!(std::mem::size_of::<Entry>(), 16);
    }

    #[test]
    fn roundtrips_inserts_updates_and_removes() {
        let mut map = IdSlotMap::new();
        assert!(map.is_empty());
        assert_eq!(map.get(SessionId(7)), None);
        for i in 0..1000u64 {
            assert_eq!(map.insert(SessionId(i), i as u32), None);
        }
        assert_eq!(map.len(), 1000);
        assert_eq!(map.insert(SessionId(3), 99), Some(3));
        assert_eq!(map.get(SessionId(3)), Some(99));
        for i in (0..1000u64).step_by(2) {
            assert_eq!(map.remove(SessionId(i)), Some(i as u32));
        }
        assert_eq!(map.len(), 500);
        assert_eq!(map.remove(SessionId(0)), None);
        for i in (1..1000u64).step_by(2) {
            let expected = if i == 3 { 99 } else { i as u32 };
            assert_eq!(map.get(SessionId(i)), Some(expected));
        }
        assert_eq!(map.iter().count(), 500);
    }

    #[test]
    fn tombstone_churn_rehashes_in_place_without_growing() {
        // Fill to just under the load-factor bound, then churn remove+insert
        // far more times than the capacity: tombstones must be compacted by
        // same-capacity rehashes, not answered with unbounded doubling.
        let mut map = IdSlotMap::new();
        for i in 0..28u64 {
            map.insert(SessionId(i), i as u32);
        }
        let cap = map.capacity();
        assert_eq!(cap, 64, "28 live entries fit a 64-entry table at 1/2");
        for round in 0..10_000u64 {
            let dead = round % 28;
            assert_eq!(map.remove(SessionId(dead)), Some(dead as u32));
            assert_eq!(map.insert(SessionId(dead), dead as u32), None);
        }
        assert_eq!(map.len(), 28);
        assert_eq!(
            map.capacity(),
            cap,
            "steady-state churn must not grow the table"
        );
        for i in 0..28u64 {
            assert_eq!(map.get(SessionId(i)), Some(i as u32));
        }
    }

    #[test]
    fn growth_doubles_at_high_load_factor() {
        let mut map = IdSlotMap::new();
        for i in 0..8u64 {
            map.insert(SessionId(i), 0);
        }
        // 8 entries fill the 16-entry table (doubled from the minimum 8)
        // exactly to the 1/2 bound.
        assert_eq!(map.capacity(), 16);
        for i in 8..1000u64 {
            map.insert(SessionId(i), 0);
        }
        let cap = map.capacity();
        assert!(cap.is_power_of_two());
        assert!(map.len() * 2 <= cap, "load factor bound holds");
    }

    #[test]
    fn colliding_probe_chains_survive_a_middle_removal() {
        // Keys engineered to share a bucket: deleting one in the middle of
        // the chain must leave the rest reachable (the tombstone keeps the
        // chain connected).
        let mut map = IdSlotMap::new();
        let mut keys = Vec::new();
        let mut k = 0u64;
        let probe = |map: &IdSlotMap, key: u64| {
            let h = key.wrapping_mul(PHI);
            ((h ^ (h >> 32)) as usize) & (map.capacity() - 1)
        };
        map.insert(SessionId(0), 0);
        let target = probe(&map, 0);
        keys.push(0u64);
        while keys.len() < 4 {
            k += 1;
            if probe(&map, k) == target {
                map.insert(SessionId(k), k as u32);
                keys.push(k);
            }
        }
        map.remove(SessionId(keys[1]));
        for &key in &[keys[0], keys[2], keys[3]] {
            assert_eq!(map.get(SessionId(key)), Some(key as u32));
        }
        // Reinserting the removed key reuses the tombstone.
        map.insert(SessionId(keys[1]), 7);
        assert_eq!(map.get(SessionId(keys[1])), Some(7));
    }
}
