//! Rates, rate limits and tolerance-aware comparisons.
//!
//! The B-Neck protocol compares rates for equality (for example "all sessions
//! restricted at this link have rate equal to the link's bottleneck rate").
//! With real arithmetic those comparisons are exact; with `f64` arithmetic the
//! order of summation can perturb the last bits, so every comparison in this
//! repository goes through a [`Tolerance`], a single policy point combining a
//! relative and an absolute epsilon.

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::fmt;

/// A transmission rate in bits per second.
///
/// Rates are plain `f64`s; this alias documents intent in signatures.
pub type Rate = f64;

/// The maximum rate requested by a session (`r_s` in the paper), which may be
/// unlimited (the paper's "maximum rate ∞").
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct RateLimit(f64);

impl RateLimit {
    /// A session that does not cap its own rate.
    pub fn unlimited() -> Self {
        RateLimit(f64::INFINITY)
    }

    /// A session that requests at most `bps` bits per second.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is not strictly positive and finite.
    pub fn finite(bps: f64) -> Self {
        assert!(
            bps.is_finite() && bps > 0.0,
            "a finite rate limit must be positive"
        );
        RateLimit(bps)
    }

    /// The limit in bits per second (`f64::INFINITY` when unlimited).
    pub fn as_bps(self) -> f64 {
        self.0
    }

    /// `true` when the session does not cap its own rate.
    pub fn is_unlimited(self) -> bool {
        self.0.is_infinite()
    }

    /// The effective demand given the capacity of the session's first link:
    /// `D_s = min(C_e, r_s)` (Section II of the paper).
    pub fn effective_demand(self, first_link_capacity: Rate) -> Rate {
        self.0.min(first_link_capacity)
    }
}

impl Default for RateLimit {
    fn default() -> Self {
        RateLimit::unlimited()
    }
}

impl fmt::Display for RateLimit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_infinite() {
            write!(f, "unlimited")
        } else {
            write!(f, "{:.3} Mbps", self.0 / 1e6)
        }
    }
}

/// Tolerance used when comparing rates.
///
/// Two rates `a` and `b` are considered equal when
/// `|a - b| <= abs + rel * max(|a|, |b|)`.
///
/// # Example
///
/// ```
/// use bneck_maxmin::Tolerance;
/// let tol = Tolerance::default();
/// assert!(tol.eq(1e8, 1e8 + 1e-3));
/// assert!(tol.lt(1e8, 2e8));
/// assert!(!tol.lt(1e8, 1e8 + 1e-3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Tolerance {
    /// Relative epsilon.
    pub rel: f64,
    /// Absolute epsilon in bits per second.
    pub abs: f64,
}

impl Default for Tolerance {
    /// A tolerance suited to rates expressed in bits per second: one part in
    /// 10⁹ relative, and 10⁻³ bit/s absolute.
    fn default() -> Self {
        Tolerance {
            rel: 1e-9,
            abs: 1e-3,
        }
    }
}

impl Tolerance {
    /// Creates a tolerance with the given relative and absolute epsilons.
    ///
    /// # Panics
    ///
    /// Panics if either epsilon is negative or NaN.
    pub fn new(rel: f64, abs: f64) -> Self {
        assert!(rel >= 0.0 && abs >= 0.0, "epsilons must be non-negative");
        Tolerance { rel, abs }
    }

    /// A zero tolerance (exact comparisons). Useful in tests.
    pub fn exact() -> Self {
        Tolerance { rel: 0.0, abs: 0.0 }
    }

    fn margin(self, a: Rate, b: Rate) -> f64 {
        self.abs + self.rel * a.abs().max(b.abs())
    }

    /// `a` equals `b` within the tolerance.
    pub fn eq(self, a: Rate, b: Rate) -> bool {
        if a == b {
            // Covers infinities and exact equality.
            return true;
        }
        if !a.is_finite() || !b.is_finite() {
            // An infinite rate only equals another infinite rate of the same
            // sign (handled above); the margin would otherwise be infinite and
            // swallow every comparison.
            return false;
        }
        (a - b).abs() <= self.margin(a, b)
    }

    /// `a` differs from `b` by more than the tolerance.
    pub fn ne(self, a: Rate, b: Rate) -> bool {
        !self.eq(a, b)
    }

    /// `a` is strictly less than `b`, beyond the tolerance.
    pub fn lt(self, a: Rate, b: Rate) -> bool {
        if !a.is_finite() || !b.is_finite() {
            return a < b;
        }
        b - a > self.margin(a, b)
    }

    /// `a` is less than or tolerably equal to `b`.
    pub fn le(self, a: Rate, b: Rate) -> bool {
        !self.lt(b, a)
    }

    /// `a` is strictly greater than `b`, beyond the tolerance.
    pub fn gt(self, a: Rate, b: Rate) -> bool {
        self.lt(b, a)
    }

    /// `a` is greater than or tolerably equal to `b`.
    pub fn ge(self, a: Rate, b: Rate) -> bool {
        !self.lt(a, b)
    }

    /// The relative difference `|a - b| / max(|a|, |b|)` (0 when both are 0).
    pub fn relative_difference(self, a: Rate, b: Rate) -> f64 {
        let denom = a.abs().max(b.abs());
        if denom == 0.0 {
            0.0
        } else {
            (a - b).abs() / denom
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_limit_basics() {
        let u = RateLimit::unlimited();
        assert!(u.is_unlimited());
        assert_eq!(u.to_string(), "unlimited");
        let f = RateLimit::finite(25e6);
        assert!(!f.is_unlimited());
        assert_eq!(f.as_bps(), 25e6);
        assert_eq!(f.to_string(), "25.000 Mbps");
        assert_eq!(RateLimit::default(), RateLimit::unlimited());
    }

    #[test]
    fn effective_demand_caps_at_first_link() {
        assert_eq!(RateLimit::unlimited().effective_demand(1e8), 1e8);
        assert_eq!(RateLimit::finite(5e7).effective_demand(1e8), 5e7);
        assert_eq!(RateLimit::finite(2e8).effective_demand(1e8), 1e8);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn non_positive_limit_rejected() {
        let _ = RateLimit::finite(0.0);
    }

    #[test]
    fn tolerant_equality() {
        let tol = Tolerance::default();
        assert!(tol.eq(1e8, 1e8));
        assert!(tol.eq(1e8, 1e8 * (1.0 + 1e-12)));
        assert!(!tol.eq(1e8, 1.001e8));
        assert!(tol.eq(f64::INFINITY, f64::INFINITY));
        assert!(tol.eq(0.0, 0.0));
    }

    #[test]
    fn tolerant_ordering_is_consistent() {
        let tol = Tolerance::default();
        let a = 1e8;
        let b = 1e8 * (1.0 + 1e-12); // equal within tolerance
        let c = 2e8;
        assert!(tol.le(a, b) && tol.ge(a, b));
        assert!(!tol.lt(a, b) && !tol.gt(a, b));
        assert!(tol.lt(a, c) && tol.gt(c, a));
        assert!(tol.le(a, c) && !tol.ge(a, c));
        assert!(tol.ne(a, c));
    }

    #[test]
    fn comparisons_with_infinity_are_strict() {
        let tol = Tolerance::default();
        assert!(tol.lt(1e8, f64::INFINITY));
        assert!(!tol.ge(1e8, f64::INFINITY));
        assert!(tol.gt(f64::INFINITY, 1e8));
        assert!(!tol.eq(1e8, f64::INFINITY));
        assert!(tol.eq(f64::INFINITY, f64::INFINITY));
        assert!(!tol.lt(f64::INFINITY, f64::INFINITY));
    }

    #[test]
    fn exact_tolerance_is_exact() {
        let tol = Tolerance::exact();
        assert!(tol.eq(1.0, 1.0));
        assert!(!tol.eq(1.0, 1.0 + f64::EPSILON));
        assert!(tol.lt(1.0, 1.0 + f64::EPSILON));
    }

    #[test]
    fn relative_difference() {
        let tol = Tolerance::default();
        assert_eq!(tol.relative_difference(0.0, 0.0), 0.0);
        assert!((tol.relative_difference(90.0, 100.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_epsilon_rejected() {
        let _ = Tolerance::new(-1.0, 0.0);
    }
}
