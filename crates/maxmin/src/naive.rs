//! The seed-era reference solvers, kept verbatim (modulo the `SessionSet`
//! accessors they go through) as test-only oracles for the incremental
//! rewrites in [`crate::waterfill`] and [`crate::centralized`].
//!
//! These are the straightforward O(links × sessions)-per-round formulations:
//! every round recomputes every link's active count and frozen-capacity sum
//! from scratch. They are too slow for paper-scale instances but trivially
//! auditable, which makes them the ground truth the property tests compare
//! the dense-index solvers against. Remove once the incremental solvers have
//! survived a few more PRs' worth of scrutiny.

use crate::rate::{Rate, Tolerance};
use crate::session::{Allocation, SessionId, SessionSet};
use bneck_net::{LinkId, Network};
use std::collections::{BTreeMap, BTreeSet};

/// The seed-era progressive-filling solver.
pub(crate) fn naive_waterfill(
    network: &Network,
    sessions: &SessionSet,
    tol: Tolerance,
) -> Allocation {
    let mut allocation = Allocation::new();
    if sessions.is_empty() {
        return allocation;
    }

    let mut active: Vec<SessionId> = sessions.iter().map(|s| s.id()).collect();
    let mut frozen_rate: BTreeMap<SessionId, Rate> = BTreeMap::new();
    let used_links: Vec<LinkId> = sessions.used_links().collect();
    let mut level: Rate = 0.0;

    while !active.is_empty() {
        let mut next_level: Rate = f64::INFINITY;
        for &link in &used_links {
            let on_link = sessions.sessions_on_link(link);
            let active_count = on_link
                .iter()
                .filter(|s| !frozen_rate.contains_key(s))
                .count();
            if active_count == 0 {
                continue;
            }
            let frozen_sum: Rate = on_link.iter().filter_map(|s| frozen_rate.get(s)).sum();
            let cap = network.link(link).capacity().as_bps();
            let allowed = (cap - frozen_sum).max(0.0) / active_count as f64;
            next_level = next_level.min(allowed);
        }
        for id in &active {
            let limit = sessions.get(*id).expect("active session exists").limit();
            next_level = next_level.min(limit.as_bps());
        }
        level = next_level.max(level);

        let mut saturated_links: Vec<LinkId> = Vec::new();
        for &link in &used_links {
            let on_link = sessions.sessions_on_link(link);
            let active_count = on_link
                .iter()
                .filter(|s| !frozen_rate.contains_key(s))
                .count();
            if active_count == 0 {
                continue;
            }
            let frozen_sum: Rate = on_link.iter().filter_map(|s| frozen_rate.get(s)).sum();
            let cap = network.link(link).capacity().as_bps();
            if tol.ge(frozen_sum + active_count as f64 * level, cap) {
                saturated_links.push(link);
            }
        }
        let mut newly_frozen: Vec<SessionId> = Vec::new();
        for id in &active {
            let session = sessions.get(*id).expect("active session exists");
            let at_limit = tol.ge(level, session.limit().as_bps());
            let on_saturated = session
                .path()
                .links()
                .iter()
                .any(|l| saturated_links.contains(l));
            if at_limit || on_saturated {
                newly_frozen.push(*id);
            }
        }
        assert!(
            !newly_frozen.is_empty(),
            "progressive filling must freeze at least one session per round"
        );
        for id in newly_frozen {
            frozen_rate.insert(id, level);
            active.retain(|s| *s != id);
        }
    }

    for (id, rate) in frozen_rate {
        allocation.set(id, rate);
    }
    allocation
}

struct Constraint {
    capacity: Rate,
    restricted: BTreeSet<SessionId>,
    unrestricted: BTreeSet<SessionId>,
}

/// The seed-era Centralized B-Neck solver (Figure 1 on set-valued state).
pub(crate) fn naive_centralized(
    network: &Network,
    sessions: &SessionSet,
    tol: Tolerance,
) -> Allocation {
    let mut rates: BTreeMap<SessionId, Rate> = BTreeMap::new();

    let mut constraints: Vec<Constraint> = Vec::new();
    for link in sessions.used_links() {
        constraints.push(Constraint {
            capacity: network.link(link).capacity().as_bps(),
            restricted: sessions.sessions_on_link(link).iter().copied().collect(),
            unrestricted: BTreeSet::new(),
        });
    }
    for session in sessions.iter() {
        if !session.limit().is_unlimited() {
            constraints.push(Constraint {
                capacity: session.limit().as_bps(),
                restricted: [session.id()].into_iter().collect(),
                unrestricted: BTreeSet::new(),
            });
        }
    }

    let mut live: BTreeSet<usize> = (0..constraints.len())
        .filter(|i| !constraints[*i].restricted.is_empty())
        .collect();

    while !live.is_empty() {
        let mut estimates: BTreeMap<usize, Rate> = BTreeMap::new();
        for &i in &live {
            let c = &constraints[i];
            let assigned: Rate = c
                .unrestricted
                .iter()
                .map(|s| rates.get(s).copied().unwrap_or(0.0))
                .sum();
            estimates.insert(
                i,
                (c.capacity - assigned).max(0.0) / c.restricted.len() as f64,
            );
        }
        let min_estimate = estimates.values().copied().fold(f64::INFINITY, f64::min);
        let argmin: BTreeSet<usize> = estimates
            .iter()
            .filter(|(_, b)| tol.eq(**b, min_estimate))
            .map(|(i, _)| *i)
            .collect();
        let newly_assigned: BTreeSet<SessionId> = argmin
            .iter()
            .flat_map(|i| constraints[*i].restricted.iter().copied())
            .collect();
        for s in &newly_assigned {
            rates.insert(*s, min_estimate);
        }
        let remaining: BTreeSet<usize> = live.difference(&argmin).copied().collect();
        for &i in &remaining {
            let c = &mut constraints[i];
            let moved: Vec<SessionId> = c
                .restricted
                .intersection(&newly_assigned)
                .copied()
                .collect();
            for s in moved {
                c.restricted.remove(&s);
                c.unrestricted.insert(s);
            }
        }
        live = remaining
            .into_iter()
            .filter(|i| !constraints[*i].restricted.is_empty())
            .collect();
    }

    let mut allocation = Allocation::new();
    for (s, r) in &rates {
        allocation.set(*s, *r);
    }
    allocation
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralized::CentralizedBneck;
    use crate::rate::RateLimit;
    use crate::session::Session;
    use crate::verify::compare_allocations;
    use crate::waterfill::WaterFilling;
    use crate::workspace::SolverWorkspace;
    use bneck_net::prelude::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn mbps(x: f64) -> Capacity {
        Capacity::from_mbps(x)
    }

    fn random_limit(rng: &mut SmallRng, limited: f64) -> RateLimit {
        if rng.gen_bool(limited) {
            RateLimit::finite(rng.gen_range(1e6..120e6))
        } else {
            RateLimit::unlimited()
        }
    }

    /// Dumbbell: `pairs` sessions across a shared bottleneck.
    fn dumbbell_instance(seed: u64, pairs: usize, limited: f64) -> (Network, SessionSet) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let bottleneck = mbps(rng.gen_range(20.0..200.0));
        let net = synthetic::dumbbell(pairs, mbps(100.0), bottleneck, Delay::from_micros(1));
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut router = Router::new(&net);
        let mut set = SessionSet::new();
        for i in 0..pairs {
            let path = router
                .shortest_path(hosts[2 * i], hosts[2 * i + 1])
                .unwrap();
            set.insert(Session::new(
                SessionId(i as u64),
                path,
                random_limit(&mut rng, limited),
            ));
        }
        (net, set)
    }

    /// Parking lot: one end-to-end session plus one session per segment,
    /// crossing random-capacity segments.
    fn parking_lot_instance(seed: u64, segments: usize, limited: f64) -> (Network, SessionSet) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let bottleneck = mbps(rng.gen_range(20.0..200.0));
        let net = synthetic::parking_lot(segments, mbps(300.0), bottleneck, Delay::from_micros(1));
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut router = Router::new(&net);
        let mut set = SessionSet::new();
        let long = router.shortest_path(hosts[0], hosts[segments]).unwrap();
        set.insert(Session::new(
            SessionId(0),
            long,
            random_limit(&mut rng, limited),
        ));
        for i in 0..segments {
            let path = router.shortest_path(hosts[i], hosts[i + 1]).unwrap();
            set.insert(Session::new(
                SessionId(1 + i as u64),
                path,
                random_limit(&mut rng, limited),
            ));
        }
        (net, set)
    }

    /// Transit–stub: random host pairs on the paper's Small topology.
    fn transit_stub_instance(seed: u64, sessions: usize, limited: f64) -> (Network, SessionSet) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let net = bneck_net::topology::transit_stub::paper_network(
            NetworkSize::Small,
            2 * sessions + 4,
            DelayModel::Lan,
            seed,
        );
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut router = Router::new(&net);
        let mut set = SessionSet::new();
        let mut id = 0u64;
        while set.len() < sessions && id < 10 * sessions as u64 {
            id += 1;
            let a = hosts[rng.gen_range(0..hosts.len())];
            let b = hosts[rng.gen_range(0..hosts.len())];
            if a == b {
                continue;
            }
            let Some(path) = router.shortest_path(a, b) else {
                continue;
            };
            set.insert(Session::new(
                SessionId(id),
                path,
                random_limit(&mut rng, limited),
            ));
        }
        (net, set)
    }

    fn instance(family: u8, seed: u64, size: usize, limited: f64) -> (Network, SessionSet) {
        match family {
            0 => dumbbell_instance(seed, size.max(1), limited),
            1 => parking_lot_instance(seed, size.clamp(1, 12), limited),
            _ => transit_stub_instance(seed, size.max(2), limited),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The incremental solvers and the seed-era naive solvers produce the
        /// same allocation on random dumbbell / parking-lot / transit-stub
        /// instances. The comparison tolerance is far below any meaningful
        /// rate difference: the only deviation the rewrite may introduce is
        /// the float summation order of per-link frozen/granted sums.
        #[test]
        fn incremental_solvers_match_the_naive_oracles(
            family in 0u8..3,
            seed in 0u64..10_000,
            size in 1usize..16,
            limited in 0.0f64..0.6,
        ) {
            let (network, set) = instance(family, seed, size, limited);
            prop_assume!(!set.is_empty());
            let tol = Tolerance::default();
            let strict = Tolerance::new(1e-9, 1e-3);

            let mut ws = SolverWorkspace::new();
            let wf = WaterFilling::new(&network, &set).solve_in(&mut ws);
            let wf_naive = naive_waterfill(&network, &set, tol);
            prop_assert!(
                compare_allocations(&set, &wf, &wf_naive, strict).is_ok(),
                "water-filling diverged from naive: {wf:?} vs {wf_naive:?}"
            );

            let cb = CentralizedBneck::new(&network, &set).solve_in(&mut ws);
            let cb_naive = naive_centralized(&network, &set, tol);
            prop_assert!(
                compare_allocations(&set, &cb, &cb_naive, strict).is_ok(),
                "centralized diverged from naive: {cb:?} vs {cb_naive:?}"
            );
        }

        /// Workspace reuse across instances of different shapes and sizes
        /// never leaks state between solves.
        #[test]
        fn workspace_reuse_is_stateless(
            seed in 0u64..10_000,
            size_a in 1usize..12,
            size_b in 1usize..12,
        ) {
            let (net_a, set_a) = instance(0, seed, size_a, 0.3);
            let (net_b, set_b) = instance(2, seed.wrapping_add(1), size_b, 0.3);
            let mut ws = SolverWorkspace::new();
            // Interleave solves over both instances through one workspace.
            let a1 = WaterFilling::new(&net_a, &set_a).solve_in(&mut ws);
            let b1 = CentralizedBneck::new(&net_b, &set_b).solve_in(&mut ws);
            let a2 = WaterFilling::new(&net_a, &set_a).solve_in(&mut ws);
            let b2 = CentralizedBneck::new(&net_b, &set_b).solve_in(&mut ws);
            prop_assert_eq!(a1, a2);
            prop_assert_eq!(b1, b2);
        }
    }
}
