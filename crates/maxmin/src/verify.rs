//! Verification of max-min fair allocations.
//!
//! [`verify_max_min`] checks the defining conditions of max-min fairness
//! (Definition 1 of the paper): every link's capacity is respected, every
//! session respects its own maximum rate, and every session either receives
//! its full request or has a *bottleneck link* — a saturated link on its path
//! where no other session gets more than it does.
//!
//! [`compare_allocations`] checks that two allocations (for example the
//! distributed protocol's result and the centralized oracle's result) agree on
//! every session, which is exactly how the paper validates its B-Neck
//! implementation.

use crate::rate::{Rate, Tolerance};
use crate::session::{Allocation, SessionId, SessionSet};
use bneck_net::{LinkId, Network};
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::fmt;

/// A violation of the max-min fairness conditions (or a disagreement between
/// two allocations).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum Violation {
    /// A session has no assigned rate.
    MissingRate {
        /// The session without a rate.
        session: SessionId,
    },
    /// The sessions crossing a link exceed its capacity.
    LinkOverload {
        /// The overloaded link.
        link: LinkId,
        /// Sum of the rates of the sessions crossing the link.
        assigned: Rate,
        /// The link's capacity.
        capacity: Rate,
    },
    /// A session was assigned more than it requested.
    ExceedsLimit {
        /// The session exceeding its request.
        session: SessionId,
        /// The assigned rate.
        assigned: Rate,
        /// The requested maximum rate.
        limit: Rate,
    },
    /// A session is below its request but has no bottleneck link, so its rate
    /// could be increased without hurting anyone with a smaller or equal rate.
    NoBottleneck {
        /// The session without a bottleneck.
        session: SessionId,
        /// The assigned rate.
        assigned: Rate,
    },
    /// Two allocations disagree on a session's rate.
    RateMismatch {
        /// The session the allocations disagree on.
        session: SessionId,
        /// The rate in the first allocation.
        left: Rate,
        /// The rate in the second allocation.
        right: Rate,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::MissingRate { session } => write!(f, "session {session} has no rate"),
            Violation::LinkOverload {
                link,
                assigned,
                capacity,
            } => write!(
                f,
                "link {link} overloaded: assigned {assigned:.1} bps exceeds capacity {capacity:.1} bps"
            ),
            Violation::ExceedsLimit {
                session,
                assigned,
                limit,
            } => write!(
                f,
                "session {session} assigned {assigned:.1} bps above its limit {limit:.1} bps"
            ),
            Violation::NoBottleneck { session, assigned } => write!(
                f,
                "session {session} at {assigned:.1} bps is below its limit but has no bottleneck link"
            ),
            Violation::RateMismatch {
                session,
                left,
                right,
            } => write!(
                f,
                "allocations disagree on session {session}: {left:.1} bps vs {right:.1} bps"
            ),
        }
    }
}

impl std::error::Error for Violation {}

/// Checks that `allocation` is a max-min fair allocation for `sessions` over
/// `network`, using the default [`Tolerance`].
///
/// # Errors
///
/// Returns the list of violated conditions if the allocation is not max-min
/// fair.
pub fn verify_max_min(
    network: &Network,
    sessions: &SessionSet,
    allocation: &Allocation,
) -> Result<(), Vec<Violation>> {
    verify_max_min_with(network, sessions, allocation, Tolerance::default())
}

/// [`verify_max_min`] with an explicit tolerance.
///
/// # Errors
///
/// Returns the list of violated conditions if the allocation is not max-min
/// fair within the tolerance.
pub fn verify_max_min_with(
    network: &Network,
    sessions: &SessionSet,
    allocation: &Allocation,
    tol: Tolerance,
) -> Result<(), Vec<Violation>> {
    let mut violations = Vec::new();

    // 1. Every session has a rate not exceeding its request.
    for session in sessions.iter() {
        match allocation.rate(session.id()) {
            None => violations.push(Violation::MissingRate {
                session: session.id(),
            }),
            Some(rate) => {
                let limit = session.limit().as_bps();
                if tol.gt(rate, limit) {
                    violations.push(Violation::ExceedsLimit {
                        session: session.id(),
                        assigned: rate,
                        limit,
                    });
                }
            }
        }
    }

    // 2. No link is overloaded.
    for link in sessions.used_links() {
        let assigned = allocation.sum_over(sessions.sessions_on_link(link).iter());
        let capacity = network.link(link).capacity().as_bps();
        if tol.gt(assigned, capacity) {
            violations.push(Violation::LinkOverload {
                link,
                assigned,
                capacity,
            });
        }
    }

    // 3. Every session below its request has a bottleneck link.
    for session in sessions.iter() {
        let Some(rate) = allocation.rate(session.id()) else {
            continue;
        };
        if tol.ge(rate, session.limit().as_bps()) {
            continue; // restricted by its own request
        }
        let has_bottleneck = session.path().links().iter().any(|&link| {
            let on_link = sessions.sessions_on_link(link);
            let assigned = allocation.sum_over(on_link.iter());
            let capacity = network.link(link).capacity().as_bps();
            let saturated = tol.ge(assigned, capacity);
            let is_max = on_link.iter().all(|other| {
                allocation
                    .rate(*other)
                    .map(|r| tol.le(r, rate))
                    .unwrap_or(true)
            });
            saturated && is_max
        });
        if !has_bottleneck {
            violations.push(Violation::NoBottleneck {
                session: session.id(),
                assigned: rate,
            });
        }
    }

    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

/// Checks that two allocations assign (tolerably) the same rate to every
/// session of `sessions`.
///
/// # Errors
///
/// Returns one [`Violation::RateMismatch`] (or [`Violation::MissingRate`]) per
/// disagreeing session.
pub fn compare_allocations(
    sessions: &SessionSet,
    left: &Allocation,
    right: &Allocation,
    tol: Tolerance,
) -> Result<(), Vec<Violation>> {
    let mut violations = Vec::new();
    for session in sessions.iter() {
        match (left.rate(session.id()), right.rate(session.id())) {
            (Some(a), Some(b)) => {
                if tol.ne(a, b) {
                    violations.push(Violation::RateMismatch {
                        session: session.id(),
                        left: a,
                        right: b,
                    });
                }
            }
            _ => violations.push(Violation::MissingRate {
                session: session.id(),
            }),
        }
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralized::CentralizedBneck;
    use crate::rate::RateLimit;
    use crate::session::Session;
    use bneck_net::prelude::*;

    fn mbps(x: f64) -> Capacity {
        Capacity::from_mbps(x)
    }
    fn us(x: u64) -> Delay {
        Delay::from_micros(x)
    }

    fn two_session_dumbbell() -> (Network, SessionSet) {
        let net = synthetic::dumbbell(2, mbps(100.0), mbps(60.0), us(1));
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut router = Router::new(&net);
        let mut sessions = SessionSet::new();
        for i in 0..2 {
            let path = router
                .shortest_path(hosts[2 * i], hosts[2 * i + 1])
                .unwrap();
            sessions.insert(Session::new(
                SessionId(i as u64),
                path,
                RateLimit::unlimited(),
            ));
        }
        (net, sessions)
    }

    #[test]
    fn accepts_the_oracle_allocation() {
        let (net, sessions) = two_session_dumbbell();
        let alloc = CentralizedBneck::new(&net, &sessions).solve();
        assert!(verify_max_min(&net, &sessions, &alloc).is_ok());
    }

    #[test]
    fn rejects_overload() {
        let (net, sessions) = two_session_dumbbell();
        let mut alloc = Allocation::new();
        alloc.set(SessionId(0), 50e6);
        alloc.set(SessionId(1), 50e6); // 100 Mbps through a 60 Mbps link
        let violations = verify_max_min(&net, &sessions, &alloc).unwrap_err();
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::LinkOverload { .. })));
    }

    #[test]
    fn rejects_underutilization_without_bottleneck() {
        let (net, sessions) = two_session_dumbbell();
        let mut alloc = Allocation::new();
        alloc.set(SessionId(0), 10e6);
        alloc.set(SessionId(1), 10e6); // feasible but not max-min
        let violations = verify_max_min(&net, &sessions, &alloc).unwrap_err();
        assert_eq!(
            violations
                .iter()
                .filter(|v| matches!(v, Violation::NoBottleneck { .. }))
                .count(),
            2
        );
    }

    #[test]
    fn rejects_unfair_split_even_if_link_is_full() {
        let (net, sessions) = two_session_dumbbell();
        let mut alloc = Allocation::new();
        alloc.set(SessionId(0), 40e6);
        alloc.set(SessionId(1), 20e6); // link is full but session 1 has no bottleneck
        let violations = verify_max_min(&net, &sessions, &alloc).unwrap_err();
        assert!(violations.iter().any(
            |v| matches!(v, Violation::NoBottleneck { session, .. } if *session == SessionId(1))
        ));
    }

    #[test]
    fn rejects_missing_rate_and_limit_excess() {
        let (net, mut sessions) = two_session_dumbbell();
        sessions.change_limit(SessionId(0), RateLimit::finite(5e6));
        let mut alloc = Allocation::new();
        alloc.set(SessionId(0), 10e6); // above its 5 Mbps limit
        let violations = verify_max_min(&net, &sessions, &alloc).unwrap_err();
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::ExceedsLimit { .. })));
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::MissingRate { session } if *session == SessionId(1))));
    }

    #[test]
    fn session_capped_by_its_own_limit_needs_no_bottleneck() {
        let (net, mut sessions) = two_session_dumbbell();
        sessions.change_limit(SessionId(0), RateLimit::finite(10e6));
        let alloc = CentralizedBneck::new(&net, &sessions).solve();
        // Session 0 gets its 10 Mbps, session 1 gets 50 Mbps (bottleneck).
        assert!(verify_max_min(&net, &sessions, &alloc).is_ok());
    }

    #[test]
    fn compare_allocations_reports_mismatches() {
        let (net, sessions) = two_session_dumbbell();
        let a = CentralizedBneck::new(&net, &sessions).solve();
        let mut b = a.clone();
        assert!(compare_allocations(&sessions, &a, &b, Tolerance::default()).is_ok());
        b.set(SessionId(1), 1.0);
        let violations = compare_allocations(&sessions, &a, &b, Tolerance::default()).unwrap_err();
        assert_eq!(violations.len(), 1);
        assert!(matches!(violations[0], Violation::RateMismatch { .. }));
        let empty = Allocation::new();
        assert!(compare_allocations(&sessions, &a, &empty, Tolerance::default()).is_err());
    }

    #[test]
    fn violations_have_readable_messages() {
        let v = Violation::LinkOverload {
            link: LinkId(3),
            assigned: 10.0,
            capacity: 5.0,
        };
        assert!(v.to_string().contains("e3"));
        let v = Violation::RateMismatch {
            session: SessionId(2),
            left: 1.0,
            right: 2.0,
        };
        assert!(v.to_string().contains("s2"));
    }
}
