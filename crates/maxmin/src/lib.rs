//! # bneck-maxmin
//!
//! Max-min fairness theory for the B-Neck reproduction:
//!
//! * [`session`] — sessions (a path through the network plus a maximum
//!   requested rate) and indexed session sets;
//! * [`rate`] — rates in bits per second and the tolerance-aware comparisons
//!   used throughout the protocols;
//! * [`waterfill`] — the classic progressive-filling (Water-Filling)
//!   algorithm;
//! * [`centralized`] — the Centralized B-Neck algorithm of Figure 1 of the
//!   paper, which additionally reports each link's bottleneck sets;
//! * [`verify`] — checks that an allocation satisfies the max-min fairness
//!   conditions and compares allocations produced by different algorithms;
//! * [`fastmap`] — the fast non-cryptographic hash maps the simulation
//!   engines use for their id → dense-slot lookups;
//! * [`idmap`] — an inline open-addressing id → slot table for the per-link
//!   hot path, where even a fast `HashMap`'s extra indirection shows up.
//!
//! Both centralized algorithms serve as the correctness oracle against which
//! the distributed protocol (crate `bneck-core`) is validated, exactly as the
//! paper validates its simulations against a centralized computation.
//!
//! ## Example
//!
//! ```
//! use bneck_net::prelude::*;
//! use bneck_maxmin::prelude::*;
//!
//! // Three sources share a 90 Mbps bottleneck; one of them only wants 10 Mbps.
//! let net = synthetic::dumbbell(3, Capacity::from_mbps(100.0),
//!                               Capacity::from_mbps(90.0), Delay::from_micros(1));
//! let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
//! let mut router = Router::new(&net);
//! let mut sessions = SessionSet::new();
//! for i in 0..3 {
//!     let path = router.shortest_path(hosts[2 * i], hosts[2 * i + 1]).unwrap();
//!     let cap = if i == 0 { RateLimit::finite(10e6) } else { RateLimit::unlimited() };
//!     sessions.insert(Session::new(SessionId(i as u64), path, cap));
//! }
//! let allocation = CentralizedBneck::new(&net, &sessions).solve();
//! assert!((allocation.rate(SessionId(0)).unwrap() - 10e6).abs() < 1.0);
//! assert!((allocation.rate(SessionId(1)).unwrap() - 40e6).abs() < 1.0);
//! assert!(verify_max_min(&net, &sessions, &allocation).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod centralized;
pub mod fastmap;
pub mod idmap;
#[cfg(test)]
pub(crate) mod naive;
pub mod rate;
pub mod session;
pub mod verify;
pub mod waterfill;
pub mod workspace;

pub use centralized::{CentralizedBneck, CentralizedSolution, LinkBottleneck};
pub use fastmap::{FastBuildHasher, FastHasher, FastMap, FastSet};
pub use idmap::IdSlotMap;
pub use rate::{Rate, RateLimit, Tolerance};
pub use session::{Allocation, Session, SessionId, SessionSet};
pub use verify::{compare_allocations, verify_max_min, Violation};
pub use waterfill::WaterFilling;
pub use workspace::SolverWorkspace;

/// Commonly used items, suitable for glob import.
pub mod prelude {
    pub use crate::centralized::{CentralizedBneck, CentralizedSolution, LinkBottleneck};
    pub use crate::rate::{Rate, RateLimit, Tolerance};
    pub use crate::session::{Allocation, Session, SessionId, SessionSet};
    pub use crate::verify::{compare_allocations, verify_max_min, Violation};
    pub use crate::waterfill::WaterFilling;
    pub use crate::workspace::SolverWorkspace;
}
