//! Reusable scratch state for the centralized solvers.

use crate::session::SessionId;
use bneck_net::LinkId;

/// Scratch buffers shared by [`crate::WaterFilling`] and
/// [`crate::CentralizedBneck`].
///
/// Both solvers keep their per-session and per-link working state in flat
/// vectors indexed by [`crate::SessionSet`] arena slots and dense link
/// identifiers. A workspace owns those vectors so that repeated solves — the
/// validation binary, the experiment runners, the benchmarks — reuse the same
/// allocations instead of rebuilding hash maps on every call. A workspace is
/// not tied to a network or session set: the same instance can serve solves
/// over different instances of any size.
///
/// # Example
///
/// ```
/// use bneck_net::prelude::*;
/// use bneck_maxmin::prelude::*;
///
/// let net = synthetic::dumbbell(2, Capacity::from_mbps(100.0),
///                               Capacity::from_mbps(60.0), Delay::from_micros(1));
/// let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
/// let mut router = Router::new(&net);
/// let mut sessions = SessionSet::new();
/// for i in 0..2 {
///     let path = router.shortest_path(hosts[2 * i], hosts[2 * i + 1]).unwrap();
///     sessions.insert(Session::new(SessionId(i as u64), path, RateLimit::unlimited()));
/// }
/// let mut ws = SolverWorkspace::new();
/// let a = WaterFilling::new(&net, &sessions).solve_in(&mut ws);
/// let b = CentralizedBneck::new(&net, &sessions).solve_in(&mut ws);
/// assert_eq!(a.rate(SessionId(0)), b.rate(SessionId(0)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SolverWorkspace {
    /// Per arena slot: the assigned/frozen rate; `NaN` while undecided.
    pub(crate) rate: Vec<f64>,
    /// Per arena slot: the round the session was assigned in (centralized).
    pub(crate) round: Vec<u32>,
    /// Per arena slot: the session's private limit constraint, `NONE` if the
    /// session is unlimited (centralized).
    pub(crate) limit_cons: Vec<u32>,
    /// Per `LinkId::index()`: position of the link in the dense used-link /
    /// constraint arrays below, `NONE` for unused links.
    pub(crate) link_pos: Vec<u32>,
    /// Dense list of used links, in `SessionSet::used_links` order.
    pub(crate) link_ids: Vec<LinkId>,
    /// Per constraint: its capacity (`C_e`, or `r_s` for limit constraints).
    pub(crate) cap: Vec<f64>,
    /// Per constraint: number of crossing sessions still undecided
    /// (water-filling's active count / centralized's `|R_e|`).
    pub(crate) active: Vec<u32>,
    /// Per constraint: total rate already granted to decided crossing sessions
    /// (water-filling's frozen sum / centralized's `Σ_{s∈F_e} λ*_s`).
    pub(crate) granted: Vec<f64>,
    /// Links saturated in the current round (water-filling).
    pub(crate) saturated: Vec<u32>,
    /// `(limit_bps, slot)` of rate-limited sessions, sorted ascending
    /// (water-filling).
    pub(crate) by_limit: Vec<(f64, u32)>,
    /// Per constraint: still live (centralized).
    pub(crate) cons_live: Vec<bool>,
    /// Per constraint: this round's estimate `B_e` (centralized).
    pub(crate) cons_est: Vec<f64>,
    /// Per constraint: the round it was identified as a bottleneck, `NONE`
    /// when it drained without ever being an argmin (centralized).
    pub(crate) cons_round: Vec<u32>,
    /// Per limit constraint (offset by the link-constraint count): its single
    /// member slot (centralized).
    pub(crate) cons_member: Vec<u32>,
    /// Slots assigned in the current round (centralized).
    pub(crate) newly: Vec<u32>,
    /// `(id, slot)` sorting scratch for the bottleneck report (centralized).
    pub(crate) pairs: Vec<(SessionId, u32)>,
}

/// Sentinel for "no entry" in the `u32` index vectors.
pub(crate) const NONE: u32 = u32::MAX;

impl SolverWorkspace {
    /// Creates an empty workspace; buffers grow on first use and are then
    /// reused across solves.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets the per-slot and per-link tables and builds the used-link
    /// constraints — one entry per link crossed by at least one session, with
    /// its capacity, its crossing-session count and a zeroed granted sum —
    /// establishing the `link_pos` ↔ `link_ids`/`cap`/`active`/`granted`
    /// correspondence both solvers rely on.
    pub(crate) fn init_link_constraints(
        &mut self,
        network: &bneck_net::Network,
        sessions: &crate::session::SessionSet,
    ) {
        self.rate.clear();
        self.rate.resize(sessions.slot_capacity(), f64::NAN);
        self.link_pos.clear();
        self.link_pos.resize(network.link_count(), NONE);
        self.link_ids.clear();
        self.cap.clear();
        self.active.clear();
        self.granted.clear();
        for link in sessions.used_links() {
            self.link_pos[link.index()] = self.link_ids.len() as u32;
            self.link_ids.push(link);
            self.cap.push(network.link(link).capacity().as_bps());
            self.active
                .push(sessions.sessions_on_link(link).len() as u32);
            self.granted.push(0.0);
        }
    }
}
